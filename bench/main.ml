(* Benchmark harness: regenerates every data figure of the paper plus
   the simulation validation tables, then times the generators with
   Bechamel.

     dune exec bench/main.exe                       all series + timings
     dune exec bench/main.exe fig1 sim-lower        a selection
     dune exec bench/main.exe -- --no-timing        series only
     dune exec bench/main.exe -- sim-fig1 -j 8      8 worker domains
     dune exec bench/main.exe -- --small            toy scales (quick)
     dune exec bench/main.exe -- --json BENCH_results.json
     dune exec bench/main.exe -- --backend ref      persistent substrate A/B
     dune exec bench/main.exe -- --telemetry full   instrument the whole run;
                                                    the snapshot lands in the
                                                    --json report entry

   Every simulated experiment (sim-*, ablation) runs through the
   Pc.Exec sweep engine: points execute on a Domain worker pool
   (--jobs N / -j N) and completed points are cached on disk keyed by
   the job spec (_pc_cache/ by default; --no-cache bypasses,
   --cache-dir relocates), so a re-run only executes new points.

   Fault tolerance: each sweep journals outcomes to
   <cache-dir>/sweeps/ as they land, so a run killed mid-sweep resumes
   with --resume; --retries N / --timeout S bound transient failures;
   --inject-faults SPEC (e.g. "crash=0.3,trunc=0.2,seed=7") drives the
   chaos mode and makes the harness exit nonzero if any point is left
   unrecovered.

   Experiments (see DESIGN.md section 4):
     fig1        lower bound h vs c (this paper vs [4] vs trivial)
     fig2        lower bound h vs n (c = 100, M = 256n)
     fig3        upper bound vs c (Theorem 2 vs prior best)
     sim-lower   measured HS(A, PF)/M vs Theorem 1 h, per c
     sim-upper   measured HS(A, PR)/M vs Robson's bound, per n;
                 upper-bound managers vs their guarantees
     sim-average random-workload fragmentation per manager
     sim-fig1    measured waste-vs-c curve (the simulated Figure 1)
     ablation    design-choice ablations A1-A4 (see EXPERIMENTS.md)
     sim-zoo     literature managers (meshing, compact-fit,
                 cost-oblivious, polylog-realloc) vs the paper's bounds
     serve       daemon saturation: N concurrent clients against one
                 pc-serve worker pool, crash-free vs crash-injected
*)

open Pc_core
open Bechamel
module Spec = Pc.Exec.Spec
module Engine = Pc.Exec.Engine
module Cache = Pc.Exec.Cache
module Json = Pc.Exec.Json

let line fmt = Fmt.pr (fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Options                                                            *)

type opts = {
  jobs : int;
  cache : Cache.t option;
  cache_dir : string;
      (* resolved directory: journals live under <cache_dir>/sweeps
         even when --no-cache disables the result cache itself *)
  json_path : string option;
  small : bool;  (* toy scales: quick smoke runs, CI *)
  no_timing : bool;
  selected : string list;
  resume : bool;  (* replay journaled outcomes of a killed run *)
  retries : int;
  timeout : float option;
  faults : Pc.Exec.Faults.t option;  (* chaos mode *)
  audit : Pc.Audit.Oracle.level;  (* runtime oracles on every point *)
  failures_dir : string option;  (* where repro bundles land *)
  telemetry : Pc.Telemetry.Sink.level;
      (* instruments the whole harness run; the snapshot rides on the
         --json report entry *)
}

(* Under --inject-faults any point left failed means the fault layer
   beat the recovery machinery: report it through the exit code so CI
   can assert zero unrecovered failures. *)
let unrecovered = ref false

(* Under --audit any triaged oracle violation flips the exit code to
   the shared taxonomy's code 3; the bundle paths ride on the sweep
   summaries. *)
let violated = ref false

(* Machine-readable report accumulators (--json). *)
let sweep_records : Json.t list ref = ref []
let timing_records : Json.t list ref = ref []

let record_sweep name (s : Engine.summary) =
  sweep_records :=
    Json.Obj
      [
        ("name", Json.String name);
        ("points", Json.Int s.total);
        ("executed", Json.Int s.executed);
        ("cached", Json.Int s.cached);
        ("resumed", Json.Int s.resumed);
        ("recovered", Json.Int s.recovered);
        ("retried", Json.Int s.retried);
        ("failed", Json.Int s.failed);
        ("violations", Json.Int s.violations);
        ("wall_s", Json.Float s.wall);
      ]
    :: !sweep_records

(* Run one sweep through the engine and return a lookup from spec to
   its result. Every simulated table below builds its full grid first,
   runs it in one engine call (maximal parallelism), then renders.
   When a cache directory is in play each sweep also keeps a
   checkpoint journal under <cache-dir>/sweeps/, so a run killed
   mid-sweep resumes with --resume instead of re-executing finished
   points. *)
let run_sweep opts name specs =
  let checkpoint =
    Pc.Exec.Checkpoint.open_ ~resume:opts.resume
      ~dir:(Pc.Exec.Checkpoint.default_dir ~cache_dir:opts.cache_dir)
      specs
  in
  let results, summary =
    Fun.protect
      ~finally:(fun () -> Pc.Exec.Checkpoint.close checkpoint)
      (fun () ->
        Engine.run ~jobs:opts.jobs ?cache:opts.cache ~checkpoint
          ~retries:opts.retries ?timeout:opts.timeout ?faults:opts.faults
          ~audit:opts.audit ?failures_dir:opts.failures_dir specs)
  in
  line "    [%s: %a]" name Engine.pp_summary summary;
  if opts.faults <> None && summary.failed > 0 then unrecovered := true;
  if summary.violations > 0 then violated := true;
  record_sweep name summary;
  let tbl = Hashtbl.create (2 * List.length specs) in
  List.iter
    (fun (r : Engine.job_result) ->
      Hashtbl.replace tbl (Spec.key r.spec) r.result)
    results;
  fun spec ->
    match Hashtbl.find_opt tbl (Spec.key spec) with
    | Some res -> res
    | None -> Error "spec was not part of this sweep"

let hs_over_m = function
  | Ok (o : Pc.Runner.outcome) -> o.hs_over_m
  | Error _ -> Float.nan

(* ------------------------------------------------------------------ *)
(* Figure 1                                                           *)

let fig1_series () =
  List.map
    (fun c ->
      let { Pc.Bounds.Params.m; n; _ } = Pc.Bounds.Params.fig1 ~c in
      ( c,
        Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c,
        Pc.Bounds.Bendersky_petrank.waste_factor ~m ~n ~c ))
    Pc.Bounds.Params.fig1_cs

let fig1 () =
  line "=== Figure 1: lower bound on the waste factor h vs c ===";
  line
    "    (M = 256MB, n = 1MB; paper anchors: ~2.0 at c=10, ~3.15 at c=50, \
     ~3.5 at c=100)";
  line "%6s  %12s  %18s  %8s" "c" "this paper" "Bendersky-Petrank" "trivial";
  List.iter
    (fun (c, ours, bp) -> line "%6.0f  %12.3f  %18.3f  %8.1f" c ours bp 1.0)
    (fig1_series ())

(* ------------------------------------------------------------------ *)
(* Figure 2                                                           *)

let fig2_series () =
  List.map
    (fun n ->
      let { Pc.Bounds.Params.m; n; c } = Pc.Bounds.Params.fig2 ~n in
      (n, Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c))
    Pc.Bounds.Params.fig2_ns

let fig2 () =
  line "=== Figure 2: lower bound on the waste factor h vs n ===";
  line "    (c = 100, M = 256n)";
  line "%10s  %10s" "n" "h";
  List.iter
    (fun (n, h) -> line "%10s  %10.3f" (Fmt.str "%a" Pc.Word.pp_count n) h)
    (fig2_series ())

(* ------------------------------------------------------------------ *)
(* Figure 3                                                           *)

let fig3_series () =
  List.filter_map
    (fun c ->
      let { Pc.Bounds.Params.m; n; _ } = Pc.Bounds.Params.fig3 ~c in
      if Pc.Bounds.Theorem2.applicable ~n ~c then
        Some
          ( c,
            Pc.Bounds.Theorem2.waste_factor ~m ~n ~c,
            Pc.Bounds.Theorem2.prior_best ~m ~n ~c /. float_of_int m )
      else None)
    Pc.Bounds.Params.fig3_cs

let fig3 () =
  line "=== Figure 3: upper bound on the waste factor vs c ===";
  line "    (M = 256MB, n = 1MB; reconstruction — see EXPERIMENTS.md)";
  line "%6s  %12s  %12s  %12s" "c" "Theorem 2" "prior best" "improvement";
  List.iter
    (fun (c, t2, prior) ->
      line "%6.0f  %12.3f  %12.3f  %11.1f%%" c t2 prior
        (100.0 *. (prior -. t2) /. prior))
    (fig3_series ())

(* ------------------------------------------------------------------ *)
(* Table S1: PF vs c-partial managers, measured vs theory             *)

let sim_lower opts =
  let m, n = if opts.small then (1 lsl 16, 1 lsl 8) else (1 lsl 22, 1 lsl 11) in
  let cs = [ 8.0; 16.0; 32.0; 64.0 ] in
  let managers = [ "compacting"; "improved-ac"; "first-fit" ] in
  let spec c manager = Spec.pf ~c ~manager ~m ~n () in
  line "=== Table S1: measured HS(A, PF)/M vs Theorem 1 (M=%d, n=%d) ===" m n;
  line "    (theory: no c-partial manager can stay below h at scale)";
  let find =
    run_sweep opts "sim-lower"
      (List.concat_map (fun c -> List.map (spec c) managers) cs)
  in
  line "%6s %4s %10s | %12s %12s %10s" "c" "l" "theory h" "compacting"
    "improved-ac" "first-fit";
  List.iter
    (fun c ->
      let cfg = Pc.Pf.config ~m ~n ~c () in
      let v manager = hs_over_m (find (spec c manager)) in
      line "%6.0f %4d %10.3f | %12.3f %12.3f %10.3f" c cfg.ell
        (Float.max cfg.h 1.0) (v "compacting") (v "improved-ac")
        (v "first-fit"))
    cs

(* ------------------------------------------------------------------ *)
(* Table S2: Robson's PR vs managers, measured vs matching bound      *)

let sim_upper opts =
  let m = if opts.small then 1 lsl 14 else 1 lsl 16 in
  let ns = [ 1 lsl 4; 1 lsl 6; 1 lsl 8 ] in
  let managers = [ "first-fit"; "aligned-fit"; "buddy"; "best-fit" ] in
  let robson_spec n manager = Spec.robson ~manager ~m ~n () in
  let pf_n = 1 lsl 6 in
  let pf_spec manager = Spec.pf ~c:8.0 ~manager ~m ~n:pf_n () in
  line "=== Table S2: measured HS(A, PR)/M vs Robson's matching bound \
        (M=%d) ===" m;
  line "    (every non-moving manager must be >= the bound; A_o meets it)";
  let find =
    run_sweep opts "sim-upper"
      (List.concat_map (fun n -> List.map (robson_spec n) managers) ns
      @ [ pf_spec "bp-simple"; pf_spec "improved-ac" ])
  in
  line "%8s %10s | %10s %12s %10s %10s" "n" "bound" "first-fit" "aligned-fit"
    "buddy" "best-fit";
  List.iter
    (fun n ->
      let bound = Pc.Bounds.Robson.waste_factor_pow2 ~m ~n in
      let v manager = hs_over_m (find (robson_spec n manager)) in
      line "%8d %10.3f | %10.3f %12.3f %10.3f %10.3f" n bound (v "first-fit")
        (v "aligned-fit") (v "buddy") (v "best-fit"))
    ns;
  line "";
  line "    upper-bound managers vs their guarantees (PF workload, c = 8):";
  let bp = hs_over_m (find (pf_spec "bp-simple")) in
  line "    bp-simple: HS/M = %.3f <= (c+1) = %.1f  [%s]" bp 9.0
    (if bp <= 9.0 then "ok" else "VIOLATED");
  (* Theorem 2's side condition needs c > log(n)/2 = 3: report the
     Theorem-2-inspired manager against the (reconstructed) bound. At
     simulation scale the bound is far from tight — reported for
     completeness, not asserted. *)
  line "    improved-ac: HS/M = %.3f (Theorem 2 reconstruction: %.3f)"
    (hs_over_m (find (pf_spec "improved-ac")))
    (Pc.Bounds.Theorem2.waste_factor ~m ~n:pf_n ~c:8.0)

(* ------------------------------------------------------------------ *)
(* Table S3: random workloads — the average case                      *)

let sim_average opts =
  let m = if opts.small then 1 lsl 14 else 1 lsl 16 in
  let churn = 20_000 in
  let spec manager =
    Spec.random_churn ~seed:7 ~churn ~c:8.0 ~manager ~m
      ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 6 })
      ~target_live:(m / 2) ()
  in
  line "=== Table S3: random churn (M=%d): fragmentation by manager ===" m;
  line "    (average case — far from the adversarial worst case)";
  let keys = List.map (fun (e : Pc.Managers.entry) -> e.key) (Pc.Managers.entries ()) in
  let find = run_sweep opts "sim-average" (List.map spec keys) in
  line "%-12s %10s %10s %10s" "manager" "HS/M" "HS/live" "moved";
  List.iter
    (fun key ->
      match find (spec key) with
      | Ok o ->
          line "%-12s %10.3f %10.3f %10d" key o.hs_over_m
            (float_of_int o.hs /. float_of_int (max 1 o.final_live))
            o.moved
      | Error msg -> line "%-12s failed: %s" key msg)
    keys

(* ------------------------------------------------------------------ *)
(* Simulated Figure 1: the lower-bound curve, measured               *)

let sim_fig1 opts =
  let m, n = if opts.small then (1 lsl 15, 1 lsl 7) else (1 lsl 22, 1 lsl 11) in
  let cs = [ 6.0; 8.0; 12.0; 16.0; 24.0; 32.0; 48.0; 64.0 ] in
  let managers = [ "compacting"; "improved-ac"; "sliding"; "bp-simple" ] in
  let spec c manager = Spec.pf ~c ~manager ~m ~n () in
  line "=== Simulated Figure 1: measured waste vs c (M=%d, n=%d) ===" m n;
  line
    "    (best = the smallest HS/M any of our c-partial managers achieves \
     against PF; theory says best >= h)";
  let find =
    run_sweep opts "sim-fig1"
      (List.concat_map (fun c -> List.map (spec c) managers) cs)
  in
  line "%6s %10s %10s %14s" "c" "theory h" "best" "best manager";
  List.iter
    (fun c ->
      let candidates =
        List.filter_map
          (fun key ->
            match find (spec c key) with
            | Ok o -> Some (o.hs_over_m, key)
            | Error _ -> None (* invalid parameters at this point *))
          managers
      in
      let best, key = List.fold_left min (Float.infinity, "-") candidates in
      line "%6g %10.3f %10.3f %14s" c
        (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c)
        best key)
    cs

(* ------------------------------------------------------------------ *)
(* Ablations: how much each design choice of P_F contributes          *)

let ablation opts =
  let m, n = if opts.small then (1 lsl 15, 1 lsl 7) else (1 lsl 17, 1 lsl 9) in
  let spec ?ell ?stage1_steps ?maintain_density ~manager c =
    Spec.pf ?ell ?stage1_steps ?maintain_density ~c ~manager ~m ~n ()
  in
  let a1_ells =
    List.filter
      (fun ell -> Pc.Bounds.Cohen_petrank.h ~m ~n ~c:32.0 ~ell <> None)
      [ 1; 2 ]
  in
  let moving =
    List.filter_map
      (fun (e : Pc.Managers.entry) -> if e.moving then Some e.key else None)
      (Pc.Managers.entries ())
  in
  let specs =
    List.map (fun ell -> spec ~ell ~manager:"compacting" 32.0) a1_ells
    @ List.concat_map
        (fun c ->
          [
            spec ~manager:"compacting" c;
            spec ~maintain_density:false ~manager:"compacting" c;
            spec ~stage1_steps:0 ~manager:"compacting" c;
          ])
        [ 16.0; 32.0 ]
    @ List.map (fun key -> spec ~manager:key 16.0) moving
  in
  line "=== Ablations (M=%d, n=%d) ===" m n;
  let find = run_sweep opts "ablation" specs in
  let v s = hs_over_m (find s) in
  line "";
  line "=== Ablation A1: the density exponent l (c = 32) ===";
  line "    (Theorem 1 optimises l; the empirical optimum should agree)";
  let best_ell =
    match Pc.Bounds.Cohen_petrank.best ~m ~n ~c:32.0 with
    | Some { ell; _ } -> ell
    | None -> 0
  in
  List.iter
    (fun ell ->
      match Pc.Bounds.Cohen_petrank.h ~m ~n ~c:32.0 ~ell with
      | Some h ->
          line "    l=%d%s  theory h=%6.3f  measured HS/M=%6.3f" ell
            (if ell = best_ell then "*" else " ")
            (Float.max h 1.0)
            (v (spec ~ell ~manager:"compacting" 32.0))
      | None -> line "    l=%d   (invalid at these parameters)" ell)
    [ 1; 2 ];
  line "";
  line "=== Ablation A2: stage 2 density maintenance (line 13) ===";
  List.iter
    (fun c ->
      line "    c=%-3g  with density: %6.3f   without: %6.3f" c
        (v (spec ~manager:"compacting" c))
        (v (spec ~maintain_density:false ~manager:"compacting" c)))
    [ 16.0; 32.0 ];
  line "";
  line "=== Ablation A3: the Robson stage (stage 1) ===";
  List.iter
    (fun c ->
      line "    c=%-3g  full stage 1: %6.3f   unit fill only: %6.3f" c
        (v (spec ~manager:"compacting" c))
        (v (spec ~stage1_steps:0 ~manager:"compacting" c)))
    [ 16.0; 32.0 ];
  line "";
  line "=== Ablation A4: which manager resists P_F best (c = 16) ===";
  line "    (Theorem 1 floors them all; smaller HS/M = closer to the floor)";
  let floor16 = Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c:16.0 in
  line "    theory floor h = %.3f" floor16;
  List.iter
    (fun key ->
      match find (spec ~manager:key 16.0) with
      | Ok o ->
          line "    %-12s HS/M=%6.3f  moved=%-7d %s" key o.hs_over_m o.moved
            (if o.hs_over_m >= floor16 -. 0.02 then "(floor respected)"
             else "(BELOW FLOOR?)")
      | Error msg -> line "    %-12s failed: %s" key msg)
    moving

(* ------------------------------------------------------------------ *)
(* Table S4: the literature zoo vs the paper's bounds                  *)

(* The four managers adapted from the related literature (meshing,
   compact-fit, cost-oblivious resizing, polylog reallocation), run
   against the same three workloads as the classics — PF at two cs,
   Robson's PR, and random churn — and reported next to the Theorem 1
   floor and the Theorem 2 ceiling. Every point also lands as a row in
   the --json report's "zoo" list, so BENCH_results.json tracks
   HS/M-vs-bounds for the zoo PR-over-PR. *)

let zoo_managers =
  [ "meshing"; "compact-fit"; "cost-oblivious"; "polylog-realloc" ]

let zoo_records : Json.t list ref = ref []

let record_zoo ?c ?floor ?ceiling ?robson ~workload ~manager ~m ~n
    (o : Pc.Runner.outcome) =
  let opt = function Some v -> Json.Float v | None -> Json.Null in
  zoo_records :=
    Json.Obj
      [
        ("workload", Json.String workload);
        ("manager", Json.String manager);
        ("m", Json.Int m);
        ("n", Json.Int n);
        ("c", opt c);
        ("hs", Json.Int o.hs);
        ("hs_over_m", Json.Float o.hs_over_m);
        ("moved", Json.Int o.moved);
        ("theorem1_floor", opt floor);
        ("theorem2_ceiling", opt ceiling);
        ("robson_bound", opt robson);
        ("compliant", Json.Bool o.compliant);
      ]
    :: !zoo_records

let sim_zoo opts =
  let m, n = if opts.small then (1 lsl 14, 1 lsl 7) else (1 lsl 16, 1 lsl 8) in
  let cs = [ 8.0; 16.0 ] in
  let churn = if opts.small then 5_000 else 20_000 in
  let churn_n = 1 lsl 6 in
  let pf_spec c manager = Spec.pf ~c ~manager ~m ~n () in
  let robson_spec manager = Spec.robson ~c:8.0 ~manager ~m ~n () in
  let churn_spec manager =
    Spec.random_churn ~seed:7 ~churn ~c:8.0 ~manager ~m
      ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 6 })
      ~target_live:(m / 2) ()
  in
  line "=== Table S4: literature zoo vs the paper's bounds (M=%d, n=%d) ===" m
    n;
  line
    "    (meshing / compact-fit / cost-oblivious / polylog-realloc; Theorem \
     1 floors every c-partial manager, Theorem 2 caps what compaction must \
     achieve)";
  let find =
    run_sweep opts "sim-zoo"
      (List.concat_map (fun c -> List.map (pf_spec c) zoo_managers) cs
      @ List.map robson_spec zoo_managers
      @ List.map churn_spec zoo_managers)
  in
  line "";
  line "    PF adversary: HS/M per manager";
  line "%6s %8s %8s | %8s %12s %15s %16s" "c" "floor" "T2 cap" "meshing"
    "compact-fit" "cost-oblivious" "polylog-realloc";
  List.iter
    (fun c ->
      let floor = Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c in
      let ceiling =
        if Pc.Bounds.Theorem2.applicable ~n ~c then
          Some (Pc.Bounds.Theorem2.waste_factor ~m ~n ~c)
        else None
      in
      let v manager =
        match find (pf_spec c manager) with
        | Ok o ->
            record_zoo ~workload:"pf" ~manager ~m ~n ~c ~floor ?ceiling o;
            o.hs_over_m
        | Error _ -> Float.nan
      in
      line "%6.0f %8.3f %8s | %8.3f %12.3f %15.3f %16.3f" c floor
        (match ceiling with Some u -> Fmt.str "%.1f" u | None -> "-")
        (v "meshing") (v "compact-fit") (v "cost-oblivious")
        (v "polylog-realloc"))
    cs;
  line "";
  line "    PR adversary (Robson, c = 8): HS/M per manager";
  let robson_bound = Pc.Bounds.Robson.waste_factor_pow2 ~m ~n in
  line "    (Robson's matching bound for non-moving managers: %.3f)"
    robson_bound;
  List.iter
    (fun manager ->
      match find (robson_spec manager) with
      | Ok o ->
          record_zoo ~workload:"robson" ~manager ~m ~n ~c:8.0
            ~robson:robson_bound o;
          line "    %-16s HS/M=%6.3f  moved=%d" manager o.hs_over_m o.moved
      | Error msg -> line "    %-16s failed: %s" manager msg)
    zoo_managers;
  line "";
  line "    random churn (seed 7, c = 8, sizes <= %d): HS/M per manager"
    churn_n;
  let churn_floor =
    Pc.Bounds.Cohen_petrank.waste_factor ~m ~n:churn_n ~c:8.0
  in
  let churn_ceiling =
    if Pc.Bounds.Theorem2.applicable ~n:churn_n ~c:8.0 then
      Some (Pc.Bounds.Theorem2.waste_factor ~m ~n:churn_n ~c:8.0)
    else None
  in
  line "    (adversarial floor h = %.3f — average case sits below it)"
    churn_floor;
  List.iter
    (fun manager ->
      match find (churn_spec manager) with
      | Ok o ->
          record_zoo ~workload:"churn" ~manager ~m ~n:churn_n ~c:8.0
            ~floor:churn_floor ?ceiling:churn_ceiling o;
          line "    %-16s HS/M=%6.3f  HS/live=%6.3f  moved=%d" manager
            o.hs_over_m
            (float_of_int o.hs /. float_of_int (max 1 o.final_live))
            o.moved
      | Error msg -> line "    %-16s failed: %s" manager msg)
    zoo_managers

(* ------------------------------------------------------------------ *)
(* Serve saturation: N clients vs one daemon                          *)

(* The service benchmark the robustness work is judged by: a fixed
   batch of submissions pushed through one in-process daemon by 1, 4
   and 16 concurrent clients, once crash-free and once with injected
   worker kills, so BENCH_results.json tracks both raw throughput and
   the cost of surviving (supervision restarts + client backoff)
   PR-over-PR. Each row gets a fresh state dir — no result reuse
   across rows — and a deliberately small admission queue so the
   16-client row actually exercises backpressure. *)

let serve_records : Json.t list ref = ref []

let serve_saturation opts =
  let m, churn = if opts.small then (1 lsl 9, 300) else (1 lsl 12, 1_500) in
  let total_subs = 16 and jobs_per = 3 and workers = 4 and queue_cap = 24 in
  let spec seed =
    Spec.random_churn ~seed ~churn ~c:8.0 ~manager:"first-fit" ~m
      ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 4 })
      ~target_live:(m / 2) ()
  in
  line
    "=== Serve saturation: N clients vs one daemon (%d workers, queue cap \
     %d, %d submissions x %d jobs) ==="
    workers queue_cap total_subs jobs_per;
  line "%8s %6s | %8s %9s %9s %9s %8s %9s %7s" "clients" "crash" "wall_s"
    "jobs/s" "p50_ms" "p99_ms" "backoff" "restarts" "failed";
  List.iter
    (fun clients ->
      List.iter
        (fun crash ->
          let dir = Filename.temp_dir "pc-serve-bench" "" in
          let socket = Filename.concat dir "pc.sock" in
          let faults =
            if crash then
              Some (Pc.Exec.Faults.make ~seed:1 ~wkill:0.25 ~max_transient:2 ())
            else None
          in
          let server =
            Pc.Serve.Server.start
              (Pc.Serve.Server.config ~workers ~queue_cap ~backoff:0.005
                 ?faults ~socket
                 ~state_dir:(Filename.concat dir "state")
                 ())
          in
          let submissions =
            Array.init total_subs (fun s ->
                ( Printf.sprintf "load-%d" (s mod 4),
                  List.init jobs_per (fun k -> spec ((s * jobs_per) + k)),
                  0 ))
          in
          let r = Pc.Serve.Client.load ~socket ~clients ~submissions in
          Pc.Serve.Server.drain server;
          (match Pc.Serve.Server.wait server with
          | Pc.Serve.Server.Drained -> ()
          | Pc.Serve.Server.Killed why ->
              line "    [serve: daemon killed: %s]" why;
              unrecovered := true);
          if r.Pc.Serve.Client.failed > 0 then unrecovered := true;
          let jps = float_of_int r.jobs /. Float.max r.wall 1e-9 in
          let pct p = 1000. *. Pc.Serve.Client.percentile r.latencies p in
          line "%8d %6b | %8.3f %9.1f %9.1f %9.1f %8d %9d %7d" clients crash
            r.wall jps (pct 0.5) (pct 0.99) r.submit_retries r.restarts_seen
            r.failed;
          serve_records :=
            Json.Obj
              [
                ("clients", Json.Int clients);
                ("crash", Json.Bool crash);
                ("workers", Json.Int workers);
                ("queue_cap", Json.Int queue_cap);
                ("jobs", Json.Int r.jobs);
                ("failed", Json.Int r.failed);
                ("wall_s", Json.Float r.wall);
                ("jobs_per_s", Json.Float jps);
                ("p50_ms", Json.Float (pct 0.5));
                ("p99_ms", Json.Float (pct 0.99));
                ("submit_retries", Json.Int r.submit_retries);
                ("restarts", Json.Int r.restarts_seen);
              ]
            :: !serve_records)
        [ false; true ])
    [ 1; 4; 16 ]

(* ------------------------------------------------------------------ *)
(* Bechamel timings: one Test per experiment generator                *)

let tests () =
  [
    Test.make ~name:"fig1-series" (Staged.stage fig1_series);
    Test.make ~name:"fig2-series" (Staged.stage fig2_series);
    Test.make ~name:"fig3-series" (Staged.stage fig3_series);
    Test.make ~name:"sim-lower-point-c16"
      (Staged.stage (fun () ->
           Pc.run_pf ~m:(1 lsl 13) ~n:(1 lsl 6) ~manager:"compacting" ~c:16.0
             ()));
    (* Same point pinned to the persistent backend: the in-harness A/B
       for the substrate rewrite. *)
    Test.make ~name:"sim-lower-point-c16-ref"
      (Staged.stage (fun () ->
           Pc.run_pf ~backend:Pc.Backend.Reference ~m:(1 lsl 13) ~n:(1 lsl 6)
             ~manager:"compacting" ~c:16.0 ()));
    (* Same point under the sampled oracle layer: the measured --audit
       overhead (see EXPERIMENTS.md). *)
    Test.make ~name:"sim-lower-point-c16-audit"
      (Staged.stage (fun () ->
           Pc.run_pf ~audit:Pc.Audit.Oracle.Sampled ~m:(1 lsl 13) ~n:(1 lsl 6)
             ~manager:"compacting" ~c:16.0 ()));
    Test.make ~name:"sim-upper-robson"
      (Staged.stage (fun () ->
           Pc.run_robson ~m:(1 lsl 12) ~n:(1 lsl 6) ~manager:"first-fit" ()));
    Test.make ~name:"sim-average-churn"
      (Staged.stage (fun () ->
           let program =
             Pc.Random_workload.program ~seed:7 ~churn:1000 ~m:(1 lsl 12)
               ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 5 })
               ~target_live:(1 lsl 11) ()
           in
           Pc.Runner.run ~program
             ~manager:(Pc.Managers.construct_exn "first-fit")
             ()));
  ]

let timings () =
  line "";
  line "=== Bechamel timings (OLS estimate of ns/run) ===";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"pc" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> (name, Float.nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      line "%-28s %14.0f ns/run" name est;
      if Float.is_nan est then ()
      else
        timing_records :=
          Json.Obj [ ("name", Json.String name); ("ns_per_run", Json.Float est) ]
          :: !timing_records)
    rows

(* ------------------------------------------------------------------ *)
(* Machine-readable report                                            *)

(* Provenance: the commit the numbers came from, so entries appended
   PR-over-PR stay attributable. Best-effort — "unknown" outside a git
   checkout. *)
let git_commit () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      if status = Unix.WEXITED 0 && line <> "" then line else "unknown"

let write_json opts =
  match opts.json_path with
  | None -> ()
  | Some path ->
      let entry =
        Json.Obj
          [
            ("unix_time", Json.Float (Unix.gettimeofday ()));
            ("commit", Json.String (git_commit ()));
            ( "backend",
              Json.String (Pc.Backend.to_string (Pc.Backend.default ())) );
            ("ocaml", Json.String Sys.ocaml_version);
            ("jobs", Json.Int opts.jobs);
            ("scale", Json.String (if opts.small then "small" else "default"));
            ("cache", Json.Bool (opts.cache <> None));
            ( "experiments",
              Json.List (List.map (fun s -> Json.String s) opts.selected) );
            ("sweeps", Json.List (List.rev !sweep_records));
            ("zoo", Json.List (List.rev !zoo_records));
            ("serve", Json.List (List.rev !serve_records));
            ("timings", Json.List (List.rev !timing_records));
            ( "telemetry",
              if opts.telemetry = Pc.Telemetry.Sink.Off then Json.Null
              else
                Pc.Telemetry.Snapshot.to_json (Pc.Telemetry.Registry.snapshot ())
            );
          ]
      in
      (* Append to the existing report so the perf trajectory is
         tracked run-over-run (and PR-over-PR). *)
      let previous =
        if Sys.file_exists path then begin
          let ic = open_in_bin path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Json.of_string text with
          | exception _ -> []
          | j -> (
              match Option.bind (Json.member "runs" j) Json.to_list with
              | Some runs -> runs
              | None -> [])
        end
        else []
      in
      let report = Json.Obj [ ("runs", Json.List (previous @ [ entry ])) ] in
      (* Atomic like the result cache: a run killed mid-write must not
         destroy the accumulated perf trajectory. *)
      let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
      (try
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () ->
             output_string oc (Json.to_string ~indent:true report);
             output_char oc '\n')
       with e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path;
      line "";
      line "wrote %s (%d run%s)" path
        (List.length previous + 1)
        (if previous = [] then "" else "s")

(* ------------------------------------------------------------------ *)

let main () =
  (* Simulations churn short-lived lists and closures; the 256k-word
     default minor heap forces constant promotion at these rates. One
     harness-wide bump (both backends alike) keeps the measurements
     about the substrate, not the collector. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 1 lsl 20 };
  let rec parse opts no_cache cache_dir = function
    | [] -> (opts, no_cache, cache_dir)
    | ("--jobs" | "-j") :: v :: rest ->
        let jobs =
          match int_of_string_opt v with
          | Some j when j >= 1 -> j
          | Some _ | None -> Fmt.invalid_arg "bad --jobs value %S" v
        in
        parse { opts with jobs } no_cache cache_dir rest
    | "--backend" :: v :: rest ->
        Pc.Backend.set_default (Pc.Backend.of_string_exn v);
        parse opts no_cache cache_dir rest
    | "--no-cache" :: rest -> parse opts true cache_dir rest
    | "--cache-dir" :: d :: rest -> parse opts no_cache (Some d) rest
    | "--resume" :: rest -> parse { opts with resume = true } no_cache cache_dir rest
    | "--retries" :: v :: rest ->
        let retries =
          match int_of_string_opt v with
          | Some r when r >= 0 -> r
          | Some _ | None -> Fmt.invalid_arg "bad --retries value %S" v
        in
        parse { opts with retries } no_cache cache_dir rest
    | "--timeout" :: v :: rest ->
        let timeout =
          match float_of_string_opt v with
          | Some t when t > 0. -> t
          | Some _ | None -> Fmt.invalid_arg "bad --timeout value %S" v
        in
        parse { opts with timeout = Some timeout } no_cache cache_dir rest
    | "--inject-faults" :: v :: rest ->
        let faults =
          match Pc.Exec.Faults.of_string v with
          | Ok f -> f
          | Error msg -> Fmt.invalid_arg "bad --inject-faults spec: %s" msg
        in
        parse { opts with faults = Some faults } no_cache cache_dir rest
    | "--audit" :: v :: rest ->
        let audit = Pc.Audit.Oracle.level_of_string_exn v in
        parse { opts with audit } no_cache cache_dir rest
    | "--failures-dir" :: d :: rest ->
        parse { opts with failures_dir = Some d } no_cache cache_dir rest
    | "--telemetry" :: v :: rest ->
        let telemetry = Pc.Telemetry.Sink.of_string_exn v in
        parse { opts with telemetry } no_cache cache_dir rest
    | "--json" :: p :: rest ->
        parse { opts with json_path = Some p } no_cache cache_dir rest
    | "--small" :: rest -> parse { opts with small = true } no_cache cache_dir rest
    | "--no-timing" :: rest ->
        parse { opts with no_timing = true } no_cache cache_dir rest
    | a :: rest ->
        parse { opts with selected = opts.selected @ [ a ] } no_cache cache_dir rest
  in
  let opts, no_cache, cache_dir =
    parse
      {
        jobs = 1;
        cache = None;
        cache_dir = Cache.default_dir ();
        json_path = None;
        small = false;
        no_timing = false;
        selected = [];
        resume = false;
        retries = 2;
        timeout = None;
        faults = None;
        audit = Pc.Audit.Oracle.Off;
        failures_dir = None;
        telemetry = Pc.Telemetry.Sink.Off;
      }
      false None
      (List.tl (Array.to_list Sys.argv))
  in
  let opts =
    {
      opts with
      cache = (if no_cache then None else Some (Cache.create ?dir:cache_dir ()));
      cache_dir =
        (match cache_dir with Some d -> d | None -> Cache.default_dir ());
    }
  in
  Pc.Telemetry.Registry.set_level opts.telemetry;
  let wants name =
    match opts.selected with [] -> true | sel -> List.mem name sel
  in
  if wants "fig1" then fig1 ();
  if wants "fig2" then fig2 ();
  if wants "fig3" then fig3 ();
  if wants "sim-lower" then sim_lower opts;
  if wants "sim-upper" then sim_upper opts;
  if wants "sim-average" then sim_average opts;
  if wants "sim-fig1" then sim_fig1 opts;
  if wants "ablation" then ablation opts;
  if wants "sim-zoo" then sim_zoo opts;
  if wants "serve" then serve_saturation opts;
  if (not opts.no_timing) && (opts.selected = [] || wants "timings") then
    timings ();
  write_json opts;
  if !violated then begin
    line "";
    line "FAIL: oracle violations were triaged (bundle paths in the \
          summaries above)";
    exit Pc.Audit.Report.exit_violation
  end;
  if !unrecovered then begin
    line "";
    line "FAIL: injected faults left unrecovered failures (see summaries)";
    exit 1
  end

(* Exit-code taxonomy shared with the pc CLI: 2 usage, 3 oracle
   violation, 4 internal. *)
let () =
  match main () with
  | () -> ()
  | exception Pc.Audit.Report.Reported b ->
      Fmt.epr "%a@." Pc.Audit.Report.pp_bundle b;
      exit Pc.Audit.Report.exit_violation
  | exception Pc.Audit.Oracle.Violation v ->
      Fmt.epr "%a@." Pc.Audit.Oracle.pp_violation v;
      exit Pc.Audit.Report.exit_violation
  | exception Invalid_argument msg ->
      Fmt.epr "bench: %s@." msg;
      exit Pc.Audit.Report.exit_usage
  | exception e ->
      Fmt.epr "bench: internal error: %s@." (Printexc.to_string e);
      exit Pc.Audit.Report.exit_internal
