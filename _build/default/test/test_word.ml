open Pc_heap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_is_pow2 () =
  List.iter
    (fun (x, expect) -> check_bool (Fmt.str "is_pow2 %d" x) expect (Word.is_pow2 x))
    [
      (1, true); (2, true); (4, true); (1024, true); (1 lsl 40, true);
      (0, false); (-1, false); (-4, false); (3, false); (6, false);
      (1023, false); (1025, false);
    ]

let test_pow2 () =
  check_int "2^0" 1 (Word.pow2 0);
  check_int "2^10" 1024 (Word.pow2 10);
  check_int "2^61" (1 lsl 61) (Word.pow2 61);
  Alcotest.check_raises "negative" (Invalid_argument "Word.pow2: exponent out of range")
    (fun () -> ignore (Word.pow2 (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Word.pow2: exponent out of range")
    (fun () -> ignore (Word.pow2 62))

let test_log2 () =
  check_int "floor 1" 0 (Word.log2_floor 1);
  check_int "floor 2" 1 (Word.log2_floor 2);
  check_int "floor 3" 1 (Word.log2_floor 3);
  check_int "floor 4" 2 (Word.log2_floor 4);
  check_int "floor 1023" 9 (Word.log2_floor 1023);
  check_int "floor 1024" 10 (Word.log2_floor 1024);
  check_int "ceil 1" 0 (Word.log2_ceil 1);
  check_int "ceil 3" 2 (Word.log2_ceil 3);
  check_int "ceil 4" 2 (Word.log2_ceil 4);
  check_int "ceil 5" 3 (Word.log2_ceil 5);
  Alcotest.check_raises "log2_floor 0"
    (Invalid_argument "Word.log2_floor: non-positive argument") (fun () ->
      ignore (Word.log2_floor 0))

let test_round_up_pow2 () =
  List.iter
    (fun (x, expect) -> check_int (Fmt.str "round %d" x) expect (Word.round_up_pow2 x))
    [ (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1000, 1024); (1024, 1024) ]

let test_align () =
  check_int "up already" 64 (Word.align_up 64 ~align:64);
  check_int "up" 128 (Word.align_up 65 ~align:64);
  check_int "up 0" 0 (Word.align_up 0 ~align:8);
  check_int "down already" 64 (Word.align_down 64 ~align:64);
  check_int "down" 64 (Word.align_down 127 ~align:64);
  check_bool "aligned" true (Word.is_aligned 192 ~align:64);
  check_bool "not aligned" false (Word.is_aligned 193 ~align:64)

let test_pp_count () =
  let s x = Fmt.str "%a" Word.pp_count x in
  Alcotest.(check string) "kilo" "4K" (s 4096);
  Alcotest.(check string) "mega" "256M" (s (256 * (1 lsl 20)));
  Alcotest.(check string) "giga" "2G" (s (2 lsl 30));
  Alcotest.(check string) "inexact stays numeric" "1025" (s 1025);
  Alcotest.(check string) "small" "37" (s 37)

let prop_align_up =
  QCheck.Test.make ~name:"align_up is the least aligned address >= x"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4096))
    (fun (x, align) ->
      let a = Word.align_up x ~align in
      a >= x && a mod align = 0 && a - x < align)

let prop_round_up_pow2 =
  QCheck.Test.make ~name:"round_up_pow2 is the least power of two >= x"
    QCheck.(int_range 1 (1 lsl 30))
    (fun x ->
      let p = Word.round_up_pow2 x in
      Word.is_pow2 p && p >= x && (p = 1 || p / 2 < x))

let prop_log2_inverse =
  QCheck.Test.make ~name:"log2_floor inverts pow2"
    QCheck.(int_range 0 61)
    (fun k -> Word.log2_floor (Word.pow2 k) = k)

let () =
  Alcotest.run "word"
    [
      ( "unit",
        [
          Alcotest.test_case "is_pow2" `Quick test_is_pow2;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "round_up_pow2" `Quick test_round_up_pow2;
          Alcotest.test_case "align" `Quick test_align;
          Alcotest.test_case "pp_count" `Quick test_pp_count;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_align_up; prop_round_up_pow2; prop_log2_inverse ] );
    ]
