open Pc_adversary

(* The auxiliary workloads: the PW-style chunk-pinning adversary, the
   scripted-workload DSL, and the sawtooth stressor. *)

(* ------------------------------------------------------------------ *)
(* PW                                                                 *)

let test_pw_hurts_non_moving () =
  (* PW pins a word per chunk; non-moving managers must waste plenty
     (not necessarily Robson's exact bound — it's a different
     program). *)
  let m = 1 lsl 10 and n = 1 lsl 4 in
  let program = Pw.program ~m ~n () in
  let o =
    Runner.run ~program ~manager:Pc_manager.First_fit.manager ()
  in
  Alcotest.(check bool)
    (Fmt.str "first-fit wastes (HS/M = %.3f)" o.hs_over_m)
    true (o.hs_over_m > 1.8)

let test_pw_cheap_for_compactors () =
  (* ... but a budgeted compactor shakes it off much more cheaply than
     it shakes off PF — the paper's point about [4]'s bound. *)
  let m = 1 lsl 12 and n = 1 lsl 6 in
  let c = 16.0 in
  let pw = Pw.program ~m ~n () in
  let o_pw =
    Runner.run ~c ~program:pw ~manager:(Pc_manager.Compacting.make ()) ()
  in
  let _, pf = Pf.program ~m ~n ~c () in
  let o_pf =
    Runner.run ~c ~program:pf ~manager:(Pc_manager.Compacting.make ()) ()
  in
  Alcotest.(check bool)
    (Fmt.str "PF (%.3f) beats PW (%.3f) against a compactor"
       o_pf.hs_over_m o_pw.hs_over_m)
    true
    (o_pf.hs_over_m >= o_pw.hs_over_m -. 0.15);
  Alcotest.(check bool) "both compliant" true (o_pw.compliant && o_pf.compliant)

let test_pw_steps_validation () =
  Alcotest.check_raises "steps range"
    (Invalid_argument "Pw.program: steps out of range") (fun () ->
      ignore (Pw.program ~steps:7 ~m:1024 ~n:16 ()))

(* ------------------------------------------------------------------ *)
(* Script DSL                                                         *)

let test_script_runs () =
  let actions =
    Script.
      [
        Alloc { slot = "x"; size = 16 };
        Alloc { slot = "y"; size = 8 };
        Free { slot = "x" };
        Alloc { slot = "z"; size = 16 };
      ]
  in
  (* peak is x+y = 24 (x dies before z arrives) *)
  Alcotest.(check int) "max live" 24 (Script.max_live actions);
  Alcotest.(check int) "max size" 16 (Script.max_size actions);
  let program = Script.program actions in
  let o =
    Runner.run ~program ~manager:Pc_manager.First_fit.manager ()
  in
  (* first fit reuses x's hole for z *)
  Alcotest.(check int) "HS" 24 o.hs;
  Alcotest.(check int) "final live" 24 o.final_live

let test_script_validation () =
  let open Script in
  (try
     validate [ Alloc { slot = "x"; size = 4 }; Alloc { slot = "x"; size = 4 } ];
     Alcotest.fail "expected Bad_script"
   with Bad_script _ -> ());
  (try
     validate [ Free { slot = "x" } ];
     Alcotest.fail "expected Bad_script"
   with Bad_script _ -> ());
  try
    validate [ Alloc { slot = "x"; size = 0 } ];
    Alcotest.fail "expected Bad_script"
  with Bad_script _ -> ()

let test_script_parse () =
  let actions = Script.parse "a x 16; a y 8 ; f x;a z 4" in
  Alcotest.(check int) "four actions" 4 (List.length actions);
  Alcotest.(check string) "roundtrip head" "a x 16"
    (Fmt.str "%a" Script.pp_action (List.hd actions));
  (try
     ignore (Script.parse "a x");
     Alcotest.fail "expected Bad_script"
   with Script.Bad_script _ -> ());
  try
    ignore (Script.parse "a x sixteen");
    Alcotest.fail "expected Bad_script"
  with Script.Bad_script _ -> ()

let test_script_checkerboard () =
  (* the quickstart's checkerboard, as a script: 8 x 8-word objects,
     free the even ones, allocate 16 — first fit must extend *)
  let allocs =
    List.init 8 (fun i ->
        Script.Alloc { slot = Fmt.str "o%d" i; size = 8 })
  in
  let frees =
    List.filteri (fun i _ -> i mod 2 = 0) allocs
    |> List.map (function
         | Script.Alloc { slot; _ } -> Script.Free { slot }
         | Script.Free _ -> assert false)
  in
  let actions = allocs @ frees @ [ Script.Alloc { slot = "big"; size = 16 } ] in
  let o =
    Runner.run ~program:(Script.program actions)
      ~manager:Pc_manager.First_fit.manager ()
  in
  Alcotest.(check int) "fragmented heap" 80 o.hs

(* ------------------------------------------------------------------ *)
(* Sawtooth                                                           *)

let test_sawtooth_patterns () =
  List.iter
    (fun pattern ->
      let program = Sawtooth.program ~pattern ~m:2048 ~n:32 () in
      let o =
        Runner.run ~program ~manager:Pc_manager.First_fit.manager ()
      in
      Alcotest.(check bool) "heap covers live" true (o.hs >= o.final_live);
      Alcotest.(check bool) "some waste" true (o.hs_over_m >= 1.0))
    [ Sawtooth.Every_other; Sawtooth.First_half; Sawtooth.Random 3 ]

let test_sawtooth_worse_than_random_better_than_pf () =
  (* middle data point: sawtooth fragments first-fit more than random
     churn does at equal live occupancy *)
  let m = 1 lsl 12 in
  let saw = Sawtooth.program ~m ~n:32 () in
  let o_saw =
    Runner.run ~program:saw ~manager:Pc_manager.First_fit.manager ()
  in
  let rand =
    Random_workload.program ~seed:3 ~churn:5_000 ~m
      ~dist:(Random_workload.Pow2 { lo_log = 0; hi_log = 5 })
      ~target_live:m ()
  in
  let o_rand =
    Runner.run ~program:rand ~manager:Pc_manager.First_fit.manager ()
  in
  Alcotest.(check bool)
    (Fmt.str "sawtooth (%.3f) >= random (%.3f)" o_saw.hs_over_m
       o_rand.hs_over_m)
    true
    (o_saw.hs_over_m >= o_rand.hs_over_m)

(* Random valid scripts: the runner's final live space equals the sum
   of never-freed slots, against any manager. *)
let prop_random_scripts =
  QCheck.Test.make ~name:"random scripts: final live matches" ~count:30
    QCheck.(pair (int_bound 100_000) (int_range 1 60))
    (fun (seed, steps) ->
      let st = Random.State.make [| seed |] in
      let actions = ref [] in
      let live = ref [] in
      let next = ref 0 in
      for _ = 1 to steps do
        if Random.State.bool st || !live = [] then begin
          incr next;
          let slot = Fmt.str "s%d" !next in
          let size = 1 + Random.State.int st 32 in
          actions := Script.Alloc { slot; size } :: !actions;
          live := (slot, size) :: !live
        end
        else begin
          let i = Random.State.int st (List.length !live) in
          let slot, _ = List.nth !live i in
          actions := Script.Free { slot } :: !actions;
          live := List.filter (fun (s, _) -> s <> slot) !live
        end
      done;
      let actions = List.rev !actions in
      let expected = List.fold_left (fun a (_, s) -> a + s) 0 !live in
      List.for_all
        (fun key ->
          let o =
            Runner.run
              ~program:(Script.program actions)
              ~manager:(Pc_manager.Registry.construct_exn key)
              ()
          in
          o.final_live = expected && o.hs >= expected)
        [ "first-fit"; "buddy"; "segregated"; "tlsf" ])

(* PF is deterministic: identical parameters and manager give the
   same heap size. *)
let prop_pf_deterministic =
  QCheck.Test.make ~name:"PF deterministic" ~count:5
    QCheck.(int_range 3 10)
    (fun c_small ->
      let c = float_of_int c_small in
      let run () =
        let _, program = Pf.program ~m:(1 lsl 11) ~n:(1 lsl 5) ~c () in
        (Runner.run ~c ~program
           ~manager:(Pc_manager.Compacting.make ())
           ())
          .hs
      in
      run () = run ())

let () =
  Alcotest.run "workloads"
    [
      ( "pw",
        [
          Alcotest.test_case "hurts non-moving" `Quick test_pw_hurts_non_moving;
          Alcotest.test_case "cheap for compactors" `Quick
            test_pw_cheap_for_compactors;
          Alcotest.test_case "steps validation" `Quick test_pw_steps_validation;
        ] );
      ( "script",
        [
          Alcotest.test_case "runs" `Quick test_script_runs;
          Alcotest.test_case "validation" `Quick test_script_validation;
          Alcotest.test_case "parse" `Quick test_script_parse;
          Alcotest.test_case "checkerboard" `Quick test_script_checkerboard;
        ] );
      ( "sawtooth",
        [
          Alcotest.test_case "patterns" `Quick test_sawtooth_patterns;
          Alcotest.test_case "vs random" `Quick
            test_sawtooth_worse_than_random_better_than_pf;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_scripts; prop_pf_deterministic ] );
    ]
