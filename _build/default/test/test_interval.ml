open Pc_heap

let iv start stop = Interval.make ~start ~stop
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make () =
  let t = iv 3 7 in
  check_int "start" 3 (Interval.start t);
  check_int "stop" 7 (Interval.stop t);
  check_int "length" 4 (Interval.length t);
  check_bool "empty" true (Interval.is_empty (iv 5 5));
  Alcotest.check_raises "reversed"
    (Invalid_argument "Interval.make: need 0 <= start <= stop") (fun () ->
      ignore (iv 7 3));
  Alcotest.check_raises "negative"
    (Invalid_argument "Interval.make: need 0 <= start <= stop") (fun () ->
      ignore (iv (-1) 3))

let test_contains () =
  let t = iv 3 7 in
  check_bool "left edge" true (Interval.contains t 3);
  check_bool "inside" true (Interval.contains t 5);
  check_bool "right edge is out" false (Interval.contains t 7);
  check_bool "before" false (Interval.contains t 2)

let test_relations () =
  check_bool "overlap" true (Interval.overlaps (iv 0 5) (iv 4 9));
  check_bool "touching do not overlap" false (Interval.overlaps (iv 0 5) (iv 5 9));
  check_bool "touching adjacent" true (Interval.adjacent (iv 0 5) (iv 5 9));
  check_bool "gap not adjacent" false (Interval.adjacent (iv 0 5) (iv 6 9));
  check_bool "includes" true (Interval.includes (iv 0 10) (iv 3 7));
  check_bool "not includes" false (Interval.includes (iv 0 10) (iv 3 11))

let test_join_inter () =
  Alcotest.(check bool)
    "join touching" true
    (Interval.equal (Interval.join (iv 0 5) (iv 5 9)) (iv 0 9));
  Alcotest.(check bool)
    "join overlap" true
    (Interval.equal (Interval.join (iv 0 6) (iv 4 9)) (iv 0 9));
  Alcotest.check_raises "join disjoint"
    (Invalid_argument "Interval.join: intervals neither overlap nor touch")
    (fun () -> ignore (Interval.join (iv 0 4) (iv 6 9)));
  (match Interval.inter (iv 0 6) (iv 4 9) with
  | Some t -> check_bool "inter" true (Interval.equal t (iv 4 6))
  | None -> Alcotest.fail "expected intersection");
  check_bool "inter disjoint" true (Interval.inter (iv 0 4) (iv 5 9) = None);
  check_bool "inter touching" true (Interval.inter (iv 0 5) (iv 5 9) = None)

let arb_interval =
  QCheck.map
    (fun (a, b) -> iv (min a b) (max a b))
    QCheck.(pair (int_bound 1000) (int_bound 1000))

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlaps is symmetric"
    QCheck.(pair arb_interval arb_interval)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let prop_inter_overlap =
  QCheck.Test.make ~name:"inter is Some iff overlaps"
    QCheck.(pair arb_interval arb_interval)
    (fun (a, b) -> Option.is_some (Interval.inter a b) = Interval.overlaps a b)

let prop_join_includes =
  QCheck.Test.make ~name:"join includes both arguments"
    QCheck.(pair arb_interval arb_interval)
    (fun (a, b) ->
      QCheck.assume (Interval.overlaps a b || Interval.adjacent a b);
      let j = Interval.join a b in
      Interval.includes j a && Interval.includes j b)

let () =
  Alcotest.run "interval"
    [
      ( "unit",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "relations" `Quick test_relations;
          Alcotest.test_case "join/inter" `Quick test_join_inter;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_overlap_symmetric; prop_inter_overlap; prop_join_includes ] );
    ]
