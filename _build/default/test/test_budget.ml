open Pc_heap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_quota_math () =
  let b = Budget.create ~c:8.0 in
  check_int "empty quota" 0 (Budget.quota b);
  check_int "empty available" 0 (Budget.available b);
  check_bool "cannot move yet" false (Budget.can_move b 1);
  Budget.on_alloc b 100;
  check_int "quota 100/8" 12 (Budget.quota b);
  check_int "available" 12 (Budget.available b);
  Budget.charge_move b 10;
  check_int "available after move" 2 (Budget.available b);
  Budget.on_alloc b 60;
  check_int "quota recharges" 20 (Budget.quota b);
  check_int "available recharged" 10 (Budget.available b);
  check_bool "compliant" true (Budget.is_compliant b)

let test_exceeded () =
  let b = Budget.create ~c:4.0 in
  Budget.on_alloc b 16;
  Budget.charge_move b 4;
  (try
     Budget.charge_move b 1;
     Alcotest.fail "expected Exceeded"
   with Budget.Exceeded { requested; available } ->
     check_int "requested" 1 requested;
     check_int "available" 0 available);
  check_bool "still compliant after rejection" true (Budget.is_compliant b)

let test_fractional_c () =
  let b = Budget.create ~c:1.5 in
  Budget.on_alloc b 9;
  check_int "quota floor(9/1.5)" 6 (Budget.quota b)

let test_unlimited () =
  let b = Budget.unlimited () in
  check_bool "is unlimited" true (Budget.is_unlimited b);
  Budget.charge_move b 1_000_000;
  check_bool "never exceeded" true (Budget.is_compliant b)

let test_create_validation () =
  Alcotest.check_raises "c = 1 rejected" (Invalid_argument "Budget.create: need c > 1")
    (fun () -> ignore (Budget.create ~c:1.0))

(* Any interleaving of allocations and affordable moves keeps the
   budget compliant, and the quota equals floor(allocated/c). *)
let prop_accounting =
  QCheck.Test.make ~name:"interleaved alloc/move accounting"
    QCheck.(triple (int_bound 100_000) (int_range 2 64) (int_range 1 200))
    (fun (seed, c, steps) ->
      let st = Random.State.make [| seed |] in
      let b = Budget.create ~c:(float_of_int c) in
      let allocated = ref 0 and moved = ref 0 in
      for _ = 1 to steps do
        if Random.State.bool st then begin
          let words = 1 + Random.State.int st 100 in
          Budget.on_alloc b words;
          allocated := !allocated + words
        end
        else begin
          let want = 1 + Random.State.int st 20 in
          if Budget.can_move b want then begin
            Budget.charge_move b want;
            moved := !moved + want
          end
        end
      done;
      Budget.is_compliant b
      && Budget.quota b = !allocated / c
      && Budget.available b = (!allocated / c) - !moved)

let () =
  Alcotest.run "budget"
    [
      ( "unit",
        [
          Alcotest.test_case "quota math" `Quick test_quota_math;
          Alcotest.test_case "exceeded" `Quick test_exceeded;
          Alcotest.test_case "fractional c" `Quick test_fractional_c;
          Alcotest.test_case "unlimited" `Quick test_unlimited;
          Alcotest.test_case "validation" `Quick test_create_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_accounting ]);
    ]
