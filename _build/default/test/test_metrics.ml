open Pc_heap

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* A fixed scenario: objects at [0,10) and [20,25), so the frontier is
   25 with one 10-word gap, and the high-water mark is 25. *)
let scenario () =
  let h = Heap.create () in
  ignore (Heap.alloc h ~addr:0 ~size:10 : Oid.t);
  ignore (Heap.alloc h ~addr:20 ~size:5 : Oid.t);
  h

let test_snapshot () =
  let h = scenario () in
  let s = Metrics.snapshot h in
  check_int "live" 15 s.live_words;
  check_int "objects" 2 s.live_objects;
  check_int "hwm" 25 s.high_water;
  check_int "frontier" 25 s.frontier;
  check_int "gaps" 1 s.gap_count;
  check_int "free" 10 s.free_below_frontier;
  check_int "largest" 10 s.largest_gap;
  check_float "waste" (25.0 /. 15.0) (Metrics.waste_factor s);
  check_float "frag" 0.4 (Metrics.external_fragmentation s);
  check_float "splinter (one gap)" 0.0 (Metrics.splintering s);
  check_float "utilization" 0.6 (Metrics.utilization s)

let test_empty_heap () =
  let s = Metrics.snapshot (Heap.create ()) in
  check_float "frag" 0.0 (Metrics.external_fragmentation s);
  check_float "splinter" 0.0 (Metrics.splintering s);
  check_float "utilization" 1.0 (Metrics.utilization s);
  Alcotest.(check bool) "waste infinite" true
    (Float.is_integer (Metrics.waste_factor s) = false
    || Metrics.waste_factor s = Float.infinity)

let test_histogram () =
  let h = scenario () in
  (* one gap of 10 words: bucket floor(log2 10) = 3 *)
  let hist = Metrics.gap_histogram h in
  check_int "bucket 3" 1 hist.(3);
  check_int "total buckets" 1 (Array.fold_left ( + ) 0 hist)

let test_layout_render () =
  let h = scenario () in
  Alcotest.(check string)
    "render" "##########..........#####"
    (Layout.render
       ~config:{ Layout.words_per_cell = 1; cells_per_row = 80; chunk_words = None }
       h);
  Alcotest.(check string)
    "render with chunk rules" "##########|..........|#####"
    (Layout.render
       ~config:
         { Layout.words_per_cell = 1; cells_per_row = 80; chunk_words = Some 10 }
       h);
  (* 16-word cells: [0,16) holds 10 live words (mixed), [16,25) holds
     5 of 9 (mixed). *)
  Alcotest.(check string)
    "coarse cells mix" "++"
    (Layout.render
       ~config:
         { Layout.words_per_cell = 16; cells_per_row = 80; chunk_words = None }
       h);
  (* fully live coarse cell *)
  let h2 = Heap.create () in
  ignore (Heap.alloc h2 ~addr:0 ~size:16 : Oid.t);
  ignore (Heap.alloc h2 ~addr:20 ~size:4 : Oid.t);
  Alcotest.(check string)
    "full and mixed" "#+"
    (Layout.render
       ~config:
         { Layout.words_per_cell = 16; cells_per_row = 80; chunk_words = None }
       h2)

(* Minimal substring check to avoid a dependency. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  loop 0

let test_layout_describe () =
  let h = scenario () in
  let text = Layout.describe h in
  Alcotest.(check bool) "mentions gap" true
    (contains text "[10,20) free (10 words)");
  Alcotest.(check bool) "mentions object" true
    (contains text "[0,10) object #0 (10 words)")

let () =
  Alcotest.run "metrics_layout"
    [
      ( "metrics",
        [
          Alcotest.test_case "snapshot" `Quick test_snapshot;
          Alcotest.test_case "empty heap" `Quick test_empty_heap;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "layout",
        [
          Alcotest.test_case "render" `Quick test_layout_render;
          Alcotest.test_case "describe" `Quick test_layout_describe;
        ] );
    ]
