test/test_metrics.ml: Alcotest Array Float Heap Layout Metrics Oid Pc_heap String
