test/test_evict.ml: Alcotest Budget Ctx Evict Heap Interval List Oid Pc_heap Pc_manager
