test/test_trace.ml: Alcotest Array Heap List Pc_heap String Trace
