test/test_robson.ml: Alcotest Driver Fmt List Oid Pc_adversary Pc_bounds Pc_heap Pc_manager Program QCheck QCheck_alcotest Robson_pr Robson_steps Runner View
