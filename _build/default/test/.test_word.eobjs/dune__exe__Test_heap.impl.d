test/test_heap.ml: Alcotest Heap List Oid Pc_heap QCheck QCheck_alcotest Random Trace
