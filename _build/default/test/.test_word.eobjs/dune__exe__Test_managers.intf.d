test/test_managers.mli:
