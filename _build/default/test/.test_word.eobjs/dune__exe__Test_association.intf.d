test/test_association.mli:
