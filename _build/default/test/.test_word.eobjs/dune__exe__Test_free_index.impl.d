test/test_free_index.ml: Alcotest Array Free_index Pc_heap QCheck QCheck_alcotest Random
