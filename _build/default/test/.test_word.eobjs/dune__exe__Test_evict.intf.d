test/test_evict.mli:
