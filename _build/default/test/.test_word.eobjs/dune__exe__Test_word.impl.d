test/test_word.ml: Alcotest Fmt List Pc_heap QCheck QCheck_alcotest Word
