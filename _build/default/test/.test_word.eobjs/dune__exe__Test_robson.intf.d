test/test_robson.mli:
