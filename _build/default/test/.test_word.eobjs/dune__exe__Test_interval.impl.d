test/test_interval.ml: Alcotest Interval List Option Pc_heap QCheck QCheck_alcotest
