test/test_bounds.ml: Alcotest Array Bendersky_petrank Cohen_petrank Fmt List Logf Params Pc_bounds QCheck QCheck_alcotest Robson Theorem2
