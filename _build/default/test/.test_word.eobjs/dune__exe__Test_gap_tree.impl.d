test/test_gap_tree.ml: Alcotest Gap_tree Int List Pc_heap QCheck QCheck_alcotest Random Word
