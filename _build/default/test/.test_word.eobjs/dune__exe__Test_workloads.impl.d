test/test_workloads.ml: Alcotest Fmt List Pc_adversary Pc_manager Pf Pw QCheck QCheck_alcotest Random Random_workload Runner Sawtooth Script
