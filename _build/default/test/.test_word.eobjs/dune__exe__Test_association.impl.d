test/test_association.ml: Alcotest Association List Oid Pc_adversary Pc_heap QCheck QCheck_alcotest Random
