test/test_free_index.mli:
