test/test_reduction.ml: Alcotest Array List Pc_adversary Pc_manager QCheck QCheck_alcotest Reduction
