test/test_runner.ml: Alcotest Ctx Driver First_fit Free_index Heap List Manager Pc_adversary Pc_heap Pc_manager Program Random_workload Runner View
