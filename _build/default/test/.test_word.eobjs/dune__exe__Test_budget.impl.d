test/test_budget.ml: Alcotest Budget Pc_heap QCheck QCheck_alcotest Random
