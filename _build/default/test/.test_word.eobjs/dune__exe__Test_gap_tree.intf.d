test/test_gap_tree.mli:
