test/test_pf.ml: Alcotest Fmt List Pc_adversary Pc_bounds Pc_manager Pf Runner
