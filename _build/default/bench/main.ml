(* Benchmark harness: regenerates every data figure of the paper plus
   the simulation validation tables, then times the generators with
   Bechamel.

     dune exec bench/main.exe                       all series + timings
     dune exec bench/main.exe fig1 sim-lower        a selection
     dune exec bench/main.exe -- --no-timing        series only

   Experiments (see DESIGN.md section 4):
     fig1        lower bound h vs c (this paper vs [4] vs trivial)
     fig2        lower bound h vs n (c = 100, M = 256n)
     fig3        upper bound vs c (Theorem 2 vs prior best)
     sim-lower   measured HS(A, PF)/M vs Theorem 1 h, per c
     sim-upper   measured HS(A, PR)/M vs Robson's bound, per n;
                 upper-bound managers vs their guarantees
     sim-average random-workload fragmentation per manager
     sim-fig1    measured waste-vs-c curve (the simulated Figure 1)
     ablation    design-choice ablations A1-A4 (see EXPERIMENTS.md)
*)

open Pc_core
open Bechamel

let line fmt = Fmt.pr (fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Figure 1                                                           *)

let fig1_series () =
  List.map
    (fun c ->
      let { Pc.Bounds.Params.m; n; _ } = Pc.Bounds.Params.fig1 ~c in
      ( c,
        Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c,
        Pc.Bounds.Bendersky_petrank.waste_factor ~m ~n ~c ))
    Pc.Bounds.Params.fig1_cs

let fig1 () =
  line "=== Figure 1: lower bound on the waste factor h vs c ===";
  line
    "    (M = 256MB, n = 1MB; paper anchors: ~2.0 at c=10, ~3.15 at c=50, \
     ~3.5 at c=100)";
  line "%6s  %12s  %18s  %8s" "c" "this paper" "Bendersky-Petrank" "trivial";
  List.iter
    (fun (c, ours, bp) -> line "%6.0f  %12.3f  %18.3f  %8.1f" c ours bp 1.0)
    (fig1_series ())

(* ------------------------------------------------------------------ *)
(* Figure 2                                                           *)

let fig2_series () =
  List.map
    (fun n ->
      let { Pc.Bounds.Params.m; n; c } = Pc.Bounds.Params.fig2 ~n in
      (n, Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c))
    Pc.Bounds.Params.fig2_ns

let fig2 () =
  line "=== Figure 2: lower bound on the waste factor h vs n ===";
  line "    (c = 100, M = 256n)";
  line "%10s  %10s" "n" "h";
  List.iter
    (fun (n, h) -> line "%10s  %10.3f" (Fmt.str "%a" Pc.Word.pp_count n) h)
    (fig2_series ())

(* ------------------------------------------------------------------ *)
(* Figure 3                                                           *)

let fig3_series () =
  List.filter_map
    (fun c ->
      let { Pc.Bounds.Params.m; n; _ } = Pc.Bounds.Params.fig3 ~c in
      if Pc.Bounds.Theorem2.applicable ~n ~c then
        Some
          ( c,
            Pc.Bounds.Theorem2.waste_factor ~m ~n ~c,
            Pc.Bounds.Theorem2.prior_best ~m ~n ~c /. float_of_int m )
      else None)
    Pc.Bounds.Params.fig3_cs

let fig3 () =
  line "=== Figure 3: upper bound on the waste factor vs c ===";
  line "    (M = 256MB, n = 1MB; reconstruction — see EXPERIMENTS.md)";
  line "%6s  %12s  %12s  %12s" "c" "Theorem 2" "prior best" "improvement";
  List.iter
    (fun (c, t2, prior) ->
      line "%6.0f  %12.3f  %12.3f  %11.1f%%" c t2 prior
        (100.0 *. (prior -. t2) /. prior))
    (fig3_series ())

(* ------------------------------------------------------------------ *)
(* Table S1: PF vs c-partial managers, measured vs theory             *)

let sim_lower_point ~m ~n ~manager c =
  let r = Pc.run_pf ~m ~n ~c ~manager () in
  (r.config.ell, Float.max r.config.h 1.0, r.outcome)

let sim_lower ?(m = 1 lsl 16) ?(n = 1 lsl 8) () =
  line "=== Table S1: measured HS(A, PF)/M vs Theorem 1 (M=%d, n=%d) ===" m n;
  line "    (theory: no c-partial manager can stay below h at scale)";
  line "%6s %4s %10s | %12s %12s %10s" "c" "l" "theory h" "compacting"
    "improved-ac" "first-fit";
  List.iter
    (fun c ->
      let ell, h, o1 = sim_lower_point ~m ~n ~manager:"compacting" c in
      let _, _, o2 = sim_lower_point ~m ~n ~manager:"improved-ac" c in
      let _, _, o3 = sim_lower_point ~m ~n ~manager:"first-fit" c in
      line "%6.0f %4d %10.3f | %12.3f %12.3f %10.3f" c ell h o1.hs_over_m
        o2.hs_over_m o3.hs_over_m)
    [ 8.0; 16.0; 32.0; 64.0 ]

(* ------------------------------------------------------------------ *)
(* Table S2: Robson's PR vs managers, measured vs matching bound      *)

let sim_upper ?(m = 1 lsl 14) () =
  line "=== Table S2: measured HS(A, PR)/M vs Robson's matching bound ===";
  line "    (every non-moving manager must be >= the bound; A_o meets it)";
  line "%8s %10s | %10s %12s %10s %10s" "n" "bound" "first-fit" "aligned-fit"
    "buddy" "best-fit";
  List.iter
    (fun n ->
      let bound = Pc.Bounds.Robson.waste_factor_pow2 ~m ~n in
      let hs key = (Pc.run_robson ~m ~n ~manager:key ()).outcome.hs_over_m in
      line "%8d %10.3f | %10.3f %12.3f %10.3f %10.3f" n bound (hs "first-fit")
        (hs "aligned-fit") (hs "buddy") (hs "best-fit"))
    [ 1 lsl 4; 1 lsl 6; 1 lsl 8 ];
  line "";
  line "    upper-bound managers vs their guarantees (PF workload, c = 8):";
  let n = 1 lsl 6 in
  let _cfg, program = Pc.Pf.program ~m ~n ~c:8.0 () in
  let o =
    Pc.Runner.run ~c:8.0 ~program
      ~manager:(Pc.Managers.construct_exn "bp-simple")
      ()
  in
  line "    bp-simple: HS/M = %.3f <= (c+1) = %.1f  [%s]" o.hs_over_m 9.0
    (if o.hs_over_m <= 9.0 then "ok" else "VIOLATED");
  (* Theorem 2's side condition needs c > log(n)/2 = 3: report the
     Theorem-2-inspired manager against the (reconstructed) bound. At
     simulation scale the bound is far from tight — reported for
     completeness, not asserted. *)
  let c2 = 8.0 in
  let _cfg, program = Pc.Pf.program ~m ~n ~c:c2 () in
  let o2 =
    Pc.Runner.run ~c:c2 ~program
      ~manager:(Pc.Managers.construct_exn "improved-ac")
      ()
  in
  line "    improved-ac: HS/M = %.3f (Theorem 2 reconstruction: %.3f)"
    o2.hs_over_m
    (Pc.Bounds.Theorem2.waste_factor ~m ~n ~c:c2)

(* ------------------------------------------------------------------ *)
(* Table S3: random workloads — the average case                      *)

let sim_average ?(m = 1 lsl 14) ?(churn = 20_000) () =
  line "=== Table S3: random churn (M=%d): fragmentation by manager ===" m;
  line "    (average case — far from the adversarial worst case)";
  line "%-12s %10s %10s %10s" "manager" "HS/M" "HS/live" "moved";
  List.iter
    (fun (e : Pc.Managers.entry) ->
      let program =
        Pc.Random_workload.program ~seed:7 ~churn ~m
          ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 6 })
          ~target_live:(m / 2) ()
      in
      let o = Pc.Runner.run ~c:8.0 ~program ~manager:(e.construct ()) () in
      line "%-12s %10.3f %10.3f %10d" e.key o.hs_over_m
        (float_of_int o.hs /. float_of_int (max 1 o.final_live))
        o.moved)
    Pc.Managers.entries

(* ------------------------------------------------------------------ *)
(* Simulated Figure 1: the lower-bound curve, measured               *)

let sim_fig1 ?(m = 1 lsl 15) ?(n = 1 lsl 7) () =
  line "=== Simulated Figure 1: measured waste vs c (M=%d, n=%d) ===" m n;
  line
    "    (best = the smallest HS/M any of our c-partial managers achieves \
     against PF; theory says best >= h)";
  line "%6s %10s %10s %14s" "c" "theory h" "best" "best manager";
  List.iter
    (fun c ->
      let candidates =
        List.filter_map
          (fun key ->
            match Pc.run_pf ~m ~n ~c ~manager:key () with
            | r -> Some (r.outcome.hs_over_m, key)
            | exception Invalid_argument _ -> None)
          [ "compacting"; "improved-ac"; "sliding"; "bp-simple" ]
      in
      let best, key = List.fold_left min (Float.infinity, "-") candidates in
      line "%6g %10.3f %10.3f %14s" c
        (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c)
        best key)
    [ 6.0; 8.0; 12.0; 16.0; 24.0; 32.0; 48.0; 64.0 ]

(* ------------------------------------------------------------------ *)
(* Ablations: how much each design choice of P_F contributes          *)

let ablation ?(m = 1 lsl 15) ?(n = 1 lsl 7) () =
  let run ?ell ?stage1_steps ?maintain_density c =
    let _, program =
      Pc.Pf.program ?ell ?stage1_steps ?maintain_density ~m ~n ~c ()
    in
    let o =
      Pc.Runner.run ~c ~program
        ~manager:(Pc.Managers.construct_exn "compacting")
        ()
    in
    o.hs_over_m
  in
  line "=== Ablation A1: the density exponent l (c = 32, M=%d, n=%d) ===" m n;
  line "    (Theorem 1 optimises l; the empirical optimum should agree)";
  let best_ell =
    match Pc.Bounds.Cohen_petrank.best ~m ~n ~c:32.0 with
    | Some { ell; _ } -> ell
    | None -> 0
  in
  List.iter
    (fun ell ->
      match Pc.Bounds.Cohen_petrank.h ~m ~n ~c:32.0 ~ell with
      | Some h ->
          line "    l=%d%s  theory h=%6.3f  measured HS/M=%6.3f" ell
            (if ell = best_ell then "*" else " ")
            (Float.max h 1.0) (run ~ell 32.0)
      | None -> line "    l=%d   (invalid at these parameters)" ell)
    [ 1; 2 ];
  line "";
  line "=== Ablation A2: stage 2 density maintenance (line 13) ===";
  List.iter
    (fun c ->
      line "    c=%-3g  with density: %6.3f   without: %6.3f" c (run c)
        (run ~maintain_density:false c))
    [ 16.0; 32.0 ];
  line "";
  line "=== Ablation A3: the Robson stage (stage 1) ===";
  List.iter
    (fun c ->
      line "    c=%-3g  full stage 1: %6.3f   unit fill only: %6.3f" c
        (run c) (run ~stage1_steps:0 c))
    [ 16.0; 32.0 ];
  line "";
  line "=== Ablation A4: which manager resists P_F best (c = 16) ===";
  line "    (Theorem 1 floors them all; smaller HS/M = closer to the floor)";
  let floor16 = Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c:16.0 in
  line "    theory floor h = %.3f" floor16;
  List.iter
    (fun (e : Pc.Managers.entry) ->
      if e.moving then begin
        let _, program = Pc.Pf.program ~m ~n ~c:16.0 () in
        let o = Pc.Runner.run ~c:16.0 ~program ~manager:(e.construct ()) () in
        line "    %-12s HS/M=%6.3f  moved=%-7d %s" e.key o.hs_over_m o.moved
          (if o.hs_over_m >= floor16 -. 0.02 then "(floor respected)"
           else "(BELOW FLOOR?)")
      end)
    Pc.Managers.entries

(* ------------------------------------------------------------------ *)
(* Bechamel timings: one Test per experiment generator                *)

let tests () =
  [
    Test.make ~name:"fig1-series" (Staged.stage fig1_series);
    Test.make ~name:"fig2-series" (Staged.stage fig2_series);
    Test.make ~name:"fig3-series" (Staged.stage fig3_series);
    Test.make ~name:"sim-lower-point-c16"
      (Staged.stage (fun () ->
           sim_lower_point ~m:(1 lsl 13) ~n:(1 lsl 6) ~manager:"compacting"
             16.0));
    Test.make ~name:"sim-upper-robson"
      (Staged.stage (fun () ->
           Pc.run_robson ~m:(1 lsl 12) ~n:(1 lsl 6) ~manager:"first-fit" ()));
    Test.make ~name:"sim-average-churn"
      (Staged.stage (fun () ->
           let program =
             Pc.Random_workload.program ~seed:7 ~churn:1000 ~m:(1 lsl 12)
               ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 5 })
               ~target_live:(1 lsl 11) ()
           in
           Pc.Runner.run ~program
             ~manager:(Pc.Managers.construct_exn "first-fit")
             ()));
  ]

let timings () =
  line "";
  line "=== Bechamel timings (OLS estimate of ns/run) ===";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"pc" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> (name, Float.nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> line "%-28s %14.0f ns/run" name est) rows

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let no_timing = List.mem "--no-timing" args in
  let selected = List.filter (fun a -> a <> "--no-timing") args in
  let wants name = match selected with [] -> true | sel -> List.mem name sel in
  if wants "fig1" then fig1 ();
  if wants "fig2" then fig2 ();
  if wants "fig3" then fig3 ();
  if wants "sim-lower" then sim_lower ();
  if wants "sim-upper" then sim_upper ();
  if wants "sim-average" then sim_average ();
  if wants "sim-fig1" then sim_fig1 ();
  if wants "ablation" then ablation ();
  if (not no_timing) && (selected = [] || wants "timings") then timings ()
