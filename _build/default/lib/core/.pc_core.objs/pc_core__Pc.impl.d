lib/core/pc.ml: Pc_adversary Pc_bounds Pc_heap Pc_manager
