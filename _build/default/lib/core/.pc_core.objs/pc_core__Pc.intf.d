lib/core/pc.mli: Pc_adversary Pc_bounds Pc_heap Pc_manager
