(** Theorem 2 of the paper — the improved upper bound on partial
    compaction (a documented reconstruction; see DESIGN.md,
    "Substitutions"). *)

val coefficients : c:float -> log_n:int -> float array
(** [a_0 .. a_{log n}] with [a_0 = 1] and
    [a_i = (1 − 1/c) · max_{j<i} max(1/c, 2{^j−i}·a_j)]. *)

val applicable : n:int -> c:float -> bool
(** Theorem 2's side condition [c > ½·log2 n]. *)

val upper_bound : m:int -> n:int -> c:float -> float
(** Heap words sufficient for any program in [P(M, n)]. Raises
    [Invalid_argument] when the side condition fails. *)

val prior_best : m:int -> n:int -> c:float -> float
(** The prior best upper bound:
    [min((c+1)·M, Robson's doubled bound)]. *)

val improvement : m:int -> n:int -> c:float -> float
(** Relative improvement of {!upper_bound} over {!prior_best}
    (positive = better). *)

val waste_factor : m:int -> n:int -> c:float -> float
