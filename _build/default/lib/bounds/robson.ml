(* Robson's matching bounds for memory managers that never move
   objects (JACM 1971, JACM 1974), as quoted in Section 2.2 of the
   paper. For programs in P2(M, n) — live space at most M, object sizes
   powers of two at most n:

     min_A HS(A, P_o) = max_P HS(A_o, P) = M*(1/2*log n + 1) - n + 1.

   For arbitrary object sizes, rounding each request to the next power
   of two doubles the live-space budget, giving the doubled upper
   bound quoted by the paper. *)

let check ~m ~n =
  if n <= 0 || m <= 0 then invalid_arg "Robson: non-positive parameter";
  if n > m then invalid_arg "Robson: need n <= m"

let bound_pow2 ~m ~n =
  check ~m ~n;
  (float_of_int m *. ((0.5 *. Logf.log2i n) +. 1.0)) -. float_of_int n +. 1.0

let lower_bound_pow2 = bound_pow2
let upper_bound_pow2 = bound_pow2

let upper_bound_general ~m ~n =
  check ~m ~n;
  2.0 *. bound_pow2 ~m ~n

(* The waste factor axis used by the paper's figures: heap words per
   live word. *)
let waste_factor_pow2 ~m ~n = bound_pow2 ~m ~n /. float_of_int m
