(* The Bendersky-Petrank bounds (POPL 2011), quoted in Section 2.2 of
   the paper as the prior state of the art for partial compaction.

   Upper bound: a simple c-partial manager serves any program in
   P(M, n) within (c + 1) * M words.

   Lower bound (reconstructed from the paper's summary; the typography
   of our source text is corrupted — see DESIGN.md "Substitutions"):

     HS >= M * min(c, log n / (10 * log(c+1))) - 5n   for c <= 4 log n
     HS >= M * log n / (6 * (log log n + 2)) - n/2    for c >  4 log n

   At the paper's operating points (Figures 1-2) both branches fall
   below the trivial bound M, which is exactly the paper's point. *)

let upper_bound ~m ~c =
  if m <= 0 then invalid_arg "Bendersky_petrank.upper_bound: m <= 0";
  if c <= 1.0 then invalid_arg "Bendersky_petrank.upper_bound: c <= 1";
  (c +. 1.0) *. float_of_int m

let lower_bound ~m ~n ~c =
  if n <= 1 || m < n then invalid_arg "Bendersky_petrank.lower_bound: params";
  if c <= 1.0 then invalid_arg "Bendersky_petrank.lower_bound: c <= 1";
  let mf = float_of_int m and nf = float_of_int n in
  let logn = Logf.log2i n in
  let raw =
    if c <= 4.0 *. logn then
      (mf *. Float.min c (logn /. (10.0 *. Logf.log2 (c +. 1.0))))
      -. (5.0 *. nf)
    else (mf *. logn /. (6.0 *. (Logf.log2 logn +. 2.0))) -. (nf /. 2.0)
  in
  (* Any heap must hold the live space: the bound is trivially at least
     M. This clamping is also how Figure 1 renders the [4] curve. *)
  Float.max raw mf

let waste_factor ~m ~n ~c = lower_bound ~m ~n ~c /. float_of_int m
