(** Parameter presets for the paper's figures and for laptop-scale
    simulation. Words are identified with the paper's byte units — the
    bounds are unit-free ratios. *)

type t = { m : int  (** live-space bound M *); n : int; c : float }

val kb : int
val mb : int
val gb : int
val pp : Format.formatter -> t -> unit

val fig1 : c:float -> t
(** M = 256 MB, n = 1 MB. *)

val fig1_cs : float list
(** c = 10, 15, …, 100. *)

val fig2 : n:int -> t
(** c = 100, M = 256·n. *)

val fig2_ns : int list
(** n = 1 KB, 2 KB, …, 1 GB. *)

val fig3 : c:float -> t
val fig3_cs : float list

val sim : ?m:int -> ?n:int -> c:float -> unit -> t
(** Laptop-scale defaults M = 2{^14}, n = 2{^6}. *)

val sim_cs : float list
