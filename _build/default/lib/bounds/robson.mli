(** Robson's matching fragmentation bounds for non-moving memory
    managers (JACM 1971, JACM 1974), quoted in Section 2.2 of the
    paper.

    All results are in heap words; [m] is the live-space bound and [n]
    the largest object size, both in words with [n <= m]. *)

val lower_bound_pow2 : m:int -> n:int -> float
(** [M·(½·log2 n + 1) − n + 1]: every non-moving manager needs this
    much heap against Robson's bad program in [P2(M, n)]. *)

val upper_bound_pow2 : m:int -> n:int -> float
(** Robson's allocator [A_o] serves every program in [P2(M, n)] within
    the same amount — the bounds match. *)

val upper_bound_general : m:int -> n:int -> float
(** Upper bound for arbitrary sizes in [P(M, n)], by rounding requests
    to powers of two (doubles the bound). *)

val waste_factor_pow2 : m:int -> n:int -> float
(** {!lower_bound_pow2} divided by [m]. *)
