(** Base-2 logarithms shared by the bound formulas. *)

val log2 : float -> float
val log2i : int -> float

val log2_exact : int -> int
(** Exact integer log2; raises [Invalid_argument] unless the argument
    is a positive power of two. *)
