(** The Bendersky–Petrank POPL 2011 bounds, quoted in Section 2.2 of
    the paper as the prior state of the art.

    The lower-bound formula is a reconstruction; see DESIGN.md,
    "Substitutions". At the paper's operating points it is vacuous
    (below the trivial bound [M]) — which is the paper's point. *)

val upper_bound : m:int -> c:float -> float
(** [(c + 1) · M]. *)

val lower_bound : m:int -> n:int -> c:float -> float
(** Clamped below by the trivial bound [M]. *)

val waste_factor : m:int -> n:int -> c:float -> float
(** {!lower_bound} divided by [m]. *)
