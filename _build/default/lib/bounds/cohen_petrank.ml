(* Theorem 1 of the paper — the main result. For every c-partial
   memory manager and every M > n > 1 there is a program
   PF in P2(M, n) forcing heap size at least M * h, where for any
   integer l with 2^l <= (3/4) c:

              (l+2)/2 - (2^l/c)*S1(l) + (3/4 - 2^l/c)*K/(l+1) - 2n/M
     h(l) =  --------------------------------------------------------
                     1 + 2^(-l) * (3/4 - 2^l/c) * K/(l+1)

     S1(l)  = l + 1 - (1/2) * sum_{i=1..l} i/(2^i - 1)
              (stage-1 allocation, Claim 4.11, divided by M)
     K      = log2(n) - 2l - 1        (number of stage-2 steps)

   and the bound is optimised over l. The derivation follows the proof
   text: HS >= u(t_finish)
            = M*(l+2)/2 - (2^l/c)*s1 + (3/4 - 2^l/c)*s2 - n/4,
   with s1 at its Claim 4.11 maximum and s2 at its Lemma 4.6 minimum
   s2 = (M*(1 - 2^(-l)*h) - 2n) * K/(l+1); solving the fixed point for
   h yields the formula (the paper folds the small n/M terms into a
   single -2n/M; we keep that form).

   Validation: at the paper's parameters (M = 256MB, n = 1MB) this
   reproduces the reported anchor points h ~ 2.0 at c = 10 (l* = 2),
   ~ 3.15 at c = 50 (l* = 3) and ~ 3.5 at c = 100 (l* = 3). *)

type point = { ell : int; h : float }

let s1_factor ~ell =
  if ell < 0 then invalid_arg "Cohen_petrank.s1_factor: negative l";
  let sum = ref 0.0 in
  for i = 1 to ell do
    sum := !sum +. (float_of_int i /. float_of_int ((1 lsl i) - 1))
  done;
  float_of_int ell +. 1.0 -. (0.5 *. !sum)

let check_params ~m ~n =
  if n <= 1 then invalid_arg "Cohen_petrank: need n > 1";
  if m <= n then invalid_arg "Cohen_petrank: need M > n"

(* Largest l allowed by Theorem 1's side condition 2^l <= (3/4) c. *)
let ell_limit ~c =
  if c <= 4.0 /. 3.0 then 0
  else int_of_float (floor (Logf.log2 (0.75 *. c)))

(* The number of stage-2 steps available: steps run from 2l to
   log2(n) - 2, so we need 2l + 2 <= log2 n for the stage to exist. *)
let stage2_steps ~n ~ell = int_of_float (Logf.log2i n) - (2 * ell) - 1

let h ~m ~n ~c ~ell =
  check_params ~m ~n;
  if c <= 1.0 then invalid_arg "Cohen_petrank.h: c <= 1";
  if ell < 1 || ell > ell_limit ~c then None
  else begin
    let k = stage2_steps ~n ~ell in
    if k < 1 then None
    else begin
      let mf = float_of_int m and nf = float_of_int n in
      let ellf = float_of_int ell in
      let pow_ell = float_of_int (1 lsl ell) in
      let drain = pow_ell /. c in
      (* 2^l/c: potential lost per compacted word, per budget unit *)
      let gain = 0.75 -. drain in
      let per_step = float_of_int k /. (ellf +. 1.0) in
      let numerator =
        ((ellf +. 2.0) /. 2.0)
        -. (drain *. s1_factor ~ell)
        +. (gain *. per_step)
        -. (2.0 *. nf /. mf)
      in
      let denominator = 1.0 +. (gain *. per_step /. pow_ell) in
      Some (numerator /. denominator)
    end
  end

let best ~m ~n ~c =
  check_params ~m ~n;
  let limit = ell_limit ~c in
  let rec loop ell acc =
    if ell > limit then acc
    else begin
      let acc =
        match h ~m ~n ~c ~ell with
        | Some v -> (
            match acc with
            | Some { h = best_h; _ } when best_h >= v -> acc
            | Some _ | None -> Some { ell; h = v })
        | None -> acc
      in
      loop (ell + 1) acc
    end
  in
  loop 1 None

(* The paper's lower bound in heap words, clamped below by the trivial
   bound M (every heap must hold the live space). *)
let lower_bound ~m ~n ~c =
  let hf = match best ~m ~n ~c with Some { h; _ } -> h | None -> 1.0 in
  Float.max hf 1.0 *. float_of_int m

let waste_factor ~m ~n ~c = lower_bound ~m ~n ~c /. float_of_int m

(* The per-step allocation fraction x of Algorithm 1:
   x = (1 - 2^(-l) * h) / (l + 1). The program PF allocates x*M words
   at each stage-2 step. *)
let stage2_allocation_fraction ~m ~n ~c ~ell =
  match h ~m ~n ~c ~ell with
  | None -> None
  | Some hv ->
      let x =
        (1.0 -. (hv /. float_of_int (1 lsl ell))) /. float_of_int (ell + 1)
      in
      Some (Float.max x 0.0)
