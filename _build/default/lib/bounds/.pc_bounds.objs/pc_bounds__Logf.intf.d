lib/bounds/logf.mli:
