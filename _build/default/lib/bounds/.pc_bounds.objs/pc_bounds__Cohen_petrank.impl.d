lib/bounds/cohen_petrank.ml: Float Logf
