lib/bounds/robson.mli:
