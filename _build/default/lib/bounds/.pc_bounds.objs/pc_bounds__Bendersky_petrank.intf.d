lib/bounds/bendersky_petrank.mli:
