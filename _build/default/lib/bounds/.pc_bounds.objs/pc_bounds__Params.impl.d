lib/bounds/params.ml: Fmt List Logf
