lib/bounds/theorem2.mli:
