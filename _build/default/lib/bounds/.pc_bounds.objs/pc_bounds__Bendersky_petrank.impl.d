lib/bounds/bendersky_petrank.ml: Float Logf
