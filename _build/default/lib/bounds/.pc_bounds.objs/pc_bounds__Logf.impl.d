lib/bounds/logf.ml:
