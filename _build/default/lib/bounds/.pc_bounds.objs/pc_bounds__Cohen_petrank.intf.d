lib/bounds/cohen_petrank.mli:
