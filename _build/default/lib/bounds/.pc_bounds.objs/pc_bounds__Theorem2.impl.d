lib/bounds/theorem2.ml: Array Bendersky_petrank Float Logf Robson
