lib/bounds/robson.ml: Logf
