(* Parameter presets for the paper's figures and for laptop-scale
   simulation. The paper measures M and n in bytes; we identify words
   with the paper's units (the bounds are unit-free ratios). *)

type t = { m : int; n : int; c : float }

let kb = 1 lsl 10
let mb = 1 lsl 20
let gb = 1 lsl 30

let pp ppf { m; n; c } =
  Fmt.pf ppf "M=%d n=%d c=%g (M=2^%.0f, n=2^%.0f)" m n c (Logf.log2i m)
    (Logf.log2i n)

(* Figure 1: M = 256MB, n = 1MB, c swept over [10, 100]. *)
let fig1 ~c = { m = 256 * mb; n = mb; c }
let fig1_cs = List.init 19 (fun i -> float_of_int (10 + (5 * i)))

(* Figure 2: c = 100, M = 256n, n swept over [1KB, 1GB]. *)
let fig2 ~n = { m = 256 * n; n; c = 100.0 }
let fig2_ns = List.init 21 (fun i -> kb lsl i)
(* 2^10 .. 2^30 *)

(* Figure 3: same axes as Figure 1. *)
let fig3 ~c = fig1 ~c
let fig3_cs = fig1_cs

(* Simulation scale: small enough that PF's stage 1 (M unit objects)
   runs in milliseconds, large enough that the bound is non-trivial. *)
let sim ?(m = 1 lsl 14) ?(n = 1 lsl 6) ~c () = { m; n; c }
let sim_cs = [ 8.0; 16.0; 32.0; 64.0 ]
