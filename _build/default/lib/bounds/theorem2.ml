(* Theorem 2 of the paper — the improved upper bound, which the
   authors describe as the minor result. For c > (1/2) log n there is a
   c-partial manager serving every program in P(M, n) within

     HS <= 2M * sum_{i=0..log n} max(a_i, 1/(4 - 2/c)) + 2n*log n

   where a_0 = 1 and

     a_i = (1 - 1/c) * max_{j=0..i-1} max(1/c, 2^(j-i) * a_j).

   The a_i recursion is stated unambiguously in the conference text;
   the surrounding bound formula is typographically corrupted in our
   source and the proof lives in the unavailable full version, so the
   assembly above is a documented reconstruction (DESIGN.md,
   "Substitutions"). The shape — an improvement over the prior best
   min((c+1)M, Robson's doubled bound) for mid-range c — is what the
   Figure 3 bench checks. *)

let coefficients ~c ~log_n =
  if c <= 1.0 then invalid_arg "Theorem2.coefficients: c <= 1";
  if log_n < 0 then invalid_arg "Theorem2.coefficients: negative log n";
  let a = Array.make (log_n + 1) 1.0 in
  for i = 1 to log_n do
    let best = ref (1.0 /. c) in
    for j = 0 to i - 1 do
      let scaled = a.(j) *. Float.pow 2.0 (float_of_int (j - i)) in
      if scaled > !best then best := scaled
    done;
    a.(i) <- (1.0 -. (1.0 /. c)) *. !best
  done;
  a

let applicable ~n ~c = c > 0.5 *. Logf.log2i n

let upper_bound ~m ~n ~c =
  if n <= 1 || m < n then invalid_arg "Theorem2.upper_bound: params";
  if not (applicable ~n ~c) then
    invalid_arg "Theorem2.upper_bound: requires c > (1/2) log n";
  let log_n = int_of_float (Float.round (Logf.log2i n)) in
  let a = coefficients ~c ~log_n in
  let floor_term = 1.0 /. (4.0 -. (2.0 /. c)) in
  let sum =
    Array.fold_left (fun acc ai -> acc +. Float.max ai floor_term) 0.0 a
  in
  (2.0 *. float_of_int m *. sum)
  +. (2.0 *. float_of_int n *. float_of_int log_n)

(* The prior best upper bound the paper compares against in Figure 3:
   the cheaper of Bendersky-Petrank's (c+1)M and Robson's (doubled,
   since P(M, n) allows arbitrary sizes). *)
let prior_best ~m ~n ~c =
  Float.min
    (Bendersky_petrank.upper_bound ~m ~c)
    (Robson.upper_bound_general ~m ~n)

let improvement ~m ~n ~c =
  let prior = prior_best ~m ~n ~c in
  (prior -. upper_bound ~m ~n ~c) /. prior

let waste_factor ~m ~n ~c = upper_bound ~m ~n ~c /. float_of_int m
