(* Base-2 logarithms on word counts, shared by the bound formulas.
   The paper's parameters are powers of two; [log2i] accepts any
   positive integer and returns the real log2. *)

let log2 x = log x /. log 2.0
let log2i x = log2 (float_of_int x)

(* Exact integer log2 for power-of-two parameters; raises otherwise so
   that formulas depending on exact step counts are not silently fed
   non-power-of-two values. *)
let log2_exact x =
  if x <= 0 || x land (x - 1) <> 0 then
    invalid_arg "Logf.log2_exact: not a positive power of two";
  let rec loop acc x = if x = 1 then acc else loop (acc + 1) (x lsr 1) in
  loop 0 x
