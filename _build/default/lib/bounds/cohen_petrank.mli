(** Theorem 1 of the paper — the lower bound on the heap size any
    c-partial memory manager needs against the program [PF].

    All parameters in words; [m] is the live-space bound [M], [n] the
    largest object size (a power of two in the intended use), [c > 1]
    the compaction bound. The parameter [l] (the paper's [ℓ]; chunk
    density is kept at [2{^-ℓ}]) must satisfy [2{^ℓ} <= 3c/4]. *)

type point = { ell : int; h : float }

val s1_factor : ell:int -> float
(** [ℓ + 1 − ½·Σ_{i=1..ℓ} i/(2{^i} − 1)] — stage-1 allocation divided
    by [M] (Claim 4.11). *)

val ell_limit : c:float -> int
(** Largest [ℓ] allowed by the side condition [2{^ℓ} ≤ 3c/4]. *)

val stage2_steps : n:int -> ell:int -> int
(** [log2 n − 2ℓ − 1], the number of stage-2 steps. *)

val h : m:int -> n:int -> c:float -> ell:int -> float option
(** The waste factor [h(ℓ)]; [None] when [ℓ] violates the side
    conditions ([ℓ ≥ 1], [2{^ℓ} ≤ 3c/4], at least one stage-2 step). *)

val best : m:int -> n:int -> c:float -> point option
(** The [ℓ] maximising [h], with its value. *)

val lower_bound : m:int -> n:int -> c:float -> float
(** [M · max(h_best, 1)] in heap words — clamped below by the trivial
    bound [M]. *)

val waste_factor : m:int -> n:int -> c:float -> float
(** {!lower_bound} divided by [m]; the y-axis of Figures 1 and 2. *)

val stage2_allocation_fraction :
  m:int -> n:int -> c:float -> ell:int -> float option
(** Algorithm 1's [x = (1 − 2{^-ℓ}·h)/(ℓ + 1)]: the fraction of [M]
    the program [PF] allocates at each stage-2 step. *)
