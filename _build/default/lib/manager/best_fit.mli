(** Best fit: a smallest gap that fits, ties to the lowest address
    (non-moving). *)

val alloc : Ctx.t -> size:int -> int
val manager : Manager.t
