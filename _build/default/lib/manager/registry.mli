(** Named manager constructors for the CLI, benches and examples.
    Constructors rather than values: several managers are stateful and
    must be fresh per execution. *)

type entry = {
  key : string;
  summary : string;
  moving : bool;  (** whether the manager uses the compaction budget *)
  construct : unit -> Manager.t;
}

val entries : entry list
val keys : string list
val find : string -> entry option

val construct_exn : string -> Manager.t
(** Raises [Invalid_argument] on an unknown key. *)
