open Pc_heap

(* A semispace copying collector, modelled as a c-partial manager.
   The paper notes its bound applies "even when applying sophisticated
   methods like copying collection" — this manager makes that concrete.

   Two spaces of S words at [0, S) and [S, 2S). Allocation bumps in
   the from-space; when it would overflow, every live object is copied
   (in address order) to the to-space and the spaces swap. Copying the
   whole live set (<= M words) must fit the compaction budget, so the
   safe sizing is S = (c+1)M: a worst-case footprint of 2(c+1)M —
   twice the Bendersky-Petrank bump-and-compact arena. That factor of
   two is the classic price of copying collection, here visible
   against the (c+1)M baseline. With an unlimited budget S defaults
   to 2M.

   If a flip is ever unaffordable, allocation falls back to the global
   frontier (beyond both spaces) rather than violating the budget; a
   later affordable flip reclaims those objects too. *)

type state = { space : int; mutable base : int; mutable bump : int }

let make ?space_words () =
  let state = ref None in
  let get_state ctx =
    match !state with
    | Some st -> st
    | None ->
        let m = Ctx.live_bound ctx in
        let budget = Ctx.budget ctx in
        let space =
          match space_words with
          | Some s ->
              if s < m then invalid_arg "Semispace.make: space below M";
              s
          | None ->
              if Budget.is_unlimited budget then 2 * m
              else int_of_float ((Budget.c budget +. 1.0) *. float m)
        in
        let st = { space; base = 0; bump = 0 } in
        state := Some st;
        st
  in
  let alloc ctx ~size =
    let heap = Ctx.heap ctx in
    let budget = Ctx.budget ctx in
    let st = get_state ctx in
    if st.bump + size <= st.base + st.space then begin
      let a = st.bump in
      st.bump <- st.bump + size;
      a
    end
    else if not (Budget.can_move budget (Heap.live_words heap)) then
      (* cannot afford the flip yet: overflow beyond both spaces *)
      max (Free_index.frontier (Ctx.free_index ctx)) (2 * st.space)
    else begin
      let to_base = if st.base = 0 then st.space else 0 in
      let cursor = ref to_base in
      Heap.iter_live heap (fun o ->
          Heap.move heap o.oid ~dst:!cursor;
          cursor := !cursor + o.size);
      st.base <- to_base;
      if !cursor + size > to_base + st.space then
        Fmt.failwith "semispace: live set exceeds a space (%d + %d > %d)"
          !cursor size (to_base + st.space);
      st.bump <- !cursor + size;
      !cursor
    end
  in
  Manager.make ~name:"semispace"
    ~description:
      "c-partial; two-space copying collector (flip when the from-space \
       fills, if the budget affords it)"
    alloc
