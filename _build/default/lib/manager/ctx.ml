open Pc_heap

(* The execution context a memory manager operates in: the heap, the
   c-partial compaction budget, and the program's declared live-space
   bound M (part of the model — the (c+1)M manager of [4] needs it).

   Budget accounting is wired automatically: every Alloc event
   recharges the budget, every Move event drains it (raising
   Budget.Exceeded when a manager over-compacts). Managers therefore
   never touch the budget except to *query* the remaining quota. *)

type t = { heap : Heap.t; budget : Budget.t; live_bound : int }

let create ?budget ~live_bound () =
  if live_bound <= 0 then invalid_arg "Ctx.create: non-positive live bound";
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let heap = Heap.create () in
  Heap.on_event heap (function
    | Heap.Alloc o -> Budget.on_alloc budget o.size
    | Heap.Move m -> Budget.charge_move budget m.size
    | Heap.Free _ -> ());
  { heap; budget; live_bound }

let heap t = t.heap
let budget t = t.budget
let live_bound t = t.live_bound
let free_index t = Heap.free_index t.heap
