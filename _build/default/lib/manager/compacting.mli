(** The realistic c-partial compacting manager: first fit plus
    on-demand eviction of the cheapest aligned window when the heap
    would otherwise grow.

    [move_cap_factor] (default 2.0) bounds the budget one eviction may
    burn, as a multiple of the window size; [max_attempts] (default 3)
    bounds how many candidate windows are tried per allocation. *)

val make :
  ?move_cap_factor:float ->
  ?max_attempts:int ->
  ?min_window:int ->
  unit ->
  Manager.t
