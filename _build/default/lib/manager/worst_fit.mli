(** Worst fit: carve from the largest gap (non-moving). *)

val alloc : Ctx.t -> size:int -> int
val manager : Manager.t
