(** A Theorem-2-inspired c-partial manager: Robson-style aligned
    placement augmented with eviction of sparse aligned windows (the
    exact Theorem 2 algorithm is only in the paper's full version; see
    DESIGN.md, "Substitutions").

    [theta] (default 4.0) sets the density threshold [theta·2{^k}/c]
    below which a window is considered cheap enough to clear. *)

val make :
  ?theta:float -> ?max_attempts:int -> ?min_window:int -> unit -> Manager.t
