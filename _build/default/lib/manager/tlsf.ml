open Pc_heap

(* TLSF-style "good fit" (Masmano et al., the standard real-time
   allocator — directly relevant to the paper's real-time motivation).

   TLSF indexes free blocks in two levels: first level = floor(log2
   size), second level = a linear split of each power-of-two range
   into 2^sl subclasses. A request is rounded up to its class
   boundary and served from the first non-empty class at or above it,
   giving O(1) search at the cost of bounded internal fragmentation.

   Our heap already maintains a length-indexed gap structure, so the
   policy reduces to: round the request up to the class boundary,
   then take a smallest gap at or above that rounded size. This is
   semantically TLSF's good fit (it skips gaps that fit exactly but
   sit in the same class below the boundary). *)

let class_round ~sl_log size =
  if size <= 1 lsl sl_log then size
  else begin
    let fl = Word.log2_floor size in
    let granularity = 1 lsl (fl - sl_log) in
    Word.align_up size ~align:granularity
  end

let make ?(sl_log = 3) () =
  if sl_log < 0 then invalid_arg "Tlsf.make: negative second-level log";
  let alloc ctx ~size =
    let free = Ctx.free_index ctx in
    let rounded = class_round ~sl_log size in
    match Free_index.best_fit_gap free ~size:rounded with
    | Some a -> a
    | None -> Free_index.frontier free
  in
  Manager.make ~name:"tlsf"
    ~description:
      "non-moving; TLSF-style good fit (two-level size classes, O(1) \
       search model)"
    alloc
