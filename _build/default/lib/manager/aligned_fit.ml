open Pc_heap

(* Aligned first fit, Robson's upper-bound strategy A_o: an object of
   size s is placed at the lowest free address divisible by the
   smallest power of two >= s. For programs in P2(M, n) this keeps the
   heap within M*(1/2*log n + 1) - n + 1 words (Robson 1971), the bound
   Section 2.2 of the paper quotes. *)

let alloc ctx ~size =
  let align = Word.round_up_pow2 size in
  match Free_index.first_aligned_fit (Ctx.free_index ctx) ~size ~align with
  | Free_index.Gap a | Free_index.Tail a -> a

let manager =
  Manager.make ~name:"aligned-fit"
    ~description:"non-moving; Robson's A_o: lowest size-aligned address"
    alloc
