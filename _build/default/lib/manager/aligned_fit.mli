(** Aligned first fit — Robson's upper-bound allocator [A_o]: place a
    size-[s] object at the lowest free address divisible by the
    smallest power of two [>= s] (non-moving). *)

val alloc : Ctx.t -> size:int -> int
val manager : Manager.t
