(** TLSF-style good-fit placement (two-level segregated classes), the
    standard real-time allocator policy, as a non-moving manager.

    [sl_log] (default 3) gives [2{^sl_log}] second-level subclasses
    per power-of-two range. *)

val class_round : sl_log:int -> int -> int
(** Round a request up to its class boundary. *)

val make : ?sl_log:int -> unit -> Manager.t
