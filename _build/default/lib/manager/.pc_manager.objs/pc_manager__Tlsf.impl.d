lib/manager/tlsf.ml: Ctx Free_index Manager Pc_heap Word
