lib/manager/bp_simple.mli: Manager
