lib/manager/buddy.ml: Ctx Free_index Hashtbl Heap Int Manager Map Pc_heap Word
