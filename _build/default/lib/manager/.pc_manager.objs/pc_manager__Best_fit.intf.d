lib/manager/best_fit.mli: Ctx Manager
