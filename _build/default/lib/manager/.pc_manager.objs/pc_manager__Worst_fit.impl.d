lib/manager/worst_fit.ml: Ctx Free_index Manager Pc_heap
