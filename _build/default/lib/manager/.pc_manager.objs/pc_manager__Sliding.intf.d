lib/manager/sliding.mli: Manager
