lib/manager/segregated.mli: Manager
