lib/manager/ctx.mli: Pc_heap
