lib/manager/improved_ac.ml: Budget Ctx Evict Free_index Heap Interval Manager Pc_heap Word
