lib/manager/manager.mli: Ctx Format Pc_heap
