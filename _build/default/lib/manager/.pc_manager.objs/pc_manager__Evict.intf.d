lib/manager/evict.mli: Ctx Pc_heap
