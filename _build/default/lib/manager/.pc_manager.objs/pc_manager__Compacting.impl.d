lib/manager/compacting.ml: Ctx Evict Free_index Heap Manager Pc_heap Word
