lib/manager/first_fit.mli: Ctx Manager
