lib/manager/manager.ml: Ctx Fmt Heap Pc_heap
