lib/manager/aligned_fit.ml: Ctx Free_index Manager Pc_heap Word
