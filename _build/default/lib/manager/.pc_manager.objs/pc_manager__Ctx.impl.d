lib/manager/ctx.ml: Budget Heap Pc_heap
