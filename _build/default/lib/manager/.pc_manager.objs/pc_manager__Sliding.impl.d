lib/manager/sliding.ml: Budget Ctx Free_index Heap Manager Pc_heap
