lib/manager/tlsf.mli: Manager
