lib/manager/semispace.ml: Budget Ctx Fmt Free_index Heap Manager Pc_heap
