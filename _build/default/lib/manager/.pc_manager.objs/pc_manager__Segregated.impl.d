lib/manager/segregated.ml: Array Bytes Ctx Free_index Heap Int Manager Map Pc_heap Word
