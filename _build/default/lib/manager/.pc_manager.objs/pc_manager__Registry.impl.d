lib/manager/registry.ml: Aligned_fit Best_fit Bp_simple Buddy Compacting First_fit Fmt Improved_ac List Manager Next_fit Segregated Semispace Sliding String Tlsf Worst_fit
