lib/manager/worst_fit.mli: Ctx Manager
