lib/manager/semispace.mli: Manager
