lib/manager/evict.ml: Budget Ctx Free_index Hashtbl Heap Int Interval List Logs Pc_heap
