lib/manager/registry.mli: Manager
