lib/manager/improved_ac.mli: Manager
