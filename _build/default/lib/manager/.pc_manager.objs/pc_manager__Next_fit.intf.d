lib/manager/next_fit.mli: Manager
