lib/manager/bp_simple.ml: Budget Ctx Float Fmt Free_index Heap Manager Pc_heap
