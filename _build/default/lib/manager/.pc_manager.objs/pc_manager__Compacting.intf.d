lib/manager/compacting.mli: Manager
