lib/manager/buddy.mli: Manager
