lib/manager/next_fit.ml: Ctx Free_index Manager Pc_heap
