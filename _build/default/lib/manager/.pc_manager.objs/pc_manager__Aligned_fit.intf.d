lib/manager/aligned_fit.mli: Ctx Manager
