(** Binary buddy placement (non-moving): requests reserve whole
    power-of-two blocks at block-aligned addresses; internal padding is
    tracked manager-side and dies with the object. Stateful — construct
    one manager per execution. *)

val make : unit -> Manager.t
