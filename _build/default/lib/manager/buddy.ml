open Pc_heap

(* Binary buddy placement: a request of size s reserves the whole block
   of size 2^k = round_up_pow2 s at a 2^k-aligned address, so the block
   can later coalesce with its buddy. The object occupies the first s
   words of the block; the padding stays reserved manager-side (never
   handed to another request) and dies with the object.

   The heap's free index sees the padding as free words, so placement
   must skip candidate windows overlapping a reservation. For programs
   in P2(M, n) — all the paper's adversaries — sizes are powers of two,
   the padding is empty, and this is the textbook buddy system. *)

module Int_map = Map.Make (Int)

type state = {
  mutable padding : int Int_map.t; (* padding start -> padding length *)
  by_base : (int, int) Hashtbl.t; (* block base -> padding start *)
}

let overlaps_padding state ~start ~stop =
  match Int_map.find_last_opt (fun s -> s < stop) state.padding with
  | Some (s, l) -> s + l > start
  | None -> false

let make () =
  let state = { padding = Int_map.empty; by_base = Hashtbl.create 64 } in
  let alloc ctx ~size =
    let bs = Word.round_up_pow2 size in
    let free = Ctx.free_index ctx in
    let rec search from =
      match Free_index.first_aligned_fit_from free ~from ~size:bs ~align:bs with
      | Some a ->
          if overlaps_padding state ~start:a ~stop:(a + bs) then
            search (a + bs)
          else Some a
      | None -> None
    in
    let base =
      match search 0 with
      | Some a -> a
      | None ->
          (* The tail may still run through padding reservations (free
             words above the frontier belong to no gap); skip them. *)
          let rec clear a =
            if overlaps_padding state ~start:a ~stop:(a + bs) then
              clear (a + bs)
            else a
          in
          clear (Word.align_up (Free_index.frontier free) ~align:bs)
    in
    if bs > size then begin
      state.padding <- Int_map.add (base + size) (bs - size) state.padding;
      Hashtbl.replace state.by_base base (base + size)
    end;
    base
  in
  let on_free _ctx (o : Heap.obj) =
    match Hashtbl.find_opt state.by_base o.addr with
    | Some pstart ->
        state.padding <- Int_map.remove pstart state.padding;
        Hashtbl.remove state.by_base o.addr
    | None -> ()
  in
  Manager.make ~name:"buddy"
    ~description:
      "non-moving; binary buddy: whole power-of-two blocks at \
       block-aligned addresses"
    ~on_free alloc
