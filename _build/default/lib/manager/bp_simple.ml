open Pc_heap

(* The Bendersky-Petrank upper-bound manager (POPL 2011), quoted in
   Section 2.2: a c-partial manager that serves any program in P(M, n)
   within heap (c+1)*M.

   Strategy: bump allocation; when the bump pointer would cross the
   (c+1)*M limit, slide-compact every live object to the bottom of the
   heap and resume bumping above them. Correctness of the budget: the
   first compaction happens only after at least c*M words were
   allocated (live space is at most M, so at least (c+1)M - M words of
   the region were allocated... and each subsequent compaction after
   another c*M words), so the <= M words moved fit the s/c quota. *)

let make () =
  let alloc ctx ~size =
    let heap = Ctx.heap ctx in
    let free = Ctx.free_index ctx in
    let limit =
      let c = Budget.c (Ctx.budget ctx) in
      let m = Ctx.live_bound ctx in
      (* With an unlimited budget, compact whenever the arena would
         exceed 2M — the c -> 1 limit of the (c+1)M scheme. *)
      if Budget.is_unlimited (Ctx.budget ctx) then 2 * m
      else int_of_float (Float.of_int m *. (c +. 1.0))
    in
    let bump = Free_index.frontier free in
    if bump + size <= limit then bump
    else if not (Budget.can_move (Ctx.budget ctx) (Heap.live_words heap))
    then bump (* degrade gracefully rather than break the c-partial rule *)
    else begin
      (* Slide every live object down, in address order; destinations
         never pass sources so each move lands in free space. *)
      let cursor = ref 0 in
      Heap.iter_live heap (fun o ->
          if o.addr <> !cursor then Heap.move heap o.oid ~dst:!cursor;
          cursor := !cursor + o.size);
      let bump = Free_index.frontier free in
      if bump + size > limit then
        Fmt.failwith
          "bp-simple: program exceeded its live bound (live=%d + %d > %d)"
          (Heap.live_words heap) size limit;
      bump
    end
  in
  Manager.make ~name:"bp-simple"
    ~description:
      "c-partial; Bendersky-Petrank bump allocation with full sliding \
       compaction inside a (c+1)M arena"
    alloc
