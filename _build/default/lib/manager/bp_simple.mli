(** The Bendersky–Petrank upper-bound manager (POPL 2011): bump
    allocation with full sliding compaction inside a [(c+1)·M] arena.
    Serves any program in [P(M, n)] within heap [(c+1)·M] words. *)

val make : unit -> Manager.t
