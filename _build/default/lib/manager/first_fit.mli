(** First fit: lowest address where the request fits (non-moving). *)

val alloc : Ctx.t -> size:int -> int
val manager : Manager.t
