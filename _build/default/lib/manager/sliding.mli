(** "Compaction seldom": first fit plus a full sliding compaction every
    [period]·M allocated words (budget permitting) — the infrequent-
    full-compaction strategy of production runtimes. Stateful —
    construct one manager per execution. *)

val make : ?period:float -> unit -> Manager.t
