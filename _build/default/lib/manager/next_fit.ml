open Pc_heap

(* Next fit: first fit resuming from a roving pointer left after the
   previous allocation, wrapping around to the bottom of the heap. *)

let make () =
  let rover = ref 0 in
  let alloc ctx ~size =
    let free = Ctx.free_index ctx in
    let addr =
      match Free_index.first_fit_from free ~from:!rover ~size with
      | Some a -> a
      | None -> (
          match Free_index.first_fit_gap free ~size with
          | Some a -> a
          | None -> Free_index.frontier free)
    in
    rover := addr + size;
    addr
  in
  Manager.make ~name:"next-fit"
    ~description:"non-moving; first fit from a roving pointer" alloc
