(** The memory-manager interface.

    A manager is a placement policy: given the context and a request
    size it returns the address for the new object, possibly moving
    live objects first (through [Pc_heap.Heap.move], which charges the
    compaction budget). The runner performs the actual allocation at
    the returned address. *)

type t

val make :
  name:string ->
  ?description:string ->
  ?on_free:(Ctx.t -> Pc_heap.Heap.obj -> unit) ->
  (Ctx.t -> size:int -> int) ->
  t
(** [on_free] is invoked by the runner after the program frees an
    object, so managers with internal indexes can stay in sync. *)

val name : t -> string
val description : t -> string

val alloc : t -> Ctx.t -> size:int -> int
(** Choose the placement address for a [size]-word object. The returned
    extent must be free once the manager's moves are done. *)

val on_free : t -> Ctx.t -> Pc_heap.Heap.obj -> unit
val pp : Format.formatter -> t -> unit
