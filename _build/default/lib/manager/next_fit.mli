(** Next fit: first fit resuming from a roving pointer (non-moving).
    Stateful — construct one manager per execution. *)

val make : unit -> Manager.t
