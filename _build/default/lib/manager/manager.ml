open Pc_heap

(* A memory manager is a placement policy: given the context and a
   request size it chooses the address for the new object, possibly
   moving live objects first (through Heap.move, which charges the
   budget). The runner performs the actual Heap.alloc at the returned
   address, so a manager cannot forget to allocate. *)

type t = {
  name : string;
  description : string;
  alloc : Ctx.t -> size:int -> int;
  on_free : Ctx.t -> Heap.obj -> unit;
}

let no_free_hook _ _ = ()

let make ~name ?(description = "") ?(on_free = no_free_hook) alloc =
  { name; description; alloc; on_free }

let name t = t.name
let description t = t.description
let alloc t ctx ~size = t.alloc ctx ~size
let on_free t ctx obj = t.on_free ctx obj
let pp ppf t = Fmt.string ppf t.name
