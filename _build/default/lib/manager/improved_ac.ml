open Pc_heap

(* A Theorem-2-inspired c-partial manager. The exact algorithm behind
   Theorem 2 appears only in the paper's full version; this manager
   realises the idea sketched in the conference text — Robson-style
   aligned placement (good when compaction is scarce, c > log n)
   augmented with eviction of sparse aligned blocks when the heap would
   otherwise grow.

   Placement of a size-s object (2^k = round_up_pow2 s):
   1. lowest 2^k-aligned fit in an existing gap;
   2. else, if extending would raise the high-water mark, clear the
      cheapest aligned window whose occupancy is below the density
      threshold [theta * window / c] (cheap enough that, amortised,
      reuse beats growth), relocating the displaced objects
      aligned-first-fit;
   3. else, extend at the (aligned) frontier.

   See DESIGN.md, "Substitutions". *)

let make ?(theta = 4.0) ?(max_attempts = 3) ?(min_window = 64) () =
  let relocate ctx ~avoid (o : Heap.obj) =
    let free = Ctx.free_index ctx in
    let align = Word.round_up_pow2 o.size in
    match Free_index.first_aligned_fit_gap free ~size:o.size ~align with
    | Some a
      when a + o.size <= Interval.start avoid || a >= Interval.stop avoid ->
        Some a
    | Some _ ->
        Free_index.first_aligned_fit_from free ~from:(Interval.stop avoid)
          ~size:o.size ~align
    | None -> None
  in
  let alloc ctx ~size =
    let free = Ctx.free_index ctx in
    let align = Word.round_up_pow2 size in
    match Free_index.first_aligned_fit free ~size ~align with
    | Free_index.Gap a -> a
    | Free_index.Tail tail ->
        let heap = Ctx.heap ctx in
        if tail + size <= Heap.high_water heap then tail
        else begin
          let window = max align min_window in
          let c = Budget.c (Ctx.budget ctx) in
          let move_cap =
            if Budget.is_unlimited (Ctx.budget ctx) then window
            else int_of_float (theta *. float window /. c)
          in
          match
            Evict.try_evict ctx ~size:window ~align:window ~move_cap
              ~max_attempts ~relocate
          with
          | Some a -> a
          | None -> Word.align_up (Free_index.frontier free) ~align
        end
  in
  Manager.make ~name:"improved-ac"
    ~description:
      "c-partial; Theorem-2-inspired: aligned placement plus eviction of \
       sparse aligned windows"
    alloc
