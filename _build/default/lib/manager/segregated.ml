open Pc_heap

(* Segregated storage (slab-style): the heap is carved into fixed-size
   blocks on a block-aligned grid; each block is dedicated to one size
   class (powers of two) and sliced into equal slots. Objects occupy
   the head of a slot; slot padding is reserved by block ownership, not
   handed to other classes.

   Because all blocks live on the aligned grid, a fully-free grid cell
   never belongs to a live block (empty blocks are retired eagerly), so
   siting a new block through an aligned fit query is safe. *)

module Int_map = Map.Make (Int)

type block = {
  base : int;
  class_ : int; (* log2 of slot size *)
  slots : Bytes.t; (* slot occupancy bitmap, one byte per slot *)
  mutable used : int;
}

type state = {
  block_words : int;
  mutable blocks : block Int_map.t; (* base -> block *)
  mutable avail : int Int_map.t array; (* class -> bases with free slots *)
}

let max_class = 48

let create_state ~block_words =
  if not (Word.is_pow2 block_words) then
    invalid_arg "Segregated.make: block size must be a power of two";
  {
    block_words;
    blocks = Int_map.empty;
    avail = Array.make max_class Int_map.empty;
  }

let slot_size class_ = Word.pow2 class_

let slots_per_block state class_ =
  max 1 (state.block_words / slot_size class_)

let add_avail state b =
  state.avail.(b.class_) <- Int_map.add b.base b.base state.avail.(b.class_)

let remove_avail state b =
  state.avail.(b.class_) <- Int_map.remove b.base state.avail.(b.class_)

let find_free_slot b =
  let n = Bytes.length b.slots in
  let rec loop i =
    if i >= n then invalid_arg "Segregated: no free slot in avail block"
    else if Bytes.get b.slots i = '\000' then i
    else loop (i + 1)
  in
  loop 0

let class_of_size state size =
  let c = Word.log2_ceil (max 1 size) in
  (* Objects larger than a block get a dedicated span of blocks. *)
  if slot_size c >= state.block_words then None else Some c

let make ?(block_words = 1 lsl 10) () =
  let state = create_state ~block_words in
  let site_block ctx ~span =
    let free = Ctx.free_index ctx in
    let size = span * state.block_words in
    match
      Free_index.first_aligned_fit_gap free ~size ~align:state.block_words
    with
    | Some a -> a
    | None ->
        Word.align_up (Free_index.frontier free) ~align:state.block_words
  in
  let alloc ctx ~size =
    match class_of_size state size with
    | None ->
        (* Large object: dedicated span of whole blocks; no block
           bookkeeping needed because the span is exactly the object's
           footprint rounded to blocks and dies with it. *)
        site_block ctx
          ~span:((size + state.block_words - 1) / state.block_words)
    | Some class_ ->
        let b =
          match Int_map.min_binding_opt state.avail.(class_) with
          | Some (_, base) -> Int_map.find base state.blocks
          | None ->
              let base = site_block ctx ~span:1 in
              let b =
                {
                  base;
                  class_;
                  slots = Bytes.make (slots_per_block state class_) '\000';
                  used = 0;
                }
              in
              state.blocks <- Int_map.add base b state.blocks;
              add_avail state b;
              b
        in
        let slot = find_free_slot b in
        Bytes.set b.slots slot '\001';
        b.used <- b.used + 1;
        if b.used = Bytes.length b.slots then remove_avail state b;
        b.base + (slot * slot_size class_)
  in
  let on_free _ctx (o : Heap.obj) =
    let base = Word.align_down o.addr ~align:state.block_words in
    match Int_map.find_opt base state.blocks with
    | None -> () (* large object span; nothing to do *)
    | Some b ->
        let slot = (o.addr - b.base) / slot_size b.class_ in
        if Bytes.get b.slots slot = '\001' then begin
          Bytes.set b.slots slot '\000';
          if b.used = Bytes.length b.slots then add_avail state b;
          b.used <- b.used - 1;
          if b.used = 0 then begin
            (* Retire the empty block so its cell can be re-sited. *)
            remove_avail state b;
            state.blocks <- Int_map.remove b.base state.blocks
          end
        end
  in
  Manager.make ~name:"segregated"
    ~description:
      "non-moving; slab-style segregated storage with power-of-two size \
       classes"
    ~on_free alloc
