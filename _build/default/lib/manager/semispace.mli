(** A semispace copying collector as a c-partial manager — the paper's
    remark that its bound covers copying collection, made concrete.
    Worst-case footprint [2·(c+1)·M]: twice the bump-and-compact
    arena, the classic price of copying.

    [space_words] overrides the per-space size (must be [>= M]);
    defaults to [(c+1)·M], or [2·M] with an unlimited budget.
    Stateful — construct one manager per execution. *)

val make : ?space_words:int -> unit -> Manager.t
