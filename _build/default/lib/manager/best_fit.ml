open Pc_heap

(* Best fit: a smallest gap that fits (ties broken by lowest address),
   extending at the frontier when no gap is large enough. *)

let alloc ctx ~size =
  let free = Ctx.free_index ctx in
  match Free_index.best_fit_gap free ~size with
  | Some a -> a
  | None -> Free_index.frontier free

let manager =
  Manager.make ~name:"best-fit"
    ~description:"non-moving; smallest gap that fits" alloc
