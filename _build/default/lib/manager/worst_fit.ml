open Pc_heap

(* Worst fit: carve from the largest gap, extending at the frontier
   when even the largest gap is too small. *)

let alloc ctx ~size =
  let free = Ctx.free_index ctx in
  match Free_index.worst_fit_gap free ~size with
  | Some a -> a
  | None -> Free_index.frontier free

let manager =
  Manager.make ~name:"worst-fit" ~description:"non-moving; largest gap" alloc
