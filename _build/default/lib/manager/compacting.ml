open Pc_heap

(* The realistic c-partial compacting manager the lower bound is aimed
   at. Placement is first fit; when no gap fits and placing at the tail
   would raise the high-water mark, the manager tries to clear the
   cheapest aligned window by relocating its objects into other gaps,
   within the compaction budget.

   [move_cap_factor] bounds how much budget one eviction may burn, as a
   multiple of the window size. The paper's PF keeps every chunk at
   density 2^-l > 1/c, so each cleared window costs more than the
   allocation recharges — with any cap the budget eventually runs dry
   and the heap must grow, which is the theorem in action.

   [min_window] makes tiny allocations share eviction work: clearing a
   64-word window for a 1-word request leaves the remainder as a gap
   for the requests that follow. *)

let make ?(move_cap_factor = 2.0) ?(max_attempts = 3) ?(min_window = 64) () =
  let alloc ctx ~size =
    let free = Ctx.free_index ctx in
    match Free_index.first_fit free ~size with
    | Free_index.Gap a -> a
    | Free_index.Tail tail ->
        let heap = Ctx.heap ctx in
        if tail + size <= Heap.high_water heap then tail
        else begin
          let window = max (Word.round_up_pow2 size) min_window in
          let move_cap = int_of_float (move_cap_factor *. float window) in
          match
            Evict.try_evict ctx ~size:window ~align:window ~move_cap
              ~max_attempts
          with
          | Some a -> a
          | None ->
              (* Re-read the frontier: failed attempts may have moved
                 objects and changed the free space. *)
              Free_index.frontier free
        end
  in
  Manager.make ~name:"compacting"
    ~description:
      "c-partial; first fit, clearing the cheapest aligned window under \
       budget when the heap would otherwise grow"
    alloc
