(** Segregated storage (slab-style, non-moving): block-aligned blocks
    dedicated to power-of-two size classes, sliced into equal slots;
    large objects get dedicated block spans.

    Stateful — construct one manager per execution. [block_words] must
    be a power of two (default [2{^10}]). *)

val make : ?block_words:int -> unit -> Manager.t
