open Pc_heap

(* "Compaction seldom": a first-fit allocator that slide-compacts the
   whole heap to address 0 whenever cumulative allocation has grown by
   [period] x M since the last compaction and the budget affords the
   full slide. This is the other strategy the paper's introduction
   attributes to production runtimes (full compaction, infrequently),
   complementing the on-demand partial eviction of [Compacting]. *)

let make ?(period = 2.0) () =
  let last_compaction = ref 0 in
  let alloc ctx ~size =
    let heap = Ctx.heap ctx in
    let budget = Ctx.budget ctx in
    let threshold =
      int_of_float (period *. float (Ctx.live_bound ctx))
    in
    if
      Heap.allocated_total heap - !last_compaction >= threshold
      && Budget.can_move budget (Heap.live_words heap)
    then begin
      let cursor = ref 0 in
      Heap.iter_live heap (fun o ->
          if o.addr <> !cursor then Heap.move heap o.oid ~dst:!cursor;
          cursor := !cursor + o.size);
      last_compaction := Heap.allocated_total heap
    end;
    match Free_index.first_fit (Ctx.free_index ctx) ~size with
    | Free_index.Gap a | Free_index.Tail a -> a
  in
  Manager.make ~name:"sliding"
    ~description:
      "c-partial; first fit with periodic full sliding compaction \
       (compaction-seldom strategy)"
    alloc
