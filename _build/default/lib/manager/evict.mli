(** Shared chunk-eviction machinery for compacting managers.

    Clearing an occupied window costs the total size of the objects
    intersecting it, paid from the compaction budget — the reuse cost
    at the heart of the paper's lower-bound argument. Candidate
    windows are discovered around the largest free gaps, keeping each
    attempt at [O(max_gaps · log live)]. *)

type candidate = { window_start : int; cost : int }

val window_cost : Pc_heap.Heap.t -> start:int -> size:int -> int
(** Total size of the live objects intersecting the window
    (straddlers count fully — they must be moved whole). *)

val window_candidates :
  ?max_gaps:int -> Ctx.t -> size:int -> align:int -> candidate list
(** Candidate aligned windows below the frontier, cheapest first,
    discovered around the [max_gaps] (default 64) largest gaps. *)

val relocate_first_fit :
  Ctx.t -> avoid:Pc_heap.Interval.t -> Pc_heap.Heap.obj -> int option
(** Default relocation target: lowest-addressed existing gap disjoint
    from [avoid]. *)

val try_evict :
  ?max_attempts:int ->
  ?max_gaps:int ->
  ?relocate:
    (Ctx.t -> avoid:Pc_heap.Interval.t -> Pc_heap.Heap.obj -> int option) ->
  Ctx.t ->
  size:int ->
  align:int ->
  move_cap:int ->
  int option
(** Try to clear an aligned [size]-word window by relocating its
    objects, spending at most [min move_cap (budget available)] words.
    Returns the start of the cleared window. Objects already moved when
    a later relocation fails stay moved (the heap remains valid); at
    most [max_attempts] candidate windows are tried. *)
