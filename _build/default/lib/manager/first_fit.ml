open Pc_heap

(* First fit: lowest address where the request fits, extending the heap
   at the frontier only when no gap is large enough. The classic
   non-moving allocator Robson's bounds are usually quoted against. *)

let alloc ctx ~size =
  match Free_index.first_fit (Ctx.free_index ctx) ~size with
  | Free_index.Gap a | Free_index.Tail a -> a

let manager =
  Manager.make ~name:"first-fit"
    ~description:"non-moving; lowest-addressed gap that fits" alloc
