lib/adversary/association.mli: Pc_heap
