lib/adversary/program.ml: Driver Fmt
