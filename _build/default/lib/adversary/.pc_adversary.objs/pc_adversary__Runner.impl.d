lib/adversary/runner.ml: Budget Ctx Driver Fmt Heap Logs Manager Pc_heap Pc_manager Program
