lib/adversary/random_workload.mli: Program
