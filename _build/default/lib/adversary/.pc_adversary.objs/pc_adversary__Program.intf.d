lib/adversary/program.mli: Driver Format
