lib/adversary/robson_steps.mli: View
