lib/adversary/sawtooth.ml: Driver Fmt List Pc_bounds Program Random
