lib/adversary/association.ml: Hashtbl List Oid Option Pc_heap
