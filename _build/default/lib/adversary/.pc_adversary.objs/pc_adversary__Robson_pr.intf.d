lib/adversary/robson_pr.mli: Program
