lib/adversary/script.ml: Driver Fmt Hashtbl List Program String
