lib/adversary/sawtooth.mli: Program
