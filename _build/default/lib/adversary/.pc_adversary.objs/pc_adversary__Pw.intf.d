lib/adversary/pw.mli: Program
