lib/adversary/driver.mli: Pc_heap Pc_manager
