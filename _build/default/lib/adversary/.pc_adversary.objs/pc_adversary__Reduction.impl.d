lib/adversary/reduction.ml: Array Budget Ctx Driver Fmt Heap List Manager Pc_heap Pc_manager Robson_steps View
