lib/adversary/script.mli: Format Program
