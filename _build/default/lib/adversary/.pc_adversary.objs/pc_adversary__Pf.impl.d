lib/adversary/pf.ml: Association Cohen_petrank Driver Float Fmt Int List Logf Option Pc_bounds Program Queue Robson_steps View
