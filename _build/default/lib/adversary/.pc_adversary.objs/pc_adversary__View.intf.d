lib/adversary/view.mli: Driver Pc_heap
