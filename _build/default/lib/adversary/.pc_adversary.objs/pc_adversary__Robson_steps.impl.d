lib/adversary/robson_steps.ml: List View
