lib/adversary/pf.mli: Program
