lib/adversary/runner.mli: Format Pc_manager Program
