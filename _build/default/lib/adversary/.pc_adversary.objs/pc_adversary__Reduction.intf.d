lib/adversary/reduction.mli: Pc_manager
