lib/adversary/robson_pr.ml: Fmt Pc_bounds Program Robson_steps View
