lib/adversary/view.ml: Driver List Oid Pc_heap
