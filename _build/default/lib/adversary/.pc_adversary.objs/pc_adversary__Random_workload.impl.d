lib/adversary/random_workload.ml: Array Driver Fmt Pc_heap Program Random
