lib/adversary/driver.ml: Ctx Heap List Manager Oid Pc_heap Pc_manager
