lib/adversary/pw.ml: Fmt Hashtbl List Pc_bounds Program View
