open Pc_heap
open Pc_manager

(* The reduction of Section 4.2, executably.

   To reuse Robson's analysis for P_F's ghost-hardened first stage,
   the paper constructs an imaginary memory manager A' (Definition
   4.7) that never moves objects: the k-th object P_R allocates is
   placed at an address equal, modulo 2^l, to where the real manager A
   placed the k-th object of the (P_F, A) execution — at an otherwise
   arbitrary fresh location. Claim 4.8 then asserts a one-to-one
   mapping between the two executions: the k-th objects have equal
   sizes and congruent addresses, and each step performs the same
   number of allocations with the same offset choices.

   [record] captures an execution's decision-relevant trace;
   [replay_against_a_prime] re-runs the (ghost-free, since A' never
   compacts) program against A'; [check] verifies Claim 4.8's
   observable consequences. The de-allocation procedure only depends
   on sizes and addresses modulo 2^i <= 2^l, so if the implementation
   of stage 1 is faithful the two traces must agree exactly. *)

type trace = {
  ell : int;
  m : int;
  entries : (int * int) array; (* per allocation: size, addr mod 2^l *)
  offsets : int array; (* f_i chosen at each step 0..l *)
  step_allocs : int array; (* cumulative allocations at each step end *)
}

let record ?c ~manager ~m ~ell () =
  let budget =
    match c with Some c -> Budget.create ~c | None -> Budget.unlimited ()
  in
  let ctx = Ctx.create ~budget ~live_bound:m () in
  let driver = Driver.create ctx manager in
  let entries = ref [] in
  let count = ref 0 in
  let modulus = 1 lsl ell in
  Heap.on_event (Ctx.heap ctx) (function
    | Heap.Alloc o ->
        entries := (o.size, o.addr mod modulus) :: !entries;
        incr count
    | Heap.Free _ | Heap.Move _ -> ());
  let offsets = ref [] and step_allocs = ref [] in
  let observe ~step:_ ~f =
    offsets := f :: !offsets;
    step_allocs := !count :: !step_allocs
  in
  let view = View.create driver in
  let _f : int = Robson_steps.run ~observe view ~m ~steps:ell in
  {
    ell;
    m;
    entries = Array.of_list (List.rev !entries);
    offsets = Array.of_list (List.rev !offsets);
    step_allocs = Array.of_list (List.rev !step_allocs);
  }

exception Mismatch of string

(* The imaginary manager A': places the k-th allocation at
   k * 2^(l+1) + (recorded residue), each object in its own fresh
   page — wasteful, immobile, and congruent to the real execution. *)
let a_prime (t : trace) =
  let k = ref 0 in
  Manager.make ~name:"a-prime"
    ~description:"Definition 4.7: fresh pages at recorded residues"
    (fun _ctx ~size ->
      if !k >= Array.length t.entries then
        raise (Mismatch "A': more allocations than the recorded execution");
      let rsize, residue = t.entries.(!k) in
      if rsize <> size then
        raise
          (Mismatch
             (Fmt.str "A': allocation %d has size %d, recorded %d" !k size
                rsize));
      let addr = (!k * (1 lsl (t.ell + 1))) + residue in
      incr k;
      addr)

let replay_against_a_prime (t : trace) =
  record ~manager:(a_prime t) ~m:t.m ~ell:t.ell ()

(* Claim 4.8's observable consequences. *)
let check (real : trace) (imaginary : trace) =
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  if real.ell <> imaginary.ell || real.m <> imaginary.m then
    fail "parameter mismatch"
  else if Array.length real.entries <> Array.length imaginary.entries then
    fail "different total allocation counts: %d vs %d"
      (Array.length real.entries)
      (Array.length imaginary.entries)
  else if real.offsets <> imaginary.offsets then
    fail "different offset choices"
  else if real.step_allocs <> imaginary.step_allocs then
    fail "different per-step allocation counts"
  else begin
    let bad = ref None in
    Array.iteri
      (fun k (size, residue) ->
        let size', residue' = imaginary.entries.(k) in
        if size <> size' || residue <> residue' then
          if !bad = None then bad := Some k)
      real.entries;
    match !bad with
    | Some k -> fail "allocation %d differs in size or residue" k
    | None -> Ok ()
  end
