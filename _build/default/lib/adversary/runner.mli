(** Executes a (program, manager) interaction and reports [HS(A, P)]
    together with the rest of the paper's accounting. *)

type outcome = {
  program : string;
  manager : string;
  m : int;
  n : int;
  c : float option;
  hs : int;  (** the heap size [HS(A, P)]: high-water mark in words *)
  hs_over_m : float;
  allocated : int;
  moved : int;
  freed : int;
  final_live : int;
  compliant : bool;  (** the c-partial rule was never violated *)
}

val run :
  ?c:float ->
  ?check:bool ->
  program:Program.t ->
  manager:Pc_manager.Manager.t ->
  unit ->
  outcome
(** [c] bounds the manager's compaction (omit for unlimited). [check]
    runs the full heap invariant check after every event — O(n) per
    event, tests only. *)

val pp_outcome : Format.formatter -> outcome -> unit
