(* A program in the paper's sense: a (possibly adaptive) sequence of
   allocation and de-allocation requests, driven against a memory
   manager through a Driver. The record carries the P(M, n) class
   parameters so a runner can size the context and report ratios. *)

type t = {
  name : string;
  live_bound : int; (* the paper's M, in words *)
  max_size : int; (* the paper's n, in words *)
  run : Driver.t -> unit;
}

let make ~name ~live_bound ~max_size run =
  if live_bound <= 0 || max_size <= 0 then
    invalid_arg "Program.make: non-positive parameter";
  if max_size > live_bound then invalid_arg "Program.make: need n <= M";
  { name; live_bound; max_size; run }

let name t = t.name
let live_bound t = t.live_bound
let max_size t = t.max_size
let run t driver = t.run driver
let pp ppf t = Fmt.string ppf t.name
