(** A Bendersky–Petrank-style chunk-pinning adversary (the paper's
    [P_W] of Section 2.2, reconstructed — the original is in POPL'11).

    At step [i] it keeps one minimal pinned object per aligned
    [2{^i}]-word chunk, frees everything else, and refills with
    [2{^i}]-word objects. Effective against non-moving managers;
    cheap for compacting ones to defeat — which is the paper's point
    about [4]'s bound. [steps] defaults to [log2 n]. *)

val program : ?steps:int -> m:int -> n:int -> unit -> Program.t
