(* Robson's bad program P_R (Algorithm 2), hardened with ghost
   handling so it stays meaningful against managers that move objects
   (the hardening is exactly stage 1 of Algorithm 1; against a
   non-moving manager no ghost ever arises and this is the original
   P_R).

   Against any non-moving manager, P_R forces
   HS >= M*(1/2*log n + 1) - n + 1 (Section 2.2).

   Run to full depth (steps = log2 n) this is also our stand-in for
   the Bendersky-Petrank adversary P_W, whose exact construction is in
   [4] and not reproduced in the paper's text; see DESIGN.md. *)

let program ?steps ~m ~n () =
  let log_n = Pc_bounds.Logf.log2_exact n in
  let steps = match steps with Some s -> s | None -> log_n in
  if steps < 0 || steps > log_n then
    invalid_arg "Robson_pr.program: steps out of range";
  Program.make
    ~name:(Fmt.str "robson-pr[%d]" steps)
    ~live_bound:m ~max_size:n
    (fun driver ->
      let view = View.create driver in
      ignore (Robson_steps.run view ~m ~steps : int))
