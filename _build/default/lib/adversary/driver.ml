open Pc_heap
open Pc_manager

(* The program-facing side of the interaction model of Section 2.1.
   A program requests allocations and de-allocations through a driver;
   the driver routes placement decisions to the memory manager,
   enforces the live-space bound M, and reports the manager's
   compaction moves back to the program (the model lets the program
   observe object addresses, which is how the bad programs fragment the
   heap). *)

type move_note = { oid : Oid.t; src : int; dst : int; size : int }

exception Live_bound_exceeded of { requested : int; live : int; bound : int }

type t = {
  ctx : Ctx.t;
  manager : Manager.t;
  mutable pending : move_note list; (* newest first *)
}

let create ctx manager =
  let t = { ctx; manager; pending = [] } in
  Heap.on_event (Ctx.heap ctx) (function
    | Heap.Move { oid; size; src; dst } ->
        t.pending <- { oid; src; dst; size } :: t.pending
    | Heap.Alloc _ | Heap.Free _ -> ());
  t

let heap t = Ctx.heap t.ctx
let ctx t = t.ctx
let live_bound t = Ctx.live_bound t.ctx
let live_words t = Heap.live_words (heap t)

(* Allocate [size] words. Returns the new object, its address, and the
   compaction moves the manager performed while serving the request
   (oldest first). *)
let alloc t ~size =
  if size <= 0 then invalid_arg "Driver.alloc: non-positive size";
  let live = live_words t in
  let bound = live_bound t in
  if live + size > bound then
    raise (Live_bound_exceeded { requested = size; live; bound });
  t.pending <- [];
  let addr = Manager.alloc t.manager t.ctx ~size in
  let moves = List.rev t.pending in
  t.pending <- [];
  let oid = Heap.alloc (heap t) ~addr ~size in
  (oid, addr, moves)

let free t oid =
  let o = Heap.get (heap t) oid in
  Heap.free (heap t) oid;
  Manager.on_free t.manager t.ctx o

let high_water t = Heap.high_water (heap t)
