(** Randomised allocation/de-allocation churn — the average-case
    counterpoint to the adversaries. Deterministic given the seed. *)

type size_dist =
  | Uniform of { lo : int; hi : int }
  | Pow2 of { lo_log : int; hi_log : int }
      (** uniform over exponents [lo_log..hi_log] *)
  | Fixed of int

val max_size_of : size_dist -> int

val program :
  ?seed:int ->
  ?churn:int ->
  m:int ->
  dist:size_dist ->
  target_live:int ->
  unit ->
  Program.t
(** Ramp up to [target_live] live words, then [churn] rounds of
    free-one-random / refill-to-target. *)
