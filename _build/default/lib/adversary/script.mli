(** Scripted workloads: programs written as explicit action lists over
    named slots — a tiny DSL for tests, bug reports and users. *)

type action =
  | Alloc of { slot : string; size : int }
  | Free of { slot : string }

exception Bad_script of string

val validate : action list -> unit
(** Raises {!Bad_script} on double-alloc, free-while-dead or
    non-positive sizes. *)

val max_live : action list -> int
(** Peak simultaneous live words — the script's [M]. *)

val max_size : action list -> int

val program : ?name:string -> action list -> Program.t
(** [live_bound] is the script's own peak. Raises {!Bad_script} on an
    invalid script. *)

val parse : string -> action list
(** One-line syntax, semicolon-separated: ["a x 16; a y 8; f x"]
    ([a slot size] to allocate, [f slot] to free). *)

val pp_action : Format.formatter -> action -> unit
