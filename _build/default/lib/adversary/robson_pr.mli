(** Robson's bad program [P_R] (Algorithm 2), ghost-hardened so it
    stays meaningful against moving managers.

    Against any non-moving manager it forces
    [HS ≥ M·(½·log2 n + 1) − n + 1]. [steps] defaults to [log2 n]
    (full depth); [n] must be a power of two. *)

val program : ?steps:int -> m:int -> n:int -> unit -> Program.t
