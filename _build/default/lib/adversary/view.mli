(** The adversary's book-keeping of "live or ghost" objects
    (Definition 4.1).

    Objects the manager compacts are immediately de-allocated on the
    heap but kept as {i ghosts} at their original allocation address;
    they participate in the program's decisions until the program's own
    de-allocation procedure discards them. *)

type record = {
  oid : Pc_heap.Oid.t;
  orig_addr : int;  (** allocation-time address; ghosts "reside" here *)
  size : int;
  mutable ghost : bool;
}

type t

val create : Driver.t -> t

val set_ghost_hook : t -> (record -> unit) -> unit
(** Called right after a record turns into a ghost. *)

val alloc : t -> size:int -> record
(** Allocate and track; any tracked object the manager moved while
    serving the request is ghosted (freed on the heap, kept in the
    view) before this returns. *)

val free : t -> record -> unit
(** Program-initiated de-allocation: frees live records on the heap;
    ghosts just disappear from the view. *)

val find : t -> Pc_heap.Oid.t -> record option

val present_words : t -> int
(** Total size of live and ghost records. *)

val present_count : t -> int
val iter_present : t -> (record -> unit) -> unit
val fold_present : t -> init:'a -> f:('a -> record -> 'a) -> 'a
val driver : t -> Driver.t
val live_words : t -> int
