(** The paper's bad program [P_F] (Algorithm 1) — the constructive
    heart of Theorem 1.

    Stage 1 runs Robson's program hardened with ghosts; stage 2 keeps
    every chunk of the current partition at density [2{^-ell}] through
    the {!Association} structure while allocating [x·M] words of
    4-chunk objects per step. Against any c-partial manager the heap
    must reach [M·h] (Theorem 1). *)

type observation = {
  step : int;
      (** the step index [i], or [2ℓ−1] for the stage-1 snapshot *)
  potential : int;  (** the paper's [u(t)] at the end of the step *)
  high_water : int;
  live_words : int;
  present_words : int;  (** live + ghost *)
}

type config = {
  m : int;
  n : int;
  c : float;
  ell : int;  (** density exponent; chunks kept at density [2{^-ell}] *)
  h : float;  (** Theorem 1 waste factor for these parameters *)
  x : float;  (** per-step allocation fraction of [M] (Algorithm 1) *)
}

val config : ?ell:int -> m:int -> n:int -> c:float -> unit -> config
(** Resolve parameters; [ell] defaults to the Theorem 1 optimum.
    Raises [Invalid_argument] unless [M > n], [n] is a power of two,
    [ell >= 1] and [2·ell + 2 <= log2 n]. *)

exception
  Audit_failure of {
    step : int;
    delta_u : int;
    floor : int;  (** the Claim 4.16 floor [¾·|o| − 2{^ℓ}·q(o)] *)
  }

val program :
  ?ell:int ->
  ?observe:(observation -> unit) ->
  ?audit:bool ->
  ?stage1_steps:int ->
  ?maintain_density:bool ->
  m:int ->
  n:int ->
  c:float ->
  unit ->
  config * Program.t
(** [observe] fires at the end of every stage-2 step (and once after
    the stage-1 association is built). [audit] (default false) checks
    Claim 4.16 at every stage-2 allocation — the potential must grow
    by at least [¾·|o| − 2{^ℓ}·q(o)] — raising {!Audit_failure}
    otherwise; expensive, meant for tests.

    [stage1_steps] (default [ell]) and [maintain_density] (default
    true) deliberately weaken the adversary for ablation studies:
    fewer Robson steps, or no density floor in stage 2. *)
