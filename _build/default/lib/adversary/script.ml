(* Scripted workloads: programs written as an explicit list of actions
   over named slots. Useful for reproducing a specific interleaving in
   a test or a bug report, and as a tiny DSL for users.

   Slots are arbitrary tags chosen by the script author; an [Alloc]
   binds its slot, a [Free] releases it. *)

type action =
  | Alloc of { slot : string; size : int }
  | Free of { slot : string }

exception Bad_script of string

let validate actions =
  let live = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match a with
      | Alloc { slot; size } ->
          if size <= 0 then
            raise (Bad_script (Fmt.str "slot %s: non-positive size" slot));
          if Hashtbl.mem live slot then
            raise (Bad_script (Fmt.str "slot %s allocated twice" slot));
          Hashtbl.replace live slot ()
      | Free { slot } ->
          if not (Hashtbl.mem live slot) then
            raise (Bad_script (Fmt.str "slot %s freed while not live" slot));
          Hashtbl.remove live slot)
    actions

let max_live actions =
  let live = ref 0 and peak = ref 0 in
  let sizes = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match a with
      | Alloc { slot; size } ->
          Hashtbl.replace sizes slot size;
          live := !live + size;
          peak := max !peak !live
      | Free { slot } ->
          live := !live - Hashtbl.find sizes slot;
          Hashtbl.remove sizes slot)
    actions;
  !peak

let max_size actions =
  List.fold_left
    (fun acc a -> match a with Alloc { size; _ } -> max acc size | Free _ -> acc)
    1 actions

let program ?(name = "script") actions =
  validate actions;
  let live_bound = max 1 (max_live actions) in
  Program.make ~name ~live_bound ~max_size:(max_size actions) (fun driver ->
      let oids = Hashtbl.create 16 in
      List.iter
        (fun a ->
          match a with
          | Alloc { slot; size } ->
              let oid, _, _ = Driver.alloc driver ~size in
              Hashtbl.replace oids slot oid
          | Free { slot } ->
              Driver.free driver (Hashtbl.find oids slot);
              Hashtbl.remove oids slot)
        actions)

(* One-line syntax: "a x 16; a y 8; f x; a z 4" — [a slot size] and
   [f slot], semicolon-separated. *)
let parse text =
  let actions =
    String.split_on_char ';' text
    |> List.filter_map (fun part ->
           match
             String.split_on_char ' ' (String.trim part)
             |> List.filter (fun s -> s <> "")
           with
           | [] -> None
           | [ "a"; slot; size ] -> (
               match int_of_string_opt size with
               | Some size -> Some (Alloc { slot; size })
               | None -> raise (Bad_script ("bad size: " ^ size)))
           | [ "f"; slot ] -> Some (Free { slot })
           | _ -> raise (Bad_script ("bad action: " ^ String.trim part)))
  in
  validate actions;
  actions

let pp_action ppf = function
  | Alloc { slot; size } -> Fmt.pf ppf "a %s %d" slot size
  | Free { slot } -> Fmt.pf ppf "f %s" slot
