(** A program in the paper's sense: a sequence of allocation and
    de-allocation requests driven against a memory manager, together
    with its [P(M, n)] class parameters. *)

type t

val make :
  name:string ->
  live_bound:int ->
  max_size:int ->
  (Driver.t -> unit) ->
  t
(** Raises [Invalid_argument] unless [0 < max_size <= live_bound]. *)

val name : t -> string
val live_bound : t -> int
(** The paper's [M]. *)

val max_size : t -> int
(** The paper's [n]. *)

val run : t -> Driver.t -> unit
val pp : Format.formatter -> t -> unit
