open Pc_heap

(* The adversary's book-keeping of "live or ghost" objects.

   Algorithm 1's preamble: whenever the memory manager compacts an
   object, the program immediately de-allocates it but keeps treating
   it as a ghost residing at its original allocation address. Ghosts
   participate in all of the program's decisions until the program's
   own de-allocation procedure discards them (Definition 4.1).

   Live records always have [orig_addr] equal to their current heap
   address, because a moved object is ghosted before the program takes
   any further action. *)

type record = {
  oid : Oid.t;
  orig_addr : int;
  size : int;
  mutable ghost : bool;
}

type t = {
  driver : Driver.t;
  tbl : record Oid.Table.t;
  mutable present_words : int; (* live + ghost *)
  mutable on_ghost : (record -> unit) option;
}

let create driver =
  { driver; tbl = Oid.Table.create 1024; present_words = 0; on_ghost = None }

let set_ghost_hook t f = t.on_ghost <- Some f

let ghost t (r : record) =
  if not r.ghost then begin
    Driver.free t.driver r.oid;
    r.ghost <- true;
    match t.on_ghost with Some f -> f r | None -> ()
  end

let alloc t ~size =
  let oid, addr, moves = Driver.alloc t.driver ~size in
  let r = { oid; orig_addr = addr; size; ghost = false } in
  Oid.Table.replace t.tbl oid r;
  t.present_words <- t.present_words + size;
  (* Ghost every tracked object the manager moved to serve this
     request — before the program takes any other action. *)
  List.iter
    (fun (mv : Driver.move_note) ->
      match Oid.Table.find_opt t.tbl mv.oid with
      | Some gr -> ghost t gr
      | None -> ())
    moves;
  r

(* Program-initiated de-allocation: real objects are freed on the
   heap; ghosts just disappear from the view. *)
let free t (r : record) =
  if not (Oid.Table.mem t.tbl r.oid) then
    invalid_arg "View.free: record not present";
  if not r.ghost then Driver.free t.driver r.oid;
  Oid.Table.remove t.tbl r.oid;
  t.present_words <- t.present_words - r.size

let find t oid = Oid.Table.find_opt t.tbl oid
let present_words t = t.present_words
let present_count t = Oid.Table.length t.tbl
let iter_present t f = Oid.Table.iter (fun _ r -> f r) t.tbl

let fold_present t ~init ~f =
  Oid.Table.fold (fun _ r acc -> f acc r) t.tbl init

let driver t = t.driver
let live_words t = Driver.live_words t.driver
