(* A Bendersky-Petrank-style adversary (POPL 2011's P_W, summarised in
   Section 2.2 of the paper). The exact program lives in [4]; this is
   the natural chunk-pinning reconstruction, distinct from Robson's
   offset scheme and from P_F's density maintenance:

   step i = 0 .. log n: partition the heap into aligned chunks of
   2^i words; keep exactly one minimal pinned object per touched chunk
   and free everything else, then refill the freed budget with objects
   of size 2^i. A pinned object blocks its whole chunk for the rest of
   the execution (larger future objects need fully-free chunks), but —
   unlike P_F — nothing stops a compacting manager from evicting the
   single cheap pin, which is why [4]'s bound degrades so sharply with
   c and is vacuous at practical scales (Figure 1). Ghost handling as
   in P_F's stage 1: moved objects are freed immediately but keep
   pinning their original chunk for the program's decisions. *)

let program ?steps ~m ~n () =
  let log_n = Pc_bounds.Logf.log2_exact n in
  let steps = match steps with Some s -> s | None -> log_n in
  if steps < 0 || steps > log_n then
    invalid_arg "Pw.program: steps out of range";
  Program.make
    ~name:(Fmt.str "pw[%d]" steps)
    ~live_bound:m ~max_size:n
    (fun driver ->
      let view = View.create driver in
      (* step 0: fill with unit objects *)
      for _ = 1 to m do
        ignore (View.alloc view ~size:1 : View.record)
      done;
      for i = 1 to steps do
        let chunk = 1 lsl i in
        (* Keep the smallest record per chunk (by original address);
           free the rest. Records spanning several chunks pin the
           chunk of their first word. *)
        let keeper : (int, View.record) Hashtbl.t = Hashtbl.create 1024 in
        View.iter_present view (fun r ->
            let idx = r.orig_addr / chunk in
            match Hashtbl.find_opt keeper idx with
            | None -> Hashtbl.replace keeper idx r
            | Some best ->
                if
                  r.size < best.size
                  || (r.size = best.size && r.orig_addr < best.orig_addr)
                then Hashtbl.replace keeper idx r)
          ;
        let doomed =
          View.fold_present view ~init:[] ~f:(fun acc r ->
              let idx = r.orig_addr / chunk in
              match Hashtbl.find_opt keeper idx with
              | Some best when best == r -> acc
              | Some _ | None -> r :: acc)
        in
        List.iter (fun r -> View.free view r) doomed;
        (* refill with 2^i-word objects up to the live bound, counting
           ghosts against the budget as in Algorithm 1 line 7 *)
        let count = (m - View.present_words view) / chunk in
        for _ = 1 to count do
          ignore (View.alloc view ~size:chunk : View.record)
        done
      done)
