(** Sawtooth workloads: fill to [M], free a patterned fraction, refill
    with the next power-of-two size — the classic fragmentation
    stressor between random churn and the adversaries. *)

type pattern =
  | Every_other
  | First_half
  | Random of int  (** seed *)

val program :
  ?rounds:int -> ?pattern:pattern -> m:int -> n:int -> unit -> Program.t
(** [n] must be a power of two; sizes cycle through
    [1, 2, …, n]. Default 8 rounds, [Every_other]. *)
