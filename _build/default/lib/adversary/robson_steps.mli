(** The step engine of Robson's bad program [P_R] (Algorithm 2), in
    the ghost-hardened form used by stage 1 of [P_F]. *)

val occupying : f:int -> step:int -> View.record -> bool
(** Is the object [f]-occupying with respect to [step]
    (Definition 4.2): does it cover a word congruent to [f] modulo
    [2{^step}] at its original address? *)

val wasted_space : View.t -> f:int -> step:int -> int
(** Algorithm 2's objective: [Σ (2{^step} − |o|)] over [f]-occupying
    live and ghost objects. *)

val step : View.t -> m:int -> prev_f:int -> step:int -> int
(** One offset choice + de-allocation + refill step; returns the
    chosen offset [f_step]. *)

val occupying_count : View.t -> f:int -> step:int -> int
(** Number of live-or-ghost [f]-occupying objects — the quantity
    Claim 4.9 bounds below by [M·(i+2)/2{^i+1}] after step [i]. *)

val run :
  ?observe:(step:int -> f:int -> unit) -> View.t -> m:int -> steps:int -> int
(** Run steps [0..steps] (step 0 fills the budget with unit objects);
    returns the final offset [f_steps]. [observe] fires after each
    step with the chosen offset. *)
