(* The step engine of Robson's bad program P_R (Algorithm 2), in the
   ghost-hardened form used by stage 1 of P_F (Algorithm 1).

   Step 0 fills the live budget with unit objects. Step i picks the
   offset f_i in {f_(i-1), f_(i-1) + 2^(i-1)} that maximises the wasted
   space sum_{o f_i-occupying} (2^i - |o|) over live and ghost objects,
   frees every non-occupying object, and refills the budget with
   objects of size 2^i. Objects pinned at the f_i offsets prevent any
   two adjacent offset words from hosting a future object between
   them, which is what blows the heap up. *)

(* Does the object (at its original address) occupy a word congruent
   to [f] modulo 2^i? (Definition 4.2.) *)
let occupying ~f ~step (r : View.record) =
  let modulus = 1 lsl step in
  if r.size >= modulus then true
  else begin
    let delta = (f - r.orig_addr) mod modulus in
    let delta = if delta < 0 then delta + modulus else delta in
    delta < r.size
  end

(* The wasted-space objective of Algorithm 2 line 4 for offset
   candidate [f]. *)
let wasted_space view ~f ~step =
  let modulus = 1 lsl step in
  View.fold_present view ~init:0 ~f:(fun acc r ->
      if occupying ~f ~step r then acc + (modulus - r.size) else acc)

(* One de-allocation + refill step. Returns the chosen offset. *)
let step view ~m ~prev_f ~step:i =
  let candidates = [ prev_f; prev_f + (1 lsl (i - 1)) ] in
  let f =
    match candidates with
    | [ f0; f1 ] ->
        if wasted_space view ~f:f1 ~step:i > wasted_space view ~f:f0 ~step:i
        then f1
        else f0
    | _ -> assert false
  in
  (* Free every live or ghost object that is not f-occupying. *)
  let doomed =
    View.fold_present view ~init:[] ~f:(fun acc r ->
        if occupying ~f ~step:i r then acc else r :: acc)
  in
  List.iter (fun r -> View.free view r) doomed;
  (* Refill: floor((M - present)/2^i) objects of size 2^i. Ghosts count
     against the refill (Algorithm 1 line 7), which keeps the program
     safely below its live bound. *)
  let size = 1 lsl i in
  let count = (m - View.present_words view) / size in
  for _ = 1 to count do
    ignore (View.alloc view ~size : View.record)
  done;
  f

(* Number of live-or-ghost f-occupying objects — the quantity Claim
   4.9 bounds from below by M*(i+2)/2^(i+1) after step i. *)
let occupying_count view ~f ~step =
  View.fold_present view ~init:0 ~f:(fun acc r ->
      if occupying ~f ~step r then acc + 1 else acc)

(* Run steps 0..steps. Returns the final offset f_steps. [observe]
   fires after each step with the chosen offset. *)
let run ?observe view ~m ~steps =
  if steps < 0 then invalid_arg "Robson_steps.run: negative step count";
  for _ = 1 to m - View.present_words view do
    ignore (View.alloc view ~size:1 : View.record)
  done;
  let emit i f =
    match observe with Some g -> g ~step:i ~f | None -> ()
  in
  emit 0 0;
  let f = ref 0 in
  for i = 1 to steps do
    f := step view ~m ~prev_f:!f ~step:i;
    emit i !f
  done;
  !f
