(** The reduction of Section 4.2, executably: the imaginary non-moving
    manager A′ (Definition 4.7) and the lockstep check of Claim 4.8.

    Record the ghost-hardened stage-1 execution against a real
    (possibly compacting) manager, replay Robson's program against A′
    — which places the k-th object at a fresh page congruent modulo
    [2{^ℓ}] to the real placement — and verify that both executions
    make identical decisions. *)

type trace = {
  ell : int;
  m : int;
  entries : (int * int) array;
      (** per allocation, in order: size and address mod [2{^ℓ}] *)
  offsets : int array;  (** the chosen [f_i] per step [0..ℓ] *)
  step_allocs : int array;  (** cumulative allocations at each step end *)
}

exception Mismatch of string

val record :
  ?c:float ->
  manager:Pc_manager.Manager.t ->
  m:int ->
  ell:int ->
  unit ->
  trace
(** Run stage 1 (Robson steps 0..ℓ with ghost handling) against a
    manager and capture its decision-relevant trace. *)

val a_prime : trace -> Pc_manager.Manager.t
(** Definition 4.7's manager. Raises {!Mismatch} if driven differently
    from the recorded execution. *)

val replay_against_a_prime : trace -> trace
(** Re-run the program against {!a_prime} of the given trace. *)

val check : trace -> trace -> (unit, string) result
(** Claim 4.8: equal sizes, residues, offsets and per-step counts. *)
