(** The object-to-chunk association maintained by [P_F]'s second stage
    (Section 4, Figure 4), and the potential function computed from it
    (Definition 4.4).

    At step [i] the heap splits into aligned chunks of [2{^i}] words;
    chunk [k] covers [\[k·2{^i}, (k+1)·2{^i})]. Each chunk holds a set
    of associated entries: whole objects or halves (Claim 4.15).
    Association survives compaction (entries of ghosted objects stay at
    the old chunk) and migrates on half de-allocation. *)

type entry = { oid : Pc_heap.Oid.t; obj_size : int; half : bool }

val entry_size : entry -> int
(** [obj_size], or [obj_size/2] for a half. *)

type t

val create : chunk_log:int -> ell:int -> t
(** Chunks of [2{^chunk_log}] words; target density [2{^-ell}]. *)

val chunk_log : t -> int
val chunk_words : t -> int
val ell : t -> int
val sum : t -> int -> int
(** Total entry size associated with a chunk index. *)

val entries : t -> int -> entry list
val is_middle : t -> int -> bool
val locs_of : t -> Pc_heap.Oid.t -> int list
(** The 0, 1 or 2 chunk indices holding entries of an object. *)

val assoc_whole : t -> Pc_heap.Oid.t -> obj_size:int -> chunk:int -> unit

val assoc_halves :
  t -> Pc_heap.Oid.t -> obj_size:int -> chunk1:int -> chunk2:int -> unit
(** Two half entries ([chunk1 = chunk2] degrades to a whole). *)

val set_middle : t -> int -> unit
(** Put a chunk into the middle set [E] (Definition 4.12). Raises
    [Invalid_argument] if the chunk still has entries — only freshly
    reused (reset) chunks can be middle. *)

val remove_entry : t -> int -> entry -> unit

val reset_chunk : t -> int -> Pc_heap.Oid.t list
(** Drop every entry of a chunk (reuse by a fresh allocation,
    Algorithm 1 line 14) and clear its middle flag. Returns the oids
    that lost their last entry — ghosts that cease to exist. *)

val migrate_half : t -> from_idx:int -> entry -> int option
(** De-allocate a half (Algorithm 1 line 13): the half moves to the
    chunk holding the object's other half, merging into a whole entry
    there; returns that chunk. [None] when no other half exists (the
    entry just disappears). *)

val merge_step : t -> unit
(** Step change (line 12): chunk size doubles, pairs merge, half-pairs
    sharing a chunk become wholes, the middle set empties. *)

val chunk_indices : t -> int list
(** Indices of chunks currently carrying state (entries or middle
    flag), unordered. *)

val chunk_count : t -> int

val potential : t -> n:int -> int
(** The potential function [u] (Definition 4.4): [Σ u_D − n/4] with
    [u_D = 2{^i}] for middle chunks and [min(2{^ell}·sum_D, 2{^i})]
    otherwise. A lower bound on the heap size used so far. *)

val check_invariants : t -> unit
(** Raises [Failure] on drift; for tests. *)
