(* Sawtooth workloads: grow the live set to M with fixed-size objects,
   free a fraction in a chosen pattern, refill with the next size, and
   repeat. The classic non-adversarial fragmentation stressor —
   stronger than random churn, far weaker than P_F — useful as a
   middle data point between Tables S1 and S3. *)

type pattern =
  | Every_other (* free objects at odd positions *)
  | First_half (* free the older half *)
  | Random of int (* free a random half, seeded *)

let program ?(rounds = 8) ?(pattern = Every_other) ~m ~n () =
  let log_n = Pc_bounds.Logf.log2_exact n in
  Program.make
    ~name:
      (Fmt.str "sawtooth[%s]"
         (match pattern with
         | Every_other -> "odd"
         | First_half -> "half"
         | Random seed -> Fmt.str "rnd%d" seed))
    ~live_bound:m ~max_size:n
    (fun driver ->
      let rng =
        match pattern with
        | Random seed -> Some (Random.State.make [| seed |])
        | Every_other | First_half -> None
      in
      let live = ref [] in
      (* newest first *)
      let fill size =
        while Driver.live_words driver + size <= Driver.live_bound driver do
          let oid, _, _ = Driver.alloc driver ~size in
          live := oid :: !live
        done
      in
      fill 1;
      for round = 1 to rounds do
        let n_live = List.length !live in
        let keep i =
          match pattern with
          | Every_other -> i mod 2 = 0
          | First_half -> i < n_live / 2
          | Random _ -> (
              match rng with
              | Some st -> Random.State.bool st
              | None -> assert false)
        in
        let kept, doomed =
          List.partition (fun (i, _) -> keep i)
            (List.mapi (fun i oid -> (i, oid)) !live)
        in
        List.iter (fun (_, oid) -> Driver.free driver oid) doomed;
        live := List.map snd kept;
        (* next size: cycle through the power-of-two ladder *)
        let size = 1 lsl (round mod (log_n + 1)) in
        fill size
      done)
