(** The program-facing side of the interaction model (Section 2.1).

    Programs allocate and free through a driver; the driver routes
    placement to the memory manager, enforces the live-space bound
    [M], and reports the manager's compaction moves back to the
    program. *)

type move_note = { oid : Pc_heap.Oid.t; src : int; dst : int; size : int }

exception Live_bound_exceeded of { requested : int; live : int; bound : int }

type t

val create : Pc_manager.Ctx.t -> Pc_manager.Manager.t -> t

val alloc : t -> size:int -> Pc_heap.Oid.t * int * move_note list
(** Returns the new object, its address, and the compaction moves the
    manager performed while serving this request (oldest first).
    Raises {!Live_bound_exceeded} if the program would exceed [M]. *)

val free : t -> Pc_heap.Oid.t -> unit
val heap : t -> Pc_heap.Heap.t
val ctx : t -> Pc_manager.Ctx.t
val live_bound : t -> int
val live_words : t -> int
val high_water : t -> int
