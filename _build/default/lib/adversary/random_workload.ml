(* Randomised allocation/de-allocation churn, for the average-case
   side of the story: the paper's motivation is that real programs
   fragment far less than the worst case, so partial compaction is
   cheap in practice. Deterministic given the seed. *)

type size_dist =
  | Uniform of { lo : int; hi : int }
  | Pow2 of { lo_log : int; hi_log : int } (* uniform over exponents *)
  | Fixed of int

let draw_size rng = function
  | Uniform { lo; hi } -> lo + Random.State.int rng (hi - lo + 1)
  | Pow2 { lo_log; hi_log } ->
      1 lsl (lo_log + Random.State.int rng (hi_log - lo_log + 1))
  | Fixed s -> s

let max_size_of = function
  | Uniform { hi; _ } -> hi
  | Pow2 { hi_log; _ } -> 1 lsl hi_log
  | Fixed s -> s

(* Ramp up to [target_live] words, then perform [churn] rounds, each
   freeing one random live object and allocating until the target is
   reached again. *)
let program ?(seed = 42) ?(churn = 10_000) ~m ~dist ~target_live () =
  if target_live > m then
    invalid_arg "Random_workload.program: target_live > m";
  let n = max_size_of dist in
  Program.make
    ~name:(Fmt.str "random[seed=%d]" seed)
    ~live_bound:m ~max_size:n
    (fun driver ->
      let rng = Random.State.make [| seed |] in
      (* Growable array of live oids for O(1) random victim choice. *)
      let live = ref [||] in
      let live_count = ref 0 in
      let push oid =
        if !live_count = Array.length !live then begin
          let bigger =
            Array.make (max 64 (2 * Array.length !live)) (Pc_heap.Oid.of_int 0)
          in
          Array.blit !live 0 bigger 0 !live_count;
          live := bigger
        end;
        !live.(!live_count) <- oid;
        incr live_count
      in
      let remove_at i =
        decr live_count;
        !live.(i) <- !live.(!live_count)
      in
      let fill () =
        let continue = ref true in
        while !continue do
          let size = min (draw_size rng dist) n in
          if Driver.live_words driver + size <= target_live then begin
            let oid, _, _ = Driver.alloc driver ~size in
            push oid
          end
          else continue := false
        done
      in
      fill ();
      for _ = 1 to churn do
        if !live_count > 0 then begin
          let i = Random.State.int rng !live_count in
          Driver.free driver !live.(i);
          remove_at i
        end;
        fill ()
      done)
