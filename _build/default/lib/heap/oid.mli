(** Object identifiers.

    Dense non-negative integers allocated by the heap in creation
    order; the order is part of the interface (the adversarial programs
    reason about "the k-th object allocated"). *)

type t = private int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_int : t -> int
val of_int : int -> t
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
