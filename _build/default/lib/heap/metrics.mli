(** Fragmentation metrics derived from a heap snapshot. *)

type snapshot = {
  live_words : int;
  live_objects : int;
  high_water : int;  (** HS so far *)
  frontier : int;
  gap_count : int;
  free_below_frontier : int;
  largest_gap : int;
}

val snapshot : Heap.t -> snapshot

val waste_factor : snapshot -> float
(** [high_water / live_words] — the paper's waste factor relative to
    the current live space; [infinity] when nothing is live. *)

val external_fragmentation : snapshot -> float
(** Fraction of the span below the frontier that is free. *)

val splintering : snapshot -> float
(** [1 - largest_gap / free_below_frontier]: 0 when all free space is
    one gap, approaching 1 when it is splintered. *)

val utilization : snapshot -> float
(** [live_words / high_water]. *)

val gap_histogram : Heap.t -> int array
(** Index [k] counts gaps with length in [\[2{^k}, 2{^k+1})]. *)

val pp : Format.formatter -> snapshot -> unit
