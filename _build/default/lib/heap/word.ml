(* Word arithmetic helpers. All heap addresses and sizes in this library
   are measured in words and represented as non-negative [int]s. *)

let is_pow2 x = x > 0 && x land (x - 1) = 0

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Word.pow2: exponent out of range";
  1 lsl k

let log2_floor x =
  if x <= 0 then invalid_arg "Word.log2_floor: non-positive argument";
  let rec loop acc x = if x <= 1 then acc else loop (acc + 1) (x lsr 1) in
  loop 0 x

let log2_ceil x =
  let f = log2_floor x in
  if is_pow2 x then f else f + 1

let round_up_pow2 x =
  if x <= 0 then invalid_arg "Word.round_up_pow2: non-positive argument";
  pow2 (log2_ceil x)

let align_up addr ~align =
  if align <= 0 then invalid_arg "Word.align_up: non-positive alignment";
  let r = addr mod align in
  if r = 0 then addr else addr + (align - r)

let align_down addr ~align =
  if align <= 0 then invalid_arg "Word.align_down: non-positive alignment";
  addr - (addr mod align)

let is_aligned addr ~align =
  if align <= 0 then invalid_arg "Word.is_aligned: non-positive alignment";
  addr mod align = 0

(* Human-readable rendering of a word count, e.g. "256K", "1M". *)
let pp_count ppf x =
  let giga = 1 lsl 30 and mega = 1 lsl 20 and kilo = 1 lsl 10 in
  if x >= giga && x mod giga = 0 then Fmt.pf ppf "%dG" (x / giga)
  else if x >= mega && x mod mega = 0 then Fmt.pf ppf "%dM" (x / mega)
  else if x >= kilo && x mod kilo = 0 then Fmt.pf ppf "%dK" (x / kilo)
  else Fmt.int ppf x
