(* An AVL tree of disjoint free gaps keyed by start address, augmented
   with the maximum gap length per subtree. The augmentation makes
   address-ordered fit searches (first fit, aligned first fit) run in
   time proportional to the tree height instead of the gap count, which
   matters because the adversarial programs create heaps with hundreds
   of thousands of gaps. *)

type t =
  | Leaf
  | Node of {
      l : t;
      start : int;
      len : int;
      r : t;
      height : int;
      max_len : int; (* max gap length in this subtree *)
      count : int; (* number of gaps in this subtree *)
      total : int; (* total free words in this subtree *)
    }

let empty = Leaf
let height = function Leaf -> 0 | Node n -> n.height
let max_len = function Leaf -> 0 | Node n -> n.max_len
let count = function Leaf -> 0 | Node n -> n.count
let total = function Leaf -> 0 | Node n -> n.total

let node l start len r =
  Node
    {
      l;
      start;
      len;
      r;
      height = 1 + max (height l) (height r);
      max_len = max len (max (max_len l) (max_len r));
      count = 1 + count l + count r;
      total = len + total l + total r;
    }

(* Standard AVL rebalancing; [l] and [r] differ in height by at most 3
   (as produced by a single insertion or removal). *)
let rec balance l start len r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | Leaf -> assert false
    | Node ln ->
        if height ln.l >= height ln.r then
          node ln.l ln.start ln.len (balance ln.r start len r)
        else begin
          match ln.r with
          | Leaf -> assert false
          | Node lrn ->
              node
                (node ln.l ln.start ln.len lrn.l)
                lrn.start lrn.len
                (node lrn.r start len r)
        end
  else if hr > hl + 1 then
    match r with
    | Leaf -> assert false
    | Node rn ->
        if height rn.r >= height rn.l then
          node (balance l start len rn.l) rn.start rn.len rn.r
        else begin
          match rn.l with
          | Leaf -> assert false
          | Node rln ->
              node
                (node l start len rln.l)
                rln.start rln.len
                (node rln.r rn.start rn.len rn.r)
        end
  else node l start len r

let rec add t ~start ~len =
  match t with
  | Leaf -> node Leaf start len Leaf
  | Node n ->
      if start < n.start then balance (add n.l ~start ~len) n.start n.len n.r
      else if start > n.start then
        balance n.l n.start n.len (add n.r ~start ~len)
      else invalid_arg "Gap_tree.add: duplicate gap start"

let rec min_binding = function
  | Leaf -> invalid_arg "Gap_tree.min_binding: empty"
  | Node { l = Leaf; start; len; _ } -> (start, len)
  | Node { l; _ } -> min_binding l

let rec remove_min = function
  | Leaf -> invalid_arg "Gap_tree.remove_min: empty"
  | Node { l = Leaf; r; _ } -> r
  | Node { l; start; len; r; _ } -> balance (remove_min l) start len r

let rec remove t ~start =
  match t with
  | Leaf -> invalid_arg "Gap_tree.remove: gap not found"
  | Node n ->
      if start < n.start then balance (remove n.l ~start) n.start n.len n.r
      else if start > n.start then
        balance n.l n.start n.len (remove n.r ~start)
      else begin
        match n.r with
        | Leaf -> n.l
        | r ->
            let s, ln = min_binding r in
            balance n.l s ln (remove_min r)
      end

let rec find t ~start =
  match t with
  | Leaf -> None
  | Node n ->
      if start < n.start then find n.l ~start
      else if start > n.start then find n.r ~start
      else Some n.len

(* Greatest gap with start <= addr. *)
let rec pred t ~addr =
  match t with
  | Leaf -> None
  | Node n ->
      if addr < n.start then pred n.l ~addr
      else begin
        match pred n.r ~addr with
        | Some _ as res -> res
        | None -> Some (n.start, n.len)
      end

(* Least gap with start >= addr. *)
let rec succ t ~addr =
  match t with
  | Leaf -> None
  | Node n ->
      if addr > n.start then succ n.r ~addr
      else begin
        match succ n.l ~addr with
        | Some _ as res -> res
        | None -> Some (n.start, n.len)
      end

(* Lowest-addressed gap of length >= size: descend left first, pruning
   subtrees whose max_len is too small. *)
let rec first_fit t ~size =
  match t with
  | Leaf -> None
  | Node n ->
      if n.max_len < size then None
      else if max_len n.l >= size then first_fit n.l ~size
      else if n.len >= size then Some (n.start, n.len)
      else first_fit n.r ~size

(* Lowest-addressed gap with start >= from and length >= size. *)
let rec first_fit_from t ~from ~size =
  match t with
  | Leaf -> None
  | Node n ->
      if n.max_len < size then None
      else if n.start < from then first_fit_from n.r ~from ~size
      else begin
        match first_fit_from n.l ~from ~size with
        | Some _ as res -> res
        | None ->
            if n.len >= size then Some (n.start, n.len)
            else first_fit_from n.r ~from ~size
      end

(* Lowest aligned address [a] such that [a mod align = 0] and
   [a, a + size) lies within a single gap. Pruning on max_len keeps the
   visit count low: a gap is only visited if it could hold the object
   ignoring alignment. *)
let rec first_aligned_fit t ~size ~align =
  match t with
  | Leaf -> None
  | Node n ->
      if n.max_len < size then None
      else begin
        match first_aligned_fit n.l ~size ~align with
        | Some _ as res -> res
        | None ->
            if n.len >= size then begin
              let a = Word.align_up n.start ~align in
              if a + size <= n.start + n.len then Some a
              else first_aligned_fit n.r ~size ~align
            end
            else first_aligned_fit n.r ~size ~align
      end

(* Like [first_aligned_fit], restricted to gaps starting at or above
   [from]. *)
let rec first_aligned_fit_from t ~from ~size ~align =
  match t with
  | Leaf -> None
  | Node n ->
      if n.max_len < size then None
      else if n.start < from then first_aligned_fit_from n.r ~from ~size ~align
      else begin
        match first_aligned_fit_from n.l ~from ~size ~align with
        | Some _ as res -> res
        | None ->
            if n.len >= size then begin
              let a = Word.align_up n.start ~align in
              if a + size <= n.start + n.len then Some a
              else first_aligned_fit_from n.r ~from ~size ~align
            end
            else first_aligned_fit_from n.r ~from ~size ~align
      end

let rec iter t f =
  match t with
  | Leaf -> ()
  | Node n ->
      iter n.l f;
      f n.start n.len;
      iter n.r f

let rec fold t ~init ~f =
  match t with
  | Leaf -> init
  | Node n -> fold n.r ~init:(f (fold n.l ~init ~f) n.start n.len) ~f

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc s l -> (s, l) :: acc))

let rec check_balanced = function
  | Leaf -> true
  | Node n ->
      abs (height n.l - height n.r) <= 1
      && n.height = 1 + max (height n.l) (height n.r)
      && n.max_len = max n.len (max (max_len n.l) (max_len n.r))
      && n.count = 1 + count n.l + count n.r
      && n.total = n.len + total n.l + total n.r
      && check_balanced n.l && check_balanced n.r
