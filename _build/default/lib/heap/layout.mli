(** ASCII rendering of heap occupancy, in the style of the paper's
    Figures 4 and 5. *)

type config = {
  words_per_cell : int;  (** words covered by one output character *)
  cells_per_row : int;
  chunk_words : int option;
      (** when set, draw a ['|'] rule at every multiple of this many
          words (chunk boundaries) *)
}

val default_config : config
(** 1 word per cell, 64 cells per row, no chunk rules. *)

val render : ?config:config -> Heap.t -> string
(** ['#'] fully live cell, ['.'] fully free, ['+'] mixed. *)

val describe : Heap.t -> string
(** One line per object/gap in address order; for small heaps. *)
