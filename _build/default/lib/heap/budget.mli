(** The c-partial compaction budget (Section 2.1 of the paper).

    A c-partial memory manager may, at any point where the program has
    allocated [s] words in total, have moved at most [s/c] words in
    total. Allocation recharges the budget; moves drain it. *)

type t

exception Exceeded of { requested : int; available : int }

val create : c:float -> t
(** Raises [Invalid_argument] unless [c > 1]. *)

val unlimited : unit -> t
(** A budget that never runs out — models unbounded compaction. *)

val is_unlimited : t -> bool
val c : t -> float
val allocated : t -> int
val moved : t -> int

val quota : t -> int
(** [⌊allocated / c⌋], the total compaction allowed so far. *)

val available : t -> int
(** [quota - moved]. *)

val can_move : t -> int -> bool

val on_alloc : t -> int -> unit
(** Recharge: record [words] freshly allocated words. *)

val charge_move : t -> int -> unit
(** Drain: record [words] moved. Raises {!Exceeded} when the move does
    not fit the remaining quota. *)

val is_compliant : t -> bool
(** [true] while the c-partial rule has never been violated. *)

val pp : Format.formatter -> t -> unit
