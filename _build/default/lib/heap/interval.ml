(* Half-open intervals [start, stop) of heap addresses. *)

type t = { start : int; stop : int }

let make ~start ~stop =
  if start < 0 || stop < start then
    invalid_arg "Interval.make: need 0 <= start <= stop";
  { start; stop }

let of_extent ~start ~len = make ~start ~stop:(start + len)
let start t = t.start
let stop t = t.stop
let length t = t.stop - t.start
let is_empty t = t.start = t.stop
let contains t addr = t.start <= addr && addr < t.stop
let includes t other = t.start <= other.start && other.stop <= t.stop
let overlaps a b =
  (* empty intervals overlap nothing *)
  a.start < b.stop && b.start < a.stop && a.start < a.stop && b.start < b.stop
let adjacent a b = a.stop = b.start || b.stop = a.start

let join a b =
  if not (overlaps a b || adjacent a b) then
    invalid_arg "Interval.join: intervals neither overlap nor touch";
  { start = min a.start b.start; stop = max a.stop b.stop }

let inter a b =
  let start = max a.start b.start and stop = min a.stop b.stop in
  if start >= stop then None else Some { start; stop }

let compare a b =
  match Int.compare a.start b.start with
  | 0 -> Int.compare a.stop b.stop
  | c -> c

let equal a b = a.start = b.start && a.stop = b.stop
let pp ppf t = Fmt.pf ppf "[%d,%d)" t.start t.stop
