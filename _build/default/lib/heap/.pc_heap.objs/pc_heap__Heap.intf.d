lib/heap/heap.mli: Format Free_index Oid
