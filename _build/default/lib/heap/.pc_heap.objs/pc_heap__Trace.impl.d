lib/heap/trace.ml: Array Buffer Fmt Hashtbl Heap List Oid Printf String Word
