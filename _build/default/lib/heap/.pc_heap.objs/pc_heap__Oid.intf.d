lib/heap/oid.mli: Format Hashtbl Map Set
