lib/heap/word.ml: Fmt
