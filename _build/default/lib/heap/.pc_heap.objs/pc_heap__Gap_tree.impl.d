lib/heap/gap_tree.ml: List Word
