lib/heap/layout.mli: Heap
