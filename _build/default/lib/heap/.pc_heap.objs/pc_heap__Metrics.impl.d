lib/heap/metrics.ml: Array Float Fmt Free_index Heap Word
