lib/heap/trace.mli: Format Heap
