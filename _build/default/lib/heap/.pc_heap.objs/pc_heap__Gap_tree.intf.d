lib/heap/gap_tree.mli:
