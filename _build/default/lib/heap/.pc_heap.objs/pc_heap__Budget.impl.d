lib/heap/budget.ml: Fmt
