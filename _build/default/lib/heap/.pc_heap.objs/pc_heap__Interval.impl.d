lib/heap/interval.ml: Fmt Int
