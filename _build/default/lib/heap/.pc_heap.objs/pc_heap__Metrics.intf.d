lib/heap/metrics.mli: Format Heap
