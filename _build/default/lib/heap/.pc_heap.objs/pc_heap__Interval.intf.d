lib/heap/interval.mli: Format
