lib/heap/layout.ml: Buffer Heap Oid Printf
