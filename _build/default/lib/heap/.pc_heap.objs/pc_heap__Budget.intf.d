lib/heap/budget.mli: Format
