lib/heap/heap.ml: Fmt Free_index Int List Oid Seq Stdlib
