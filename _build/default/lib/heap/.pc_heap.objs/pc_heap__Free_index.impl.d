lib/heap/free_index.ml: Gap_tree Int List Option Seq Set Word
