lib/heap/free_index.mli:
