lib/heap/oid.ml: Fmt Hashtbl Int Map Set
