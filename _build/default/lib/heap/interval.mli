(** Half-open intervals [\[start, stop)] of heap addresses. *)

type t = private { start : int; stop : int }

val make : start:int -> stop:int -> t
(** Raises [Invalid_argument] unless [0 <= start <= stop]. *)

val of_extent : start:int -> len:int -> t
val start : t -> int
val stop : t -> int
val length : t -> int
val is_empty : t -> bool
val contains : t -> int -> bool

val includes : t -> t -> bool
(** [includes t other] is [true] iff [other] lies entirely within [t]. *)

val overlaps : t -> t -> bool
val adjacent : t -> t -> bool

val join : t -> t -> t
(** Union of two overlapping or touching intervals. Raises
    [Invalid_argument] if they are disjoint and not adjacent. *)

val inter : t -> t -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
