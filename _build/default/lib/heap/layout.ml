(* ASCII rendering of heap occupancy, in the style of the paper's
   Figures 4 and 5 (chunk partitions with objects straddling chunk
   boundaries). Each output cell covers [words_per_cell] words; a cell
   is drawn as '#' when fully live, '.' when fully free, '+' when
   mixed. Optional chunk rules of width 2^i insert '|' separators. *)

type config = {
  words_per_cell : int;
  cells_per_row : int;
  chunk_words : int option; (* draw a rule every this many words *)
}

let default_config =
  { words_per_cell = 1; cells_per_row = 64; chunk_words = None }

let cell_char heap ~start ~stop =
  let occupied = Heap.occupied_words_in heap ~start ~stop in
  if occupied = 0 then '.'
  else if occupied = stop - start then '#'
  else '+'

let render ?(config = default_config) heap =
  let { words_per_cell; cells_per_row; chunk_words } = config in
  if words_per_cell <= 0 || cells_per_row <= 0 then
    invalid_arg "Layout.render: non-positive geometry";
  let extent = max (Heap.high_water heap) 1 in
  let cells = (extent + words_per_cell - 1) / words_per_cell in
  let buf = Buffer.create (cells * 2) in
  let row_words = words_per_cell * cells_per_row in
  for cell = 0 to cells - 1 do
    let start = cell * words_per_cell in
    if cell > 0 && start mod row_words = 0 then Buffer.add_char buf '\n';
    begin
      match chunk_words with
      | Some cw when start mod cw = 0 && start mod row_words <> 0 ->
          Buffer.add_char buf '|'
      | Some _ | None -> ()
    end;
    let stop = min extent (start + words_per_cell) in
    Buffer.add_char buf (cell_char heap ~start ~stop)
  done;
  Buffer.contents buf

(* Detailed one-line-per-extent listing: objects and gaps in address
   order, for small heaps. *)
let describe heap =
  let buf = Buffer.create 256 in
  let cursor = ref 0 in
  let flush_gap stop =
    if stop > !cursor then
      Buffer.add_string buf
        (Printf.sprintf "  [%d,%d) free (%d words)\n" !cursor stop
           (stop - !cursor))
  in
  Heap.iter_live heap (fun o ->
      flush_gap o.addr;
      Buffer.add_string buf
        (Printf.sprintf "  [%d,%d) object #%d (%d words)\n" o.addr
           (o.addr + o.size) (Oid.to_int o.oid) o.size);
      cursor := o.addr + o.size);
  flush_gap (Heap.high_water heap);
  Buffer.contents buf
