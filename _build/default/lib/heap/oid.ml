(* Object identifiers: dense non-negative integers, allocated by the
   heap in creation order. The creation order is meaningful to the
   adversarial programs (e.g. PF maps "the k-th object allocated" across
   executions in the reduction of Section 4.2), so it is part of the
   interface. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_int t = t
let of_int i = if i < 0 then invalid_arg "Oid.of_int: negative" else i
let pp ppf t = Fmt.pf ppf "#%d" t

module Map = Map.Make (Int)
module Set = Set.Make (Int)
module Table = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
