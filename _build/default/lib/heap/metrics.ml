(* Fragmentation metrics derived from a heap snapshot. *)

type snapshot = {
  live_words : int;
  live_objects : int;
  high_water : int;
  frontier : int;
  gap_count : int;
  free_below_frontier : int;
  largest_gap : int;
}

let snapshot heap =
  let free = Heap.free_index heap in
  {
    live_words = Heap.live_words heap;
    live_objects = Heap.live_objects heap;
    high_water = Heap.high_water heap;
    frontier = Free_index.frontier free;
    gap_count = Free_index.gap_count free;
    free_below_frontier = Free_index.free_below_frontier free;
    largest_gap = Free_index.largest_gap free;
  }

(* HS divided by live words: the "waste factor" axis of the paper's
   figures, relative to the current live space. *)
let waste_factor s =
  if s.live_words = 0 then Float.infinity
  else float s.high_water /. float s.live_words

(* Fraction of the span below the frontier that is free. *)
let external_fragmentation s =
  if s.frontier = 0 then 0.0
  else float s.free_below_frontier /. float s.frontier

(* 1 - largest_gap / free: how splintered the free space is. *)
let splintering s =
  if s.free_below_frontier = 0 then 0.0
  else 1.0 -. (float s.largest_gap /. float s.free_below_frontier)

let utilization s =
  if s.high_water = 0 then 1.0 else float s.live_words /. float s.high_water

(* Histogram of gap lengths bucketed by floor(log2 len); index k counts
   gaps with length in [2^k, 2^(k+1)). *)
let gap_histogram heap =
  let hist = Array.make 62 0 in
  Free_index.iter_gaps (Heap.free_index heap) (fun _ len ->
      let b = Word.log2_floor len in
      hist.(b) <- hist.(b) + 1);
  hist

let pp ppf s =
  Fmt.pf ppf
    "live=%d objs=%d HS=%d frontier=%d gaps=%d free=%d largest=%d waste=%.3f \
     frag=%.3f"
    s.live_words s.live_objects s.high_water s.frontier s.gap_count
    s.free_below_frontier s.largest_gap (waste_factor s)
    (external_fragmentation s)
