(** Balanced tree of disjoint free gaps keyed by start address,
    augmented with the maximum gap length per subtree so that fit
    searches run in logarithmic time.

    This is the workhorse behind {!Free_index}. Gaps are identified by
    their start address; lengths are positive word counts. *)

type t

val empty : t
val count : t -> int
val total : t -> int
(** Total free words across all gaps. *)

val max_len : t -> int
(** Length of the longest gap, 0 when empty. *)

val add : t -> start:int -> len:int -> t
(** Raises [Invalid_argument] on a duplicate start address. *)

val remove : t -> start:int -> t
(** Raises [Invalid_argument] when no gap starts at [start]. *)

val find : t -> start:int -> int option
(** Length of the gap starting exactly at [start], if any. *)

val pred : t -> addr:int -> (int * int) option
(** Greatest [(start, len)] with [start <= addr]. *)

val succ : t -> addr:int -> (int * int) option
(** Least [(start, len)] with [start >= addr]. *)

val first_fit : t -> size:int -> (int * int) option
(** Lowest-addressed gap of length [>= size]. *)

val first_fit_from : t -> from:int -> size:int -> (int * int) option
(** Lowest-addressed gap with start [>= from] and length [>= size]. *)

val first_aligned_fit : t -> size:int -> align:int -> int option
(** Lowest address [a] divisible by [align] such that [\[a, a + size)]
    fits inside a single gap. *)

val first_aligned_fit_from : t -> from:int -> size:int -> align:int -> int option
(** Like {!first_aligned_fit}, restricted to gaps starting at or above
    [from]. *)

val iter : t -> (int -> int -> unit) -> unit
(** In address order. *)

val fold : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
val to_list : t -> (int * int) list
val check_balanced : t -> bool
(** Structural invariant check; intended for tests. *)
