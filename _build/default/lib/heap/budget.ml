(* The c-partial compaction budget of Section 2.1: once the program has
   allocated s words in total, the manager may have moved at most s/c
   words in total. Allocation therefore "recharges" the budget and
   moves drain it. *)

type t = { c : float; mutable allocated : int; mutable moved : int }

exception Exceeded of { requested : int; available : int }

let create ~c =
  if c <= 1.0 then invalid_arg "Budget.create: need c > 1";
  { c; allocated = 0; moved = 0 }

(* [unlimited] bypasses the c > 1 check on purpose: it models a manager
   with no compaction bound (full compaction allowed). *)
let unlimited () = { c = 1.0; allocated = 0; moved = 0 }

let is_unlimited t = t.c <= 1.0
let c t = t.c
let allocated t = t.allocated
let moved t = t.moved

let quota t =
  if is_unlimited t then max_int else int_of_float (float t.allocated /. t.c)

let available t = if is_unlimited t then max_int else quota t - t.moved
let can_move t words = words <= available t
let on_alloc t words = t.allocated <- t.allocated + words

let charge_move t words =
  if not (can_move t words) then
    raise (Exceeded { requested = words; available = available t });
  t.moved <- t.moved + words

let is_compliant t = is_unlimited t || t.moved <= quota t

let pp ppf t =
  if is_unlimited t then Fmt.string ppf "budget:unlimited"
  else
    Fmt.pf ppf "budget: c=%g allocated=%d moved=%d available=%d" t.c
      t.allocated t.moved (available t)
