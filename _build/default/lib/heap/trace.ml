(* Recording and replaying heap event traces.

   A trace is a sequence of heap events in execution order. Replaying a
   trace onto a fresh heap reproduces the same final state and the same
   high-water mark, which gives tests a strong end-to-end check and
   makes adversarial executions inspectable offline. *)

type entry = { seq : int; event : Heap.event }
type t = { mutable entries : entry list; mutable length : int }

let create () = { entries = []; length = 0 }

let record trace heap =
  Heap.on_event heap (fun event ->
      trace.entries <- { seq = trace.length; event } :: trace.entries;
      trace.length <- trace.length + 1)

let length t = t.length
let entries t = List.rev t.entries
let iter t f = List.iter f (entries t)

(* Replay assumes the heap allocates oids densely in order, so the k-th
   Alloc event of the trace creates oid k of the replay heap. This
   holds for any trace recorded from a fresh heap. *)
let replay t =
  let heap = Heap.create () in
  iter t (fun { event; _ } ->
      match event with
      | Heap.Alloc o ->
          let oid = Heap.alloc heap ~addr:o.addr ~size:o.size in
          if not (Oid.equal oid o.oid) then
            failwith "Trace.replay: oid sequence mismatch"
      | Heap.Free o -> Heap.free heap o.oid
      | Heap.Move m -> Heap.move heap m.oid ~dst:m.dst);
  heap

let pp_entry ppf { seq; event } = Fmt.pf ppf "%6d %a" seq Heap.pp_event event
let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_entry) ppf (entries t)

(* Aggregate statistics over a trace: counts, volumes, allocation-size
   histogram (bucketed by floor log2), and object lifetimes measured
   in events. *)
type stats = {
  events : int;
  allocs : int;
  frees : int;
  moves : int;
  allocated_words : int;
  freed_words : int;
  moved_words : int;
  size_histogram : int array; (* index k: sizes in [2^k, 2^(k+1)) *)
  mean_lifetime : float; (* events between alloc and free *)
  immortal : int; (* allocated, never freed in the trace *)
}

let stats t =
  let allocs = ref 0 and frees = ref 0 and moves = ref 0 in
  let aw = ref 0 and fw = ref 0 and mw = ref 0 in
  let hist = Array.make 62 0 in
  let birth : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let lifetime_sum = ref 0 and lifetime_count = ref 0 in
  iter t (fun { seq; event } ->
      match event with
      | Heap.Alloc o ->
          incr allocs;
          aw := !aw + o.size;
          let b = Word.log2_floor o.size in
          hist.(b) <- hist.(b) + 1;
          Hashtbl.replace birth (Oid.to_int o.oid) seq
      | Heap.Free o ->
          incr frees;
          fw := !fw + o.size;
          (match Hashtbl.find_opt birth (Oid.to_int o.oid) with
          | Some b ->
              lifetime_sum := !lifetime_sum + (seq - b);
              incr lifetime_count;
              Hashtbl.remove birth (Oid.to_int o.oid)
          | None -> ())
      | Heap.Move m ->
          incr moves;
          mw := !mw + m.size);
  {
    events = t.length;
    allocs = !allocs;
    frees = !frees;
    moves = !moves;
    allocated_words = !aw;
    freed_words = !fw;
    moved_words = !mw;
    size_histogram = hist;
    mean_lifetime =
      (if !lifetime_count = 0 then 0.0
       else float_of_int !lifetime_sum /. float_of_int !lifetime_count);
    immortal = Hashtbl.length birth;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>events: %d (%d allocs, %d frees, %d moves)@,\
     words: %d allocated, %d freed, %d moved@,\
     mean lifetime: %.1f events; never freed: %d@,\
     sizes:" s.events s.allocs s.frees s.moves s.allocated_words
    s.freed_words s.moved_words s.mean_lifetime s.immortal;
  Array.iteri
    (fun k count ->
      if count > 0 then Fmt.pf ppf "@,  [%7d, %7d): %d" (1 lsl k) (2 lsl k) count)
    s.size_histogram;
  Fmt.pf ppf "@]"

(* A compact single-line serialization, one entry per line:
   "a <oid> <addr> <size>", "f <oid> <addr> <size>",
   "m <oid> <src> <dst> <size>". *)
let to_string t =
  let buf = Buffer.create (t.length * 16) in
  iter t (fun { event; _ } ->
      begin
        match event with
        | Heap.Alloc o ->
            Buffer.add_string buf
              (Printf.sprintf "a %d %d %d" (Oid.to_int o.oid) o.addr o.size)
        | Heap.Free o ->
            Buffer.add_string buf
              (Printf.sprintf "f %d %d %d" (Oid.to_int o.oid) o.addr o.size)
        | Heap.Move m ->
            Buffer.add_string buf
              (Printf.sprintf "m %d %d %d %d" (Oid.to_int m.oid) m.src m.dst
                 m.size)
      end;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_string s =
  let t = create () in
  let add event =
    t.entries <- { seq = t.length; event } :: t.entries;
    t.length <- t.length + 1
  in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ "" ] -> ()
         | [ "a"; oid; addr; size ] ->
             add
               (Heap.Alloc
                  {
                    oid = Oid.of_int (int_of_string oid);
                    addr = int_of_string addr;
                    size = int_of_string size;
                  })
         | [ "f"; oid; addr; size ] ->
             add
               (Heap.Free
                  {
                    oid = Oid.of_int (int_of_string oid);
                    addr = int_of_string addr;
                    size = int_of_string size;
                  })
         | [ "m"; oid; src; dst; size ] ->
             add
               (Heap.Move
                  {
                    oid = Oid.of_int (int_of_string oid);
                    src = int_of_string src;
                    dst = int_of_string dst;
                    size = int_of_string size;
                  })
         | _ -> failwith ("Trace.of_string: bad line: " ^ line));
  t
