(** Recording and replaying heap event traces.

    Replaying a recorded trace onto a fresh heap reproduces the same
    final state and high-water mark — an end-to-end determinism check
    and an offline debugging aid. *)

type entry = { seq : int; event : Heap.event }
type t

val create : unit -> t

val record : t -> Heap.t -> unit
(** Start appending [heap]'s events to the trace. The heap should be
    fresh if the trace is meant to be replayable. *)

val length : t -> int
val entries : t -> entry list
(** In execution order. *)

val iter : t -> (entry -> unit) -> unit

val replay : t -> Heap.t
(** Re-execute the trace on a fresh heap. Raises [Failure] if the
    trace's oid sequence is not dense from 0 (i.e. it was not recorded
    from a fresh heap). *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

type stats = {
  events : int;
  allocs : int;
  frees : int;
  moves : int;
  allocated_words : int;
  freed_words : int;
  moved_words : int;
  size_histogram : int array;
      (** index [k] counts allocations with size in
          [\[2{^k}, 2{^k+1})] *)
  mean_lifetime : float;  (** events between alloc and free *)
  immortal : int;  (** allocated but never freed within the trace *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
