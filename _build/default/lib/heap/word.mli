(** Word arithmetic helpers.

    All heap addresses and sizes in this library are measured in words
    and represented as non-negative [int]s. Logarithms are base 2, as in
    the paper. *)

val is_pow2 : int -> bool
(** [is_pow2 x] is [true] iff [x] is a positive power of two. *)

val pow2 : int -> int
(** [pow2 k] is [2{^k}]. Raises [Invalid_argument] unless
    [0 <= k <= 61]. *)

val log2_floor : int -> int
(** [log2_floor x] is [⌊log2 x⌋] for [x > 0]. *)

val log2_ceil : int -> int
(** [log2_ceil x] is [⌈log2 x⌉] for [x > 0]. *)

val round_up_pow2 : int -> int
(** [round_up_pow2 x] is the least power of two [>= x], for [x > 0]. *)

val align_up : int -> align:int -> int
(** [align_up addr ~align] is the least address [>= addr] divisible by
    [align]. *)

val align_down : int -> align:int -> int
(** [align_down addr ~align] is the greatest address [<= addr] divisible
    by [align]. *)

val is_aligned : int -> align:int -> bool
(** [is_aligned addr ~align] is [true] iff [align] divides [addr]. *)

val pp_count : Format.formatter -> int -> unit
(** Pretty-print a word count with K/M/G suffixes when exact. *)
