(* Bounds explorer: prints the data behind the paper's three figures
   for any parameter setting. Run with:

     dune exec examples/bounds_explorer.exe -- [M-megabytes] [n-kilobytes]

   Defaults to the paper's M = 256MB, n = 1MB.
*)

open Pc_core

let () =
  let m_mb = try int_of_string Sys.argv.(1) with _ -> 256 in
  let n_kb = try int_of_string Sys.argv.(2) with _ -> 1024 in
  let m = m_mb * Pc.Bounds.Params.mb and n = n_kb * Pc.Bounds.Params.kb in
  Fmt.pr "parameters: M = %dMB, n = %dKB (%a words each)@.@." m_mb n_kb
    Pc.Word.pp_count m;

  Fmt.pr "=== Figure 1: lower bound vs compaction budget c ===@.";
  Fmt.pr "%6s  %10s  %6s  %14s  %10s@." "c" "this paper" "ell*" "Bendersky-P."
    "trivial";
  List.iter
    (fun c ->
      let ours = Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c in
      let ell =
        match Pc.Bounds.Cohen_petrank.best ~m ~n ~c with
        | Some { ell; _ } -> string_of_int ell
        | None -> "-"
      in
      let bp = Pc.Bounds.Bendersky_petrank.waste_factor ~m ~n ~c in
      Fmt.pr "%6.0f  %10.3f  %6s  %14.3f  %10.1f@." c ours ell bp 1.0)
    Pc.Bounds.Params.fig1_cs;

  Fmt.pr "@.=== Figure 2: lower bound vs largest object size n (c=100, M=256n) ===@.";
  Fmt.pr "%10s  %10s@." "n" "h";
  List.iter
    (fun n ->
      let m = 256 * n in
      Fmt.pr "%10s  %10.3f@."
        (Fmt.str "%a" Pc.Word.pp_count n)
        (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c:100.0))
    Pc.Bounds.Params.fig2_ns;

  Fmt.pr "@.=== Figure 3: upper bound vs c ===@.";
  Fmt.pr "%6s  %12s  %12s  %12s@." "c" "Theorem 2" "prior best" "improvement";
  List.iter
    (fun c ->
      if Pc.Bounds.Theorem2.applicable ~n ~c then
        Fmt.pr "%6.0f  %12.2f  %12.2f  %11.1f%%@." c
          (Pc.Bounds.Theorem2.waste_factor ~m ~n ~c)
          (Pc.Bounds.Theorem2.prior_best ~m ~n ~c /. float_of_int m)
          (100.0 *. Pc.Bounds.Theorem2.improvement ~m ~n ~c))
    Pc.Bounds.Params.fig3_cs
