(* The fragmentation ladder: how much heap the same M of live data
   costs, from benign workloads to the paper's adversary.

   Random churn barely fragments (which is why production runtimes get
   away with partial compaction); sawtooth phases hurt a little; the
   chunk-pinning adversary PW and Robson's PR force non-moving
   managers to multiples of M; and Cohen-Petrank's PF keeps hurting
   even when the manager is allowed to compact 1/c of all allocations.
   Run with:

     dune exec examples/fragmentation_ladder.exe
*)

open Pc_core

let m = 1 lsl 12
let n = 1 lsl 5
let c = 16.0

let run program manager_key ~budgeted =
  let manager = Pc.Managers.construct_exn manager_key in
  let o =
    if budgeted then Pc.Runner.run ~c ~program ~manager ()
    else Pc.Runner.run ~program ~manager ()
  in
  o.hs_over_m

let () =
  Fmt.pr "M = %d words, n = %d, c = %g where budgeted@.@." m n c;
  Fmt.pr "%-28s %12s %18s@." "workload" "first-fit"
    (Fmt.str "compacting (c=%g)" c);
  let row name make_program =
    (* fresh program per run — programs are single-shot *)
    Fmt.pr "%-28s %12.3f %18.3f@." name
      (run (make_program ()) "first-fit" ~budgeted:false)
      (run (make_program ()) "compacting" ~budgeted:true)
  in
  row "random churn (live M/2)" (fun () ->
      Pc.Random_workload.program ~seed:1 ~churn:5_000 ~m
        ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = 5 })
        ~target_live:(m / 2) ());
  row "sawtooth phases" (fun () -> Pc.Sawtooth.program ~m ~n ());
  row "PW (chunk pinning)" (fun () -> Pc.Pw.program ~m ~n ());
  row "PR (Robson offsets)" (fun () -> Pc.Robson_pr.program ~m ~n ());
  row "PF (Cohen-Petrank)" (fun () ->
      snd (Pc.Pf.program ~m ~n ~c ()));
  Fmt.pr "@.references: Robson bound %.3f (non-moving floor);@."
    (Pc.Bounds.Robson.waste_factor_pow2 ~m ~n);
  Fmt.pr "Theorem 1 floor at c=%g: %.3f (no manager whatsoever can beat it)@."
    c
    (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c)
