(* Quickstart: the heap model in five minutes.

   Builds a small heap, drives a first-fit manager by hand, shows how
   fragmentation arises, and compares two closed-form bounds. Run with:

     dune exec examples/quickstart.exe
*)

open Pc_core

let () =
  (* A context bundles a heap with a compaction budget. M is the
     program's live-space bound; this one never compacts. *)
  let ctx = Pc.Ctx.create ~live_bound:64 () in
  let heap = Pc.Ctx.heap ctx in
  let manager = Pc.Managers.construct_exn "first-fit" in

  (* Allocate eight 8-word objects... *)
  let oids =
    List.init 8 (fun _ ->
        let addr = Pc.Manager.alloc manager ctx ~size:8 in
        Pc.Heap.alloc heap ~addr ~size:8)
  in
  Fmt.pr "after 8 allocations of 8 words:@.%s@."
    (Pc.Layout.render
       ~config:{ Pc.Layout.default_config with cells_per_row = 80 }
       heap);

  (* ... free every second one: classic checkerboard fragmentation. *)
  List.iteri (fun i oid -> if i mod 2 = 0 then Pc.Heap.free heap oid) oids;
  Fmt.pr "after freeing every second object:@.%s@."
    (Pc.Layout.render
       ~config:{ Pc.Layout.default_config with cells_per_row = 80 }
       heap);

  (* A 16-word request no longer fits below the high-water mark, even
     though 32 words are free: *)
  let addr = Pc.Manager.alloc manager ctx ~size:16 in
  let _oid = Pc.Heap.alloc heap ~addr ~size:16 in
  let snap = Pc.Metrics.snapshot heap in
  Fmt.pr "a 16-word object went to address %d; %a@.@." addr Pc.Metrics.pp snap;

  (* The paper quantifies how bad this can get. Robson: without
     compaction, a worst-case program with M = 256MB, n = 1MB forces a
     ~11x heap. Cohen-Petrank Theorem 1: even moving 1%% of all
     allocated words, 3.5x is unavoidable. *)
  let m = 256 * Pc.Bounds.Params.mb and n = Pc.Bounds.Params.mb in
  Fmt.pr "Robson (no compaction):   HS >= %.2f x M@."
    (Pc.Bounds.Robson.waste_factor_pow2 ~m ~n);
  Fmt.pr "Theorem 1 (c = 100):      HS >= %.2f x M@."
    (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c:100.0);
  Fmt.pr "Theorem 1 (c = 10):       HS >= %.2f x M@."
    (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c:10.0);

  (* And the adversary that proves it, at laptop scale: *)
  let report = Pc.run_pf ~m:(1 lsl 14) ~n:(1 lsl 7) ~c:8.0 ~manager:"compacting" () in
  Fmt.pr "@.PF vs compacting manager (M=2^14, n=2^7, c=8):@.";
  Fmt.pr "  measured HS/M = %.3f   (theory floor at this scale: %.3f)@."
    report.outcome.hs_over_m report.theory_h
