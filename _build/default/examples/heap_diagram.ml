(* Heap diagram: ASCII renderings in the spirit of the paper's
   Figures 4 and 5 — chunk partitions, objects pinned at offset words,
   and the checkerboard Robson's program carves out. Run with:

     dune exec examples/heap_diagram.exe
*)

open Pc_core

let render heap ~chunk =
  Pc.Layout.render
    ~config:
      { Pc.Layout.words_per_cell = 1; cells_per_row = 64; chunk_words = Some chunk }
    heap

let () =
  (* Figure 4's situation: chunks of 8 words at density 1/4, objects
     straddling chunk borders. *)
  let ctx = Pc.Ctx.create ~live_bound:64 () in
  let heap = Pc.Ctx.heap ctx in
  let o1 = Pc.Heap.alloc heap ~addr:2 ~size:2 in
  let _o2 = Pc.Heap.alloc heap ~addr:6 ~size:4 in
  let _o3 = Pc.Heap.alloc heap ~addr:17 ~size:4 in
  ignore (Pc.Heap.alloc heap ~addr:30 ~size:2 : Pc.Oid.t);
  Fmt.pr "Figure 4 style: chunks of 8 ('|'), objects at density >= 1/4@.";
  Fmt.pr "%s@.@." (render heap ~chunk:8);
  Fmt.pr "O1 freed (density still 1/4 without it):@.";
  Pc.Heap.free heap o1;
  Fmt.pr "%s@.@." (render heap ~chunk:8);

  (* Robson's checkerboard: run P_R at toy scale against first fit and
     draw the heap after each step. *)
  Fmt.pr "Robson's P_R vs first-fit (M=256, n=16): final heap@.";
  let r = Pc.run_robson ~m:256 ~n:16 ~manager:"first-fit" () in
  Fmt.pr "HS/M = %.3f (Robson bound %.3f)@." r.outcome.hs_over_m
    r.theory_waste;
  (* Re-run capturing the heap for rendering. *)
  let manager = Pc.Managers.construct_exn "first-fit" in
  let program = Pc.Robson_pr.program ~m:256 ~n:16 () in
  let ctx = Pc.Ctx.create ~live_bound:256 () in
  let driver = Pc.Driver.create ctx manager in
  Pc.Program.run program driver;
  Fmt.pr "%s@." (render (Pc.Ctx.heap ctx) ~chunk:16)
