(* Real-time heap sizing: the downstream use the paper's introduction
   points at. A real-time system must guarantee that allocation never
   fails; its designer picks a compaction budget c (CPU cost) and must
   then provision heap memory H. This example answers, for given M and
   n:

   - what H is *guaranteed* to suffice (upper bounds: Bendersky-
     Petrank's (c+1)M, Robson without compaction, Theorem 2);
   - what H can *never* be guaranteed (Theorem 1's lower bound) — the
     paper's "what you cannot aspire to".

   Run with:

     dune exec examples/rt_heap_sizing.exe -- [M-megabytes] [n-kilobytes]
*)

open Pc_core

let () =
  let m_mb = try int_of_string Sys.argv.(1) with _ -> 64 in
  let n_kb = try int_of_string Sys.argv.(2) with _ -> 256 in
  let m = m_mb * Pc.Bounds.Params.mb and n = n_kb * Pc.Bounds.Params.kb in
  let mf = float_of_int m in
  Fmt.pr "live space M = %dMB, max object n = %dKB@.@." m_mb n_kb;
  Fmt.pr
    "%6s | %18s | %34s@." "c" "impossible below" "guaranteed sufficient";
  Fmt.pr "%6s | %18s | %10s %10s %12s@." "" "(Theorem 1)" "(c+1)M"
    "Robson x2" "Theorem 2";
  List.iter
    (fun c ->
      let floor_h = Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c in
      let bp = Pc.Bounds.Bendersky_petrank.upper_bound ~m ~c /. mf in
      let robson = Pc.Bounds.Robson.upper_bound_general ~m ~n /. mf in
      let t2 =
        if Pc.Bounds.Theorem2.applicable ~n ~c then
          Fmt.str "%.2f x M" (Pc.Bounds.Theorem2.waste_factor ~m ~n ~c)
        else "n/a"
      in
      Fmt.pr "%6.0f | %15.2f xM | %7.2f xM %7.2f xM %12s@." c floor_h bp
        robson t2)
    [ 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0 ];
  Fmt.pr
    "@.Reading: a heap smaller than the Theorem 1 column cannot be \
     guaranteed@.for any allocator that compacts at most 1/c of allocated \
     words —@.provision at least the cheapest \"guaranteed\" column, or \
     raise the@.compaction budget.@."
