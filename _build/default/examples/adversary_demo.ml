(* Adversary demo: the paper's bad programs running against real
   managers, at laptop scale. Shows (1) Robson's P_R forcing the
   matching bound out of every non-moving policy, and (2) Cohen &
   Petrank's P_F forcing a large heap out of budget-limited
   compactors, where unlimited compaction stays at 1x. Run with:

     dune exec examples/adversary_demo.exe
*)

open Pc_core

let () =
  let m = 1 lsl 12 and n = 1 lsl 6 in
  Fmt.pr "=== Robson's P_R vs non-moving managers (M=2^12, n=2^6) ===@.";
  Fmt.pr "theory: every non-moving manager needs HS/M >= %.3f@.@."
    (Pc.Bounds.Robson.waste_factor_pow2 ~m ~n);
  List.iter
    (fun key ->
      let r = Pc.run_robson ~m ~n ~manager:key () in
      Fmt.pr "  %-12s HS/M = %.3f@." key r.outcome.hs_over_m)
    [ "first-fit"; "next-fit"; "best-fit"; "worst-fit"; "aligned-fit";
      "buddy"; "segregated" ];

  let m = 1 lsl 16 and n = 1 lsl 8 in
  Fmt.pr "@.=== Cohen-Petrank's P_F vs compacting managers (M=2^16, n=2^8) ===@.";
  List.iter
    (fun c ->
      let r = Pc.run_pf ~m ~n ~c ~manager:"compacting" () in
      Fmt.pr
        "  c=%-3g  ell=%d  measured HS/M = %.3f   moved %a words \
         (budget-compliant: %b)@."
        c r.config.ell r.outcome.hs_over_m Pc.Word.pp_count r.outcome.moved
        r.outcome.compliant)
    [ 4.0; 8.0; 16.0; 32.0 ];

  (* The same adversary against unlimited compaction: fragmentation
     vanishes, confirming it is the budget that hurts, not the
     workload. *)
  let cfg, program = Pc.Pf.program ~m ~n ~c:8.0 () in
  let bp = Pc.Managers.construct_exn "bp-simple" in
  let o = Pc.Runner.run ~c:8.0 ~program ~manager:bp () in
  Fmt.pr
    "@.P_F (l=%d) vs bp-simple (the (c+1)M manager, c=8): HS/M = %.3f <= %g@."
    cfg.ell o.hs_over_m
    (Pc.Bounds.Bendersky_petrank.upper_bound ~m ~c:8.0 /. float_of_int m)
