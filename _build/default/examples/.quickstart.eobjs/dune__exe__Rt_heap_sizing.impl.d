examples/rt_heap_sizing.ml: Array Fmt List Pc Pc_core Sys
