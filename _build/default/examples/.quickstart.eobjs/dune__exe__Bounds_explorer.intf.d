examples/bounds_explorer.mli:
