examples/fragmentation_ladder.ml: Fmt Pc Pc_core
