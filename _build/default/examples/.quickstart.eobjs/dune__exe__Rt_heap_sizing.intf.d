examples/rt_heap_sizing.mli:
