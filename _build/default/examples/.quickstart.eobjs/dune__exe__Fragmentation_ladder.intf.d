examples/fragmentation_ladder.mli:
