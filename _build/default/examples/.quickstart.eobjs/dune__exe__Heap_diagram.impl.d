examples/heap_diagram.ml: Fmt Pc Pc_core
