examples/quickstart.ml: Fmt List Pc Pc_core
