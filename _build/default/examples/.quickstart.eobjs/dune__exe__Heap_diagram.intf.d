examples/heap_diagram.mli:
