examples/adversary_demo.ml: Fmt List Pc Pc_core
