examples/bounds_explorer.ml: Array Fmt List Pc Pc_core Sys
