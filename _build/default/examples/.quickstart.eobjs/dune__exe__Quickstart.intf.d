examples/quickstart.mli:
