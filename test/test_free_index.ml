open Pc_heap

(* The free index is exercised with random occupy/release scripts and
   compared against a boolean-array reference model of the address
   space. *)

let span = 512

module Model = struct
  (* boolean occupancy array over [0, span): true = occupied *)
  let create () = Array.make span false
  let is_free m ~addr ~len =
    addr + len <= span
    && (let rec loop i = i >= addr + len || ((not m.(i)) && loop (i + 1)) in
        loop addr)

  let occupy m ~addr ~len =
    for i = addr to addr + len - 1 do
      m.(i) <- true
    done

  let release m ~addr ~len =
    for i = addr to addr + len - 1 do
      m.(i) <- false
    done

  (* Maximal free runs strictly below the highest occupied address+1. *)
  let frontier m =
    let rec loop i = if i = 0 then 0 else if m.(i - 1) then i else loop (i - 1) in
    loop span

  let first_fit m ~size =
    let f = frontier m in
    let rec loop a run =
      if a >= f then None
      else if m.(a) then loop (a + 1) 0
      else begin
        let run = run + 1 in
        if run = size then Some (a - size + 1) else loop (a + 1) run
      end
    in
    loop 0 0
end

(* A random script of valid operations, executed against both. *)
let run_script backend seed steps =
  let st = Random.State.make [| seed |] in
  let model = Model.create () in
  let index = Free_index.create ~backend () in
  let live = ref [] in
  (* (addr, len) list *)
  let script_ok = ref true in
  for _ = 1 to steps do
    let do_alloc = Random.State.bool st || !live = [] in
    if do_alloc then begin
      let len = 1 + Random.State.int st 24 in
      let addr = Random.State.int st (span - len) in
      if Model.is_free model ~addr ~len then begin
        Model.occupy model ~addr ~len;
        Free_index.occupy index ~addr ~len;
        live := (addr, len) :: !live
      end
    end
    else begin
      match !live with
      | [] -> ()
      | (addr, len) :: rest ->
          Model.release model ~addr ~len;
          Free_index.release index ~addr ~len;
          live := rest
    end;
    Free_index.check_invariants index;
    (* frontier agreement *)
    if Free_index.frontier index <> Model.frontier model then
      script_ok := false;
    (* spot-check point queries *)
    let a = Random.State.int st span in
    let l = 1 + Random.State.int st 8 in
    if
      a + l <= Model.frontier model
      && Free_index.is_free index ~addr:a ~len:l <> Model.is_free model ~addr:a ~len:l
    then script_ok := false;
    (* first-fit agreement below the frontier *)
    let size = 1 + Random.State.int st 16 in
    let ff_index = Free_index.first_fit_gap index ~size in
    let ff_model = Model.first_fit model ~size in
    if ff_index <> ff_model then script_ok := false
  done;
  !script_ok

let prop_against_model backend =
  QCheck.Test.make
    ~name:
      (Fmt.str "random occupy/release agrees with model (%a)" Backend.pp
         backend)
    ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 10 300))
    (fun (seed, steps) -> run_script backend seed steps)

let test_tail_carving backend () =
  let t = Free_index.create ~backend () in
  Alcotest.(check int) "initial frontier" 0 (Free_index.frontier t);
  Free_index.occupy t ~addr:10 ~len:5;
  Alcotest.(check int) "frontier jumps" 15 (Free_index.frontier t);
  Alcotest.(check int) "gap created below" 1 (Free_index.gap_count t);
  Alcotest.(check int) "gap words" 10 (Free_index.free_below_frontier t);
  Free_index.release t ~addr:10 ~len:5;
  Alcotest.(check int) "frontier retracts fully" 0 (Free_index.frontier t);
  Alcotest.(check int) "no gaps" 0 (Free_index.gap_count t)

let test_coalescing backend () =
  let t = Free_index.create ~backend () in
  Free_index.occupy t ~addr:0 ~len:30;
  Free_index.release t ~addr:5 ~len:5;
  Free_index.release t ~addr:15 ~len:5;
  Alcotest.(check int) "two gaps" 2 (Free_index.gap_count t);
  (* releasing the middle merges all three into one *)
  Free_index.release t ~addr:10 ~len:5;
  Alcotest.(check int) "one gap" 1 (Free_index.gap_count t);
  Alcotest.(check (list (pair int int))) "merged" [ (5, 15) ] (Free_index.gaps t);
  Free_index.check_invariants t

let test_double_free_rejected backend () =
  let t = Free_index.create ~backend () in
  Free_index.occupy t ~addr:0 ~len:10;
  Free_index.release t ~addr:2 ~len:3;
  Alcotest.check_raises "double free"
    (Invalid_argument "Free_index.release: extent already free") (fun () ->
      Free_index.release t ~addr:2 ~len:3);
  Alcotest.check_raises "overlapping free"
    (Invalid_argument "Free_index.release: extent already free") (fun () ->
      Free_index.release t ~addr:0 ~len:10)

let test_occupy_occupied_rejected backend () =
  let t = Free_index.create ~backend () in
  Free_index.occupy t ~addr:0 ~len:10;
  Alcotest.check_raises "overlap below frontier"
    (Invalid_argument "Free_index.occupy: extent not free") (fun () ->
      Free_index.occupy t ~addr:5 ~len:3)

let test_fit_queries backend () =
  let t = Free_index.create ~backend () in
  Free_index.occupy t ~addr:0 ~len:100;
  Free_index.release t ~addr:10 ~len:4;
  (* gap A: [10,14) *)
  Free_index.release t ~addr:30 ~len:16;
  (* gap B: [30,46) *)
  Free_index.release t ~addr:60 ~len:8;
  (* gap C: [60,68) *)
  (match Free_index.first_fit t ~size:5 with
  | Free_index.Gap a -> Alcotest.(check int) "first fit size 5" 30 a
  | Free_index.Tail _ -> Alcotest.fail "expected gap");
  Alcotest.(check (option int)) "best fit size 5" (Some 60)
    (Free_index.best_fit_gap t ~size:5);
  Alcotest.(check (option int)) "worst fit" (Some 30)
    (Free_index.worst_fit_gap t ~size:5);
  Alcotest.(check (option int)) "from 40: fits in gap B's remainder"
    (Some 40)
    (Free_index.first_fit_from t ~from:40 ~size:5);
  Alcotest.(check (option int)) "from 43: remainder too small, skip to C"
    (Some 60)
    (Free_index.first_fit_from t ~from:43 ~size:5);
  (match Free_index.first_aligned_fit t ~size:8 ~align:8 with
  | Free_index.Gap a -> Alcotest.(check int) "aligned 8" 32 a
  | Free_index.Tail _ -> Alcotest.fail "expected aligned gap");
  (* aligned fit that only the tail satisfies *)
  (match Free_index.first_aligned_fit t ~size:16 ~align:16 with
  | Free_index.Tail a -> Alcotest.(check int) "tail aligned" 112 a
  | Free_index.Gap a -> Alcotest.failf "expected tail, got gap %d" a);
  Alcotest.(check (list (pair int int))) "largest gaps" [ (30, 16); (60, 8) ]
    (Free_index.largest_gaps t ~k:2)

(* A release whose extent starts exactly at an existing gap's start
   must be rejected as already free — the coalesce-left probe sees the
   gap as its own predecessor (s = addr, s + l > addr) — and likewise
   when the gap is found by the successor probe (release strictly
   below an existing gap it overlaps). A rejected release must leave
   the index untouched. *)
let test_release_at_gap_start backend () =
  let t = Free_index.create ~backend () in
  Free_index.occupy t ~addr:0 ~len:20;
  Free_index.release t ~addr:5 ~len:10;
  (* gap [5, 15) *)
  let snapshot () =
    (Free_index.gaps t, Free_index.frontier t, Free_index.free_below_frontier t)
  in
  let before = snapshot () in
  let already_free = Invalid_argument "Free_index.release: extent already free" in
  Alcotest.check_raises "release at gap start" already_free (fun () ->
      Free_index.release t ~addr:5 ~len:4);
  Alcotest.check_raises "release of whole gap" already_free (fun () ->
      Free_index.release t ~addr:5 ~len:10);
  Alcotest.check_raises "release overlapping gap start from below" already_free
    (fun () -> Free_index.release t ~addr:3 ~len:4);
  Alcotest.check_raises "release inside gap" already_free (fun () ->
      Free_index.release t ~addr:7 ~len:2);
  Alcotest.(check (triple (list (pair int int)) int int))
    "rejected releases leave the index untouched" before (snapshot ());
  Free_index.check_invariants t

let suite backend =
  let tc name f = Alcotest.test_case name `Quick (f backend) in
  ( Fmt.str "unit (%a)" Backend.pp backend,
    [
      tc "tail carving" test_tail_carving;
      tc "coalescing" test_coalescing;
      tc "double free" test_double_free_rejected;
      tc "release at gap start" test_release_at_gap_start;
      tc "occupy occupied" test_occupy_occupied_rejected;
      tc "fit queries" test_fit_queries;
    ] )

let () =
  Alcotest.run "free_index"
    [
      suite Backend.Imperative;
      suite Backend.Reference;
      ( "properties",
        [
          QCheck_alcotest.to_alcotest (prop_against_model Backend.Imperative);
          QCheck_alcotest.to_alcotest (prop_against_model Backend.Reference);
        ] );
    ]
