open Pc_heap
module Oracle = Pc_audit.Oracle
module Shrink = Pc_audit.Shrink
module Report = Pc_audit.Report

(* A scratch directory for repro bundles, fresh per test run. *)
let tmp_failures =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pc_audit_test_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let violation_of f =
  match f () with
  | _ -> Alcotest.fail "expected an oracle violation"
  | exception Oracle.Violation v -> v

let reported_of f =
  match f () with
  | _ -> Alcotest.fail "expected Report.Reported"
  | exception Report.Reported b -> b

(* ------------------------------------------------------------------ *)
(* Oracle units                                                       *)

let test_budget_trip () =
  let h = Heap.create () in
  let o = Oracle.attach ~sample_every:1 ~c:4.0 h in
  let a = Heap.alloc h ~addr:0 ~size:8 in
  (* quota = floor(8 / 4) = 2; an 8-word move must trip *)
  let v = violation_of (fun () -> Heap.move h a ~dst:16) in
  Alcotest.(check string) "oracle" "budget" v.oracle;
  Alcotest.(check int) "seq is the violating event" 2 v.seq;
  ignore (Oracle.seq o)

let test_live_bound_trip () =
  let h = Heap.create () in
  let _ = Oracle.attach ~sample_every:1 ~live_bound:8 h in
  let _ = Heap.alloc h ~addr:0 ~size:4 in
  let v = violation_of (fun () -> Heap.alloc h ~addr:8 ~size:8) in
  Alcotest.(check string) "oracle" "live-bound" v.oracle

let test_only_filter () =
  let h = Heap.create () in
  (* with the budget oracle filtered out, the same move is clean *)
  let o = Oracle.attach ~sample_every:1 ~c:4.0 ~only:"live-bound" h in
  let a = Heap.alloc h ~addr:0 ~size:8 in
  Heap.move h a ~dst:16;
  Oracle.finish o

let test_off_is_inert () =
  let h = Heap.create () in
  let o = Oracle.attach ~level:Oracle.Off ~sample_every:1 ~c:4.0 ~live_bound:1 h in
  let a = Heap.alloc h ~addr:0 ~size:8 in
  Heap.move h a ~dst:16;
  Oracle.finish ~theory_h:100.0 o

let test_theory_floor () =
  let h = Heap.create () in
  let o = Oracle.attach ~sample_every:1 ~live_bound:64 h in
  let _ = Heap.alloc h ~addr:0 ~size:8 in
  (* HS/M = 8/64 is nowhere near h = 3 *)
  let v = violation_of (fun () -> Oracle.finish ~theory_h:3.0 o) in
  Alcotest.(check string) "oracle" "theory" v.oracle;
  (* a vacuous floor (h <= 1) is never asserted *)
  let h2 = Heap.create () in
  let o2 = Oracle.attach ~sample_every:1 ~live_bound:64 h2 in
  let _ = Heap.alloc h2 ~addr:0 ~size:8 in
  Oracle.finish ~theory_h:1.0 o2

let test_divergence_clean () =
  let h = Heap.create () in
  let o = Oracle.attach ~level:Oracle.Differential ~sample_every:1 h in
  let a = Heap.alloc h ~addr:0 ~size:4 in
  let b = Heap.alloc h ~addr:8 ~size:4 in
  Heap.move h a ~dst:16;
  Heap.free h b;
  Oracle.finish o;
  Alcotest.(check int) "all events seen" 4 (Oracle.seq o)

let test_attach_validation () =
  let h = Heap.create () in
  Alcotest.check_raises "sample_every > 0"
    (Invalid_argument "Oracle.attach: sample_every must be > 0") (fun () ->
      ignore (Oracle.attach ~sample_every:0 h));
  Alcotest.check_raises "c > 1" (Invalid_argument "Oracle.attach: need c > 1")
    (fun () -> ignore (Oracle.attach ~c:1.0 h))

(* ------------------------------------------------------------------ *)
(* The injected-bug drill: a manager whose budget debit is broken      *)

let drill () =
  let mgr = Pc_manager.Registry.construct_exn "compacting" in
  let _, program =
    Pc_adversary.Pf.program ~m:(1 lsl 12) ~n:(1 lsl 6) ~c:8.0 ()
  in
  (* no enforced budget (the "broken debit"), but the oracle audits the
     declared c = 8 *)
  reported_of (fun () ->
      Pc_adversary.Runner.run ~audit:Oracle.Sampled ~audit_c:8.0
        ~failures_dir:tmp_failures ~program ~manager:mgr ())

let test_drill_trips_budget () =
  let b = drill () in
  Alcotest.(check string) "oracle" "budget" b.Report.violation.Oracle.oracle;
  Alcotest.(check bool) "bundle dir exists" true
    (Sys.file_exists b.Report.dir && Sys.is_directory b.Report.dir);
  Alcotest.(check bool)
    (Fmt.str "minimized to <= 50 events (got %d)" b.Report.events_min)
    true
    (b.Report.events_min <= 50);
  Alcotest.(check bool) "minimized is no larger than recorded" true
    (b.Report.events_min <= b.Report.events_full)

let test_drill_bundle_replays () =
  let b = drill () in
  (match Report.replay b.Report.dir with
  | Ok (Some v) ->
      Alcotest.(check string) "same oracle" "budget" v.Oracle.oracle
  | Ok None -> Alcotest.fail "bundle did not reproduce"
  | Error msg -> Alcotest.fail msg);
  (* the budget rule is substrate-independent: the bundle must also
     reproduce on the opposite backend *)
  match Report.replay ~backend:Backend.Reference b.Report.dir with
  | Ok (Some v) ->
      Alcotest.(check string) "reproduces on reference" "budget"
        v.Oracle.oracle
  | Ok None -> Alcotest.fail "no reproduction on the reference backend"
  | Error msg -> Alcotest.fail msg

let test_drill_deterministic () =
  let b1 = drill () in
  let b2 = drill () in
  (* content-addressed: the same failure converges on the same bundle *)
  Alcotest.(check string) "same bundle dir" b1.Report.dir b2.Report.dir;
  Alcotest.(check int) "same minimized size" b1.Report.events_min
    b2.Report.events_min

let test_differential_run_matches_plain () =
  let point audit =
    let mgr = Pc_manager.Registry.construct_exn "compacting" in
    let _, program =
      Pc_adversary.Pf.program ~m:(1 lsl 11) ~n:(1 lsl 5) ~c:8.0 ()
    in
    Pc_adversary.Runner.run ~c:8.0 ~audit ~failures_dir:tmp_failures ~program
      ~manager:mgr ()
  in
  let plain = point Oracle.Off in
  let diff = point Oracle.Differential in
  Alcotest.(check int) "hs agrees" plain.hs diff.hs;
  Alcotest.(check int) "moved agrees" plain.moved diff.moved;
  Alcotest.(check int) "allocated agrees" plain.allocated diff.allocated

let test_theory_violation_ships_unshrunk () =
  let mgr = Pc_manager.Registry.construct_exn "first-fit" in
  let program =
    Pc_adversary.Script.program
      (Pc_adversary.Script.parse "a x 4; a y 4; f x")
  in
  let b =
    reported_of (fun () ->
        Pc_adversary.Runner.run ~audit:Oracle.Sampled ~theory_h:5.0
          ~failures_dir:tmp_failures ~program ~manager:mgr ())
  in
  Alcotest.(check string) "oracle" "theory" b.Report.violation.Oracle.oracle;
  Alcotest.(check int) "not shrunk" b.Report.events_full b.Report.events_min

let test_load_rejects_garbage () =
  (match Report.load "/nonexistent/bundle" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg ->
      Alcotest.(check bool) "mentions the path" true
        (String.length msg > 0));
  match Report.load (Filename.get_temp_dir_name ()) with
  | Ok _ -> Alcotest.fail "expected an error (no meta.txt)"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Shrinker properties                                                *)

(* A family of traces that always violate the budget oracle at c = 4:
   [k] one-word allocs at spaced addresses, an optional free, then a
   64-word alloc that is immediately moved — moved 64 > quota
   (k + 64 + eps)/4 for every k < 192. *)
let violating_trace seed =
  let st = Random.State.make [| seed |] in
  let k = Random.State.int st 30 in
  let h = Heap.create () in
  let t = Trace.create () in
  Trace.record t h;
  let small = ref [] in
  for i = 0 to k - 1 do
    small := Heap.alloc h ~addr:(i * 16) ~size:1 :: !small
  done;
  (match !small with
  | oid :: _ when Random.State.bool st -> Heap.free h oid
  | _ -> ());
  let big = Heap.alloc h ~addr:4096 ~size:64 in
  Heap.move h big ~dst:8192;
  t

let budget_info =
  {
    Report.program = "qcheck";
    manager = "scripted";
    m = 1 lsl 20;
    n = 64;
    c = Some 4.0;
    backend = Backend.default ();
    theory_h = None;
  }

let budget_predicate trace =
  match Report.reproduces ~only:"budget" ~info:budget_info trace with
  | Some v -> String.equal v.Oracle.oracle "budget"
  | None -> false

let sub_traces trace =
  let events =
    List.map (fun (e : Trace.entry) -> e.event) (Trace.entries trace)
  in
  List.mapi
    (fun i _ ->
      Trace.of_events (List.filteri (fun j _ -> j <> i) events))
    events

let prop_shrunk_still_trips =
  QCheck.Test.make ~name:"shrunk trace still trips the same oracle" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let t = violating_trace seed in
      QCheck.assume (budget_predicate t);
      budget_predicate (Shrink.ddmin ~predicate:budget_predicate t))

let prop_one_minimal =
  QCheck.Test.make ~name:"ddmin result is 1-minimal" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let t = violating_trace seed in
      QCheck.assume (budget_predicate t);
      let shrunk = Shrink.ddmin ~predicate:budget_predicate t in
      List.for_all (fun s -> not (budget_predicate s)) (sub_traces shrunk))

let prop_deterministic =
  QCheck.Test.make ~name:"shrinking is deterministic" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let t = violating_trace seed in
      QCheck.assume (budget_predicate t);
      let s1 = Shrink.ddmin ~predicate:budget_predicate t in
      let s2 = Shrink.ddmin ~predicate:budget_predicate t in
      String.equal (Trace.to_string s1) (Trace.to_string s2))

let test_ddmin_rejects_clean_trace () =
  let h = Heap.create () in
  let t = Trace.create () in
  Trace.record t h;
  ignore (Heap.alloc h ~addr:0 ~size:1 : Oid.t);
  match Shrink.ddmin ~predicate:budget_predicate t with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ddmin_respects_max_tests () =
  let t = violating_trace 7 in
  let tests = ref 0 in
  let predicate tr =
    incr tests;
    budget_predicate tr
  in
  let shrunk = Shrink.ddmin ~max_tests:3 ~predicate t in
  Alcotest.(check bool) "budget respected (3 + the input check)" true
    (!tests <= 4);
  Alcotest.(check bool) "result still trips" true (budget_predicate shrunk)

let () =
  Alcotest.run "audit"
    [
      ( "oracle",
        [
          Alcotest.test_case "budget trips" `Quick test_budget_trip;
          Alcotest.test_case "live-bound trips" `Quick test_live_bound_trip;
          Alcotest.test_case "only filter" `Quick test_only_filter;
          Alcotest.test_case "off is inert" `Quick test_off_is_inert;
          Alcotest.test_case "theory floor" `Quick test_theory_floor;
          Alcotest.test_case "divergence clean" `Quick test_divergence_clean;
          Alcotest.test_case "attach validation" `Quick test_attach_validation;
        ] );
      ( "triage",
        [
          Alcotest.test_case "drill trips budget" `Quick
            test_drill_trips_budget;
          Alcotest.test_case "drill bundle replays" `Quick
            test_drill_bundle_replays;
          Alcotest.test_case "drill deterministic" `Quick
            test_drill_deterministic;
          Alcotest.test_case "differential matches plain" `Quick
            test_differential_run_matches_plain;
          Alcotest.test_case "theory ships unshrunk" `Quick
            test_theory_violation_ships_unshrunk;
          Alcotest.test_case "load rejects garbage" `Quick
            test_load_rejects_garbage;
        ] );
      ( "shrink",
        [
          QCheck_alcotest.to_alcotest prop_shrunk_still_trips;
          QCheck_alcotest.to_alcotest prop_one_minimal;
          QCheck_alcotest.to_alcotest prop_deterministic;
          Alcotest.test_case "rejects clean trace" `Quick
            test_ddmin_rejects_clean_trace;
          Alcotest.test_case "max_tests" `Quick test_ddmin_respects_max_tests;
        ] );
    ]
