open Pc_heap

let check_int = Alcotest.(check int)

let test_alloc_free_basics backend () =
  let h = Heap.create ~backend () in
  let a = Heap.alloc h ~addr:0 ~size:10 in
  let b = Heap.alloc h ~addr:20 ~size:5 in
  check_int "live words" 15 (Heap.live_words h);
  check_int "live objects" 2 (Heap.live_objects h);
  check_int "allocated total" 15 (Heap.allocated_total h);
  check_int "high water" 25 (Heap.high_water h);
  check_int "addr a" 0 (Heap.addr h a);
  check_int "size b" 5 (Heap.size h b);
  Heap.free h a;
  check_int "live after free" 5 (Heap.live_words h);
  check_int "freed total" 10 (Heap.freed_total h);
  check_int "high water sticky" 25 (Heap.high_water h);
  Heap.check_invariants h

let test_overlap_rejected backend () =
  let h = Heap.create ~backend () in
  ignore (Heap.alloc h ~addr:0 ~size:10 : Oid.t);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Free_index.occupy: extent not free") (fun () ->
      ignore (Heap.alloc h ~addr:5 ~size:10 : Oid.t));
  Alcotest.check_raises "bad size" (Invalid_argument "Heap.alloc: non-positive size")
    (fun () -> ignore (Heap.alloc h ~addr:50 ~size:0 : Oid.t))

let test_double_free_rejected backend () =
  let h = Heap.create ~backend () in
  let a = Heap.alloc h ~addr:0 ~size:4 in
  Heap.free h a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Heap.get: unknown or dead object") (fun () ->
      Heap.free h a)

let test_move backend () =
  let h = Heap.create ~backend () in
  let a = Heap.alloc h ~addr:0 ~size:8 in
  let _b = Heap.alloc h ~addr:8 ~size:8 in
  Heap.move h a ~dst:32;
  check_int "moved addr" 32 (Heap.addr h a);
  check_int "moved total" 8 (Heap.moved_total h);
  check_int "hwm follows move" 40 (Heap.high_water h);
  check_int "live unchanged" 16 (Heap.live_words h);
  Heap.check_invariants h;
  (* moving onto an occupied extent must fail and roll back *)
  Alcotest.check_raises "move onto occupied"
    (Invalid_argument "Free_index.occupy: extent not free") (fun () ->
      Heap.move h a ~dst:8);
  check_int "rollback kept address" 32 (Heap.addr h a);
  Heap.check_invariants h

let test_sliding_move backend () =
  let h = Heap.create ~backend () in
  let a = Heap.alloc h ~addr:10 ~size:8 in
  (* overlapping slide down: [10,18) -> [6,14) *)
  Heap.move h a ~dst:6;
  check_int "slid" 6 (Heap.addr h a);
  check_int "moved total" 8 (Heap.moved_total h);
  Heap.check_invariants h

let test_move_noop backend () =
  let h = Heap.create ~backend () in
  let a = Heap.alloc h ~addr:4 ~size:4 in
  Heap.move h a ~dst:4;
  check_int "noop move costs nothing" 0 (Heap.moved_total h)

let test_objects_in backend () =
  let h = Heap.create ~backend () in
  let _a = Heap.alloc h ~addr:0 ~size:10 in
  let _b = Heap.alloc h ~addr:16 ~size:8 in
  let _c = Heap.alloc h ~addr:30 ~size:4 in
  let names objs = List.map (fun (o : Heap.obj) -> o.addr) objs in
  Alcotest.(check (list int)) "straddler included" [ 0; 16 ]
    (names (Heap.objects_in h ~start:5 ~stop:20));
  Alcotest.(check (list int)) "exact range" [ 16 ]
    (names (Heap.objects_in h ~start:16 ~stop:24));
  Alcotest.(check (list int)) "empty range" []
    (names (Heap.objects_in h ~start:10 ~stop:16));
  check_int "occupied words straddle" 9
    (Heap.occupied_words_in h ~start:5 ~stop:20);
  check_int "occupied words all" 22 (Heap.occupied_words_in h ~start:0 ~stop:40)

let test_events backend () =
  let h = Heap.create ~backend () in
  let log = ref [] in
  Heap.on_event h (fun e -> log := e :: !log);
  let a = Heap.alloc h ~addr:0 ~size:4 in
  Heap.move h a ~dst:8;
  Heap.free h a;
  match List.rev !log with
  | [ Heap.Alloc o1; Heap.Move m; Heap.Free o2 ] ->
      check_int "alloc addr" 0 o1.addr;
      check_int "move src" 0 m.src;
      check_int "move dst" 8 m.dst;
      check_int "free addr" 8 o2.addr
  | evs -> Alcotest.failf "unexpected event sequence (%d events)" (List.length evs)

(* Random operation scripts preserve every heap invariant, and the
   recorded trace replays to an identical heap. *)
let prop_random_ops_invariants backend =
  QCheck.Test.make
    ~name:
      (Fmt.str "random ops: invariants hold and trace replays [%a]" Backend.pp
         backend)
    ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 10 200))
    (fun (seed, steps) ->
      let st = Random.State.make [| seed |] in
      let h = Heap.create ~backend () in
      let trace = Trace.create () in
      Trace.record trace h;
      let live = ref [] in
      for _ = 1 to steps do
        match Random.State.int st 4 with
        | 0 | 1 ->
            let size = 1 + Random.State.int st 16 in
            let addr = Random.State.int st 256 in
            if Heap.is_free h ~addr ~size then
              live := Heap.alloc h ~addr ~size :: !live
        | 2 -> (
            match !live with
            | [] -> ()
            | oid :: rest ->
                Heap.free h oid;
                live := rest)
        | _ -> (
            match !live with
            | [] -> ()
            | oid :: _ ->
                let size = Heap.size h oid in
                let dst = Random.State.int st 256 in
                let cur = Heap.addr h oid in
                if
                  dst <> cur
                  && (dst + size <= cur || dst >= cur + size)
                  && Heap.is_free h ~addr:dst ~size
                then Heap.move h oid ~dst)
      done;
      Heap.check_invariants h;
      let replayed =
        match Trace.replay trace with
        | Ok r -> r
        | Error msg -> QCheck.Test.fail_reportf "replay rejected: %s" msg
      in
      Heap.check_invariants replayed;
      Heap.high_water replayed = Heap.high_water h
      && Heap.live_words replayed = Heap.live_words h
      && Heap.moved_total replayed = Heap.moved_total h
      && List.for_all
           (fun oid ->
             Heap.addr replayed oid = Heap.addr h oid
             && Heap.size replayed oid = Heap.size h oid)
           !live)

(* occupied_words_in agrees with a per-word brute force count. *)
let prop_occupied_words backend =
  QCheck.Test.make
    ~name:(Fmt.str "occupied_words_in matches brute force [%a]" Backend.pp backend)
    ~count:40
    QCheck.(triple (int_bound 100_000) (int_bound 200) (int_range 1 60))
    (fun (seed, start, len) ->
      let st = Random.State.make [| seed |] in
      let h = Heap.create ~backend () in
      for _ = 1 to 30 do
        let size = 1 + Random.State.int st 12 in
        let addr = Random.State.int st 200 in
        if Heap.is_free h ~addr ~size then
          ignore (Heap.alloc h ~addr ~size : Oid.t)
      done;
      let brute = ref 0 in
      for w = start to start + len - 1 do
        if not (Heap.is_free h ~addr:w ~size:1) then incr brute
      done;
      Heap.occupied_words_in h ~start ~stop:(start + len) = !brute)

(* The fast range queries (a straight fold over the address map) agree
   with a naive O(live) scan of the full live list, across randomised
   alloc/free/move sequences and arbitrary query windows. Guards the
   fold-based fast paths behind eviction cost estimates. *)
let prop_range_queries_vs_naive backend =
  QCheck.Test.make
    ~name:
      (Fmt.str "objects_in/occupied_words_in = naive O(live) reference [%a]"
         Backend.pp backend)
    ~count:60
    QCheck.(triple (int_bound 100_000) (int_range 20 250) (int_range 1 80))
    (fun (seed, steps, qlen) ->
      let st = Random.State.make [| seed |] in
      let h = Heap.create ~backend () in
      let live = ref [] in
      for _ = 1 to steps do
        match Random.State.int st 4 with
        | 0 | 1 ->
            let size = 1 + Random.State.int st 16 in
            let addr = Random.State.int st 300 in
            if Heap.is_free h ~addr ~size then
              live := Heap.alloc h ~addr ~size :: !live
        | 2 -> (
            match !live with
            | [] -> ()
            | oid :: rest ->
                Heap.free h oid;
                live := rest)
        | _ -> (
            match !live with
            | [] -> ()
            | oid :: _ ->
                let size = Heap.size h oid in
                let cur = Heap.addr h oid in
                let dst = Random.State.int st 300 in
                if
                  dst <> cur
                  && (dst + size <= cur || dst >= cur + size)
                  && Heap.is_free h ~addr:dst ~size
                then Heap.move h oid ~dst)
      done;
      let start = Random.State.int st 320 in
      let stop = start + qlen in
      (* Naive reference: scan every live object. *)
      let naive_objs =
        List.filter
          (fun (o : Heap.obj) -> o.addr < stop && o.addr + o.size > start)
          (Heap.live_list h)
      in
      let naive_words =
        List.fold_left
          (fun acc (o : Heap.obj) ->
            acc + (min stop (o.addr + o.size) - max start o.addr))
          0 naive_objs
      in
      Heap.objects_in h ~start ~stop = naive_objs
      && Heap.occupied_words_in h ~start ~stop = naive_words
      && Heap.fold_objects_in h ~start ~stop ~init:0 ~f:(fun n _ -> n + 1)
         = List.length naive_objs)

let suite backend =
  let name fmt = Fmt.str fmt Backend.pp backend in
  [
    ( name "unit [%a]",
      [
        Alcotest.test_case "alloc/free basics" `Quick
          (test_alloc_free_basics backend);
        Alcotest.test_case "overlap rejected" `Quick
          (test_overlap_rejected backend);
        Alcotest.test_case "double free rejected" `Quick
          (test_double_free_rejected backend);
        Alcotest.test_case "move" `Quick (test_move backend);
        Alcotest.test_case "sliding move" `Quick (test_sliding_move backend);
        Alcotest.test_case "noop move" `Quick (test_move_noop backend);
        Alcotest.test_case "objects_in" `Quick (test_objects_in backend);
        Alcotest.test_case "events" `Quick (test_events backend);
      ] );
    ( name "properties [%a]",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_random_ops_invariants backend;
          prop_occupied_words backend;
          prop_range_queries_vs_naive backend;
        ] );
  ]

let () =
  Alcotest.run "heap" (suite Backend.Imperative @ suite Backend.Reference)
