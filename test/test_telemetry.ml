module T = Pc_telemetry

(* The telemetry subsystem: exact bucket boundaries, span nesting and
   self-time accounting, registry interning/reset, the pc-telemetry/1
   snapshot schema — and the two contracts everything else leans on:
   instruments are no-ops while disabled, and the level never changes
   simulation results. *)

let with_level level f =
  T.Registry.set_level level;
  T.Registry.reset ();
  Fun.protect ~finally:(fun () -> T.Registry.set_level T.Sink.Off) f

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)

let test_bucket_boundaries () =
  let idx = T.Histogram.bucket_index in
  Alcotest.(check int) "1 in bucket 0" 0 (idx 1);
  Alcotest.(check int) "2 opens bucket 1" 1 (idx 2);
  Alcotest.(check int) "3 still bucket 1" 1 (idx 3);
  Alcotest.(check int) "4 opens bucket 2" 2 (idx 4);
  Alcotest.(check int) "7 still bucket 2" 2 (idx 7);
  Alcotest.(check int) "1023 in bucket 9" 9 (idx 1023);
  Alcotest.(check int) "1024 opens bucket 10" 10 (idx 1024);
  Alcotest.(check int) "max_int in bucket 61" 61 (idx max_int);
  (try
     ignore (idx 0);
     Alcotest.fail "expected Invalid_argument on 0"
   with Invalid_argument _ -> ());
  (* bounds: lo inclusive, hi exclusive, 2^k each *)
  Alcotest.(check (pair int int)) "bucket 0" (1, 2) (T.Histogram.bucket_bounds 0);
  Alcotest.(check (pair int int)) "bucket 5" (32, 64) (T.Histogram.bucket_bounds 5);
  let _, hi = T.Histogram.bucket_bounds (T.Histogram.nbuckets - 1) in
  Alcotest.(check int) "last bucket capped at max_int" max_int hi;
  (* every power of two opens its own bucket *)
  for k = 0 to 61 do
    Alcotest.(check int) (Printf.sprintf "2^%d" k) k (idx (1 lsl k));
    if k > 0 then
      Alcotest.(check int)
        (Printf.sprintf "2^%d - 1" k)
        (k - 1)
        (idx ((1 lsl k) - 1))
  done

let test_histogram_observe () =
  with_level T.Sink.Summary (fun () ->
      let h = T.Registry.histogram "test.hist" in
      T.Histogram.reset h;
      List.iter (T.Histogram.observe h) [ 1; 2; 3; 4; 0; -5; 1024 ];
      Alcotest.(check int) "count includes zeros" 7 (T.Histogram.count h);
      Alcotest.(check int) "two non-positive samples" 2 (T.Histogram.zeros h);
      Alcotest.(check int) "sum of positives" 1034 (T.Histogram.sum h);
      Alcotest.(check int) "min tracks raw samples" (-5) (T.Histogram.min_value h);
      Alcotest.(check int) "max" 1024 (T.Histogram.max_value h);
      let seen = ref [] in
      T.Histogram.iter_buckets h (fun k c -> seen := (k, c) :: !seen);
      Alcotest.(check (list (pair int int)))
        "non-empty buckets in index order"
        [ (0, 1); (1, 2); (2, 1); (10, 1) ]
        (List.rev !seen);
      T.Histogram.reset h;
      Alcotest.(check int) "reset" 0 (T.Histogram.count h))

(* ------------------------------------------------------------------ *)
(* The disabled path is a no-op                                       *)

let test_disabled_noop () =
  T.Registry.set_level T.Sink.Off;
  let c = T.Registry.counter "test.noop_counter" in
  let g = T.Registry.gauge "test.noop_gauge" in
  let h = T.Registry.histogram "test.noop_hist" in
  let s = T.Registry.span "test.noop_span" in
  T.Counter.reset c;
  T.Gauge.reset g;
  T.Histogram.reset h;
  T.Span.reset s;
  T.Counter.incr c;
  T.Counter.add c 42;
  T.Gauge.set g 3.14;
  T.Histogram.observe h 7;
  T.Span.time s (fun () -> ());
  Alcotest.(check int) "counter untouched" 0 (T.Counter.value c);
  Alcotest.(check bool) "gauge unset" false (T.Gauge.is_set g);
  Alcotest.(check int) "histogram empty" 0 (T.Histogram.count h);
  Alcotest.(check int) "span uncounted" 0 (T.Span.count s)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)

let busy_wait seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

let test_span_nesting () =
  with_level T.Sink.Summary (fun () ->
      let outer = T.Registry.span "test.outer" in
      let inner = T.Registry.span "test.inner" in
      T.Span.reset outer;
      T.Span.reset inner;
      T.Span.reset_stack ();
      Alcotest.(check int) "stack empty" 0 (T.Span.depth ());
      T.Span.time outer (fun () ->
          Alcotest.(check int) "outer on stack" 1 (T.Span.depth ());
          T.Span.time inner (fun () ->
              Alcotest.(check int) "inner nested" 2 (T.Span.depth ());
              busy_wait 0.002);
          busy_wait 0.002);
      Alcotest.(check int) "stack drained" 0 (T.Span.depth ());
      Alcotest.(check int) "outer counted" 1 (T.Span.count outer);
      Alcotest.(check int) "inner counted" 1 (T.Span.count inner);
      Alcotest.(check bool) "inner inside outer" true
        (T.Span.total inner <= T.Span.total outer);
      (* self = total minus children, so outer self + inner total must
         reconstruct outer total *)
      Alcotest.(check (float 1e-4))
        "self excludes nested time" (T.Span.total outer)
        (T.Span.self outer +. T.Span.total inner);
      Alcotest.(check bool) "outer self is the busy-wait" true
        (T.Span.self outer >= 0.001))

let test_span_exception_safe () =
  with_level T.Sink.Summary (fun () ->
      let s = T.Registry.span "test.raising" in
      T.Span.reset s;
      T.Span.reset_stack ();
      (try T.Span.time s (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "frame popped on raise" 0 (T.Span.depth ());
      Alcotest.(check int) "interval still recorded" 1 (T.Span.count s))

let test_span_mismatched_exit () =
  with_level T.Sink.Summary (fun () ->
      let s = T.Registry.span "test.mismatch" in
      T.Span.reset s;
      T.Span.reset_stack ();
      (* exit without enter: dropped silently *)
      T.Span.exit_ s;
      Alcotest.(check int) "nothing recorded" 0 (T.Span.count s);
      Alcotest.(check int) "stack untouched" 0 (T.Span.depth ()))

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)

let test_registry_intern () =
  with_level T.Sink.Summary (fun () ->
      let a = T.Registry.counter "test.interned" in
      let b = T.Registry.counter "test.interned" in
      Alcotest.(check bool) "same instrument" true (a == b);
      T.Counter.reset a;
      T.Counter.incr a;
      Alcotest.(check int) "shared state" 1 (T.Counter.value b))

let test_registry_reset () =
  with_level T.Sink.Summary (fun () ->
      let c = T.Registry.counter "test.reset_counter" in
      let g = T.Registry.gauge "test.reset_gauge" in
      T.Counter.add c 5;
      T.Gauge.set g 1.0;
      T.Registry.reset ();
      Alcotest.(check int) "counter zeroed" 0 (T.Counter.value c);
      Alcotest.(check bool) "gauge cleared" false (T.Gauge.is_set g);
      (* zero instruments are omitted from snapshots *)
      let s = T.Registry.snapshot () in
      Alcotest.(check (list (pair string int))) "empty capture" [] s.counters;
      Alcotest.(check int) "no gauges" 0 (List.length s.gauges))

(* ------------------------------------------------------------------ *)
(* Snapshot schema                                                    *)

let test_snapshot_roundtrip () =
  with_level T.Sink.Full (fun () ->
      T.Counter.add (T.Registry.counter "test.rt_counter") 17;
      T.Gauge.set (T.Registry.gauge "test.rt_gauge") 2.5;
      let h = T.Registry.histogram "test.rt_hist" in
      List.iter (T.Histogram.observe h) [ 1; 5; 0 ];
      T.Span.time (T.Registry.span "test.rt_span") (fun () -> busy_wait 0.001);
      let s = T.Registry.snapshot () in
      Alcotest.(check string) "level recorded" "full" s.level;
      match T.Snapshot.of_json (T.Snapshot.to_json s) with
      | Ok s' ->
          Alcotest.(check bool) "JSON round trip is exact" true (s = s')
      | Error e -> Alcotest.failf "round trip failed: %s" e)

let test_snapshot_rejects_bad_schema () =
  let j =
    Pc_json.Json.Obj
      [
        ("schema", Pc_json.Json.String "pc-telemetry/999");
        ("level", Pc_json.Json.String "off");
      ]
  in
  Alcotest.(check bool) "version skew rejected" true
    (Result.is_error (T.Snapshot.of_json j));
  Alcotest.(check bool) "non-object rejected" true
    (Result.is_error (T.Snapshot.of_json (Pc_json.Json.String "nope")))

let test_snapshot_csv () =
  with_level T.Sink.Summary (fun () ->
      T.Counter.add (T.Registry.counter "test.csv_counter") 3;
      T.Gauge.set (T.Registry.gauge "test.csv_gauge") 0.5;
      let s = T.Registry.snapshot () in
      let csv = T.Snapshot.to_csv s in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check string) "header" T.Snapshot.csv_header (List.hd lines);
      Alcotest.(check int) "one row per instrument"
        (List.length s.counters + List.length s.gauges
        + List.length s.histograms + List.length s.spans)
        (List.length lines - 1))

(* ------------------------------------------------------------------ *)
(* Telemetry only observes                                            *)

let run_churn_at level seed =
  T.Registry.set_level level;
  T.Registry.reset ();
  Fun.protect
    ~finally:(fun () -> T.Registry.set_level T.Sink.Off)
    (fun () -> Helpers.run_churn ~c:6.0 "compacting" seed)

let prop_full_off_identical =
  QCheck.Test.make ~name:"results bit-identical across telemetry levels"
    ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      let off = run_churn_at T.Sink.Off seed in
      let summary = run_churn_at T.Sink.Summary seed in
      let full = run_churn_at T.Sink.Full seed in
      off = summary && off = full)

let prop_cache_payload_identical =
  (* The cache entry body (the serialised outcome) must not depend on
     the telemetry level — a full-telemetry sweep and an off sweep
     produce byte-identical cache entries. *)
  QCheck.Test.make ~name:"cache payloads identical across levels" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      let payload level =
        let o = run_churn_at level seed in
        Digest.string (Pc_exec.Json.to_string (Pc_exec.Cache.outcome_to_json o))
      in
      payload T.Sink.Off = payload T.Sink.Full)

let test_overhead_smoke () =
  (* Loose smoke only — the real measurement lives in bench/ and
     EXPERIMENTS.md. Summary-level telemetry must not blow up a run. *)
  let time_at level =
    let best = ref infinity in
    for _ = 1 to 3 do
      T.Registry.set_level level;
      T.Registry.reset ();
      let t0 = Unix.gettimeofday () in
      ignore (Helpers.run_churn ~c:8.0 "first-fit" 3);
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    T.Registry.set_level T.Sink.Off;
    !best
  in
  let off = time_at T.Sink.Off in
  let summary = time_at T.Sink.Summary in
  Alcotest.(check bool)
    (Printf.sprintf "summary %.4fs within 5x of off %.4fs" summary off)
    true
    (summary <= (off *. 5.0) +. 0.05)

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
        ] );
      ("disabled", [ Alcotest.test_case "no-op" `Quick test_disabled_noop ]);
      ( "span",
        [
          Alcotest.test_case "nesting + self time" `Quick test_span_nesting;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
          Alcotest.test_case "mismatched exit" `Quick test_span_mismatched_exit;
        ] );
      ( "registry",
        [
          Alcotest.test_case "interning" `Quick test_registry_intern;
          Alcotest.test_case "reset" `Quick test_registry_reset;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "json round trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "bad schema rejected" `Quick
            test_snapshot_rejects_bad_schema;
          Alcotest.test_case "csv shape" `Quick test_snapshot_csv;
        ] );
      ( "observation only",
        List.map QCheck_alcotest.to_alcotest
          [ prop_full_off_identical; prop_cache_payload_identical ]
        @ [ Alcotest.test_case "overhead smoke" `Quick test_overhead_smoke ] );
    ]
