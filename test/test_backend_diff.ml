open Pc_heap

(* Differential suite pinning the imperative heap substrate to the
   persistent reference backend. Every observable — per-op results
   (including failure messages), placements, frontier, gap list, fit
   queries, range queries, metrics snapshots — must be bit-identical
   between [Backend.Imperative] and [Backend.Reference] heaps driven by
   the same operation sequence. A second layer replays the paper's
   adversaries through every registered manager on both backends and
   compares the full outcomes. *)

let fail fmt = QCheck.Test.fail_reportf fmt

let obj_key (o : Heap.obj) = (Oid.to_int o.oid, o.addr, o.size)

let check_same what pp a b =
  if a <> b then fail "%s differs:@ imperative %a@ reference %a" what pp a pp b

let pp_pair_list =
  Fmt.Dump.list (Fmt.Dump.pair Fmt.int Fmt.int)

let pp_opt = Fmt.Dump.option Fmt.int

let pp_fit ppf = function
  | Free_index.Gap a -> Fmt.pf ppf "Gap %d" a
  | Free_index.Tail a -> Fmt.pf ppf "Tail %d" a

let pp_triple_list =
  Fmt.Dump.list (fun ppf (o, a, s) -> Fmt.pf ppf "(#%d,%d,%d)" o a s)

(* Compare every observable of the two heaps. *)
let check_state hi hr =
  check_same "live_list" pp_triple_list
    (List.map obj_key (Heap.live_list hi))
    (List.map obj_key (Heap.live_list hr));
  check_same "high_water" Fmt.int (Heap.high_water hi) (Heap.high_water hr);
  check_same "live_words" Fmt.int (Heap.live_words hi) (Heap.live_words hr);
  check_same "live_objects" Fmt.int (Heap.live_objects hi)
    (Heap.live_objects hr);
  check_same "allocated_total" Fmt.int
    (Heap.allocated_total hi)
    (Heap.allocated_total hr);
  check_same "moved_total" Fmt.int (Heap.moved_total hi) (Heap.moved_total hr);
  check_same "freed_total" Fmt.int (Heap.freed_total hi) (Heap.freed_total hr);
  let fi = Heap.free_index hi and fr = Heap.free_index hr in
  check_same "frontier" Fmt.int (Free_index.frontier fi)
    (Free_index.frontier fr);
  check_same "gap_count" Fmt.int (Free_index.gap_count fi)
    (Free_index.gap_count fr);
  check_same "free_below_frontier" Fmt.int
    (Free_index.free_below_frontier fi)
    (Free_index.free_below_frontier fr);
  check_same "largest_gap" Fmt.int (Free_index.largest_gap fi)
    (Free_index.largest_gap fr);
  check_same "gaps" pp_pair_list (Free_index.gaps fi) (Free_index.gaps fr);
  let si = Metrics.snapshot hi and sr = Metrics.snapshot hr in
  if si <> sr then
    fail "metrics snapshot differs:@ imperative %a@ reference %a" Metrics.pp si
      Metrics.pp sr

(* Compare the fit/range query surface at randomly drawn arguments. *)
let check_queries st hi hr =
  let fi = Heap.free_index hi and fr = Heap.free_index hr in
  let size = 1 + Random.State.int st 32 in
  let align = 1 lsl Random.State.int st 5 in
  let from = Random.State.int st 512 in
  let k = Random.State.int st 8 in
  check_same "first_fit" pp_fit
    (Free_index.first_fit fi ~size)
    (Free_index.first_fit fr ~size);
  check_same "first_fit_gap" pp_opt
    (Free_index.first_fit_gap fi ~size)
    (Free_index.first_fit_gap fr ~size);
  check_same "first_fit_from" pp_opt
    (Free_index.first_fit_from fi ~from ~size)
    (Free_index.first_fit_from fr ~from ~size);
  check_same "best_fit_gap" pp_opt
    (Free_index.best_fit_gap fi ~size)
    (Free_index.best_fit_gap fr ~size);
  check_same "worst_fit_gap" pp_opt
    (Free_index.worst_fit_gap fi ~size)
    (Free_index.worst_fit_gap fr ~size);
  check_same "first_aligned_fit" pp_fit
    (Free_index.first_aligned_fit fi ~size ~align)
    (Free_index.first_aligned_fit fr ~size ~align);
  check_same "first_aligned_fit_gap" pp_opt
    (Free_index.first_aligned_fit_gap fi ~size ~align)
    (Free_index.first_aligned_fit_gap fr ~size ~align);
  check_same "first_aligned_fit_from" pp_opt
    (Free_index.first_aligned_fit_from fi ~from ~size ~align)
    (Free_index.first_aligned_fit_from fr ~from ~size ~align);
  check_same "largest_gaps" pp_pair_list
    (Free_index.largest_gaps fi ~k)
    (Free_index.largest_gaps fr ~k);
  let start = Random.State.int st 512 in
  let stop = start + 1 + Random.State.int st 96 in
  check_same "objects_in" pp_triple_list
    (List.map obj_key (Heap.objects_in hi ~start ~stop))
    (List.map obj_key (Heap.objects_in hr ~start ~stop));
  check_same "occupied_words_in" Fmt.int
    (Heap.occupied_words_in hi ~start ~stop)
    (Heap.occupied_words_in hr ~start ~stop);
  check_same "fold_objects_in count" Fmt.int
    (Heap.fold_objects_in hi ~start ~stop ~init:0 ~f:(fun n _ -> n + 1))
    (Heap.fold_objects_in hr ~start ~stop ~init:0 ~f:(fun n _ -> n + 1))

(* Apply the same (possibly invalid) operation to both heaps and demand
   the same result — same oid on success, same exception message on
   failure. *)
let both what f g =
  let attempt h =
    match f h with
    | v -> Ok v
    | exception Invalid_argument m -> Error m
  in
  let ri = attempt (fst g) and rr = attempt (snd g) in
  match (ri, rr) with
  | Ok a, Ok b -> Some (a, b)
  | Error a, Error b ->
      if a <> b then fail "%s failure messages differ: %S vs %S" what a b;
      None
  | Ok _, Error m -> fail "%s: imperative succeeded, reference raised %S" what m
  | Error m, Ok _ -> fail "%s: imperative raised %S, reference succeeded" what m

let prop_lockstep =
  QCheck.Test.make
    ~name:"imperative backend = reference backend on random op sequences"
    ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_range 30 300))
    (fun (seed, steps) ->
      let st = Random.State.make [| seed |] in
      let hi = Heap.create ~backend:Backend.Imperative () in
      let hr = Heap.create ~backend:Backend.Reference () in
      let pair = (hi, hr) in
      let live = ref [] in
      for step = 1 to steps do
        (match Random.State.int st 6 with
        | 0 | 1 ->
            (* Allocation at an arbitrary address — may collide with a
               live object, in which case both backends must reject it
               with the same message and consume no oid. *)
            let size = 1 + Random.State.int st 16 in
            let addr = Random.State.int st 400 in
            (match
               both "alloc" (fun h -> Heap.alloc h ~addr ~size) pair
             with
            | Some (a, b) ->
                if Oid.to_int a <> Oid.to_int b then
                  fail "alloc returned #%d vs #%d" (Oid.to_int a)
                    (Oid.to_int b);
                live := a :: !live
            | None -> ())
        | 2 -> (
            match !live with
            | [] -> ()
            | oid :: rest ->
                ignore (both "free" (fun h -> Heap.free h oid) pair : (unit * unit) option);
                live := rest)
        | 3 -> (
            (* Move to an arbitrary destination, overlapping slides and
               collisions included; failures must roll back identically
               on both sides. *)
            match !live with
            | [] -> ()
            | oid :: _ ->
                let dst = Random.State.int st 400 in
                ignore
                  (both "move" (fun h -> Heap.move h oid ~dst) pair
                    : (unit * unit) option))
        | 4 -> check_queries st hi hr
        | _ ->
            (* Occasional double free / dangling access. *)
            let dead = Oid.of_int (Random.State.int st 64) in
            if not (List.exists (fun o -> Oid.to_int o = Oid.to_int dead) !live)
            then
              ignore
                (both "get dead" (fun h -> ignore (Heap.get h dead : Heap.obj)) pair
                  : (unit * unit) option));
        if step land 15 = 0 then check_state hi hr
      done;
      check_state hi hr;
      check_queries st hi hr;
      Heap.check_invariants hi;
      Heap.check_invariants hr;
      true)

(* End-to-end determinism: the paper's adversaries, driven through
   every registered manager, must report identical outcomes on both
   backends. *)
let strip_names (o : Pc_adversary.Runner.outcome) =
  (o.m, o.n, o.c, o.hs, o.allocated, o.moved, o.freed, o.final_live,
   o.compliant)

let test_pf_outcomes_agree () =
  List.iter
    (fun key ->
      let run backend =
        (Pc_core.Pc.run_pf ~backend ~m:(1 lsl 12) ~n:(1 lsl 6) ~c:8.0
           ~manager:key ())
          .outcome
      in
      let oi = run Backend.Imperative and orf = run Backend.Reference in
      if strip_names oi <> strip_names orf then
        Alcotest.failf "PF vs %s: backends disagree:@ %a@ %a" key
          Pc_adversary.Runner.pp_outcome oi Pc_adversary.Runner.pp_outcome orf)
    (Pc_manager.Registry.keys ())

let test_robson_outcomes_agree () =
  List.iter
    (fun key ->
      let run backend =
        (Pc_core.Pc.run_robson ~backend ~m:(1 lsl 10) ~n:(1 lsl 4)
           ~manager:key ())
          .outcome
      in
      let oi = run Backend.Imperative and orf = run Backend.Reference in
      if strip_names oi <> strip_names orf then
        Alcotest.failf "Robson vs %s: backends disagree:@ %a@ %a" key
          Pc_adversary.Runner.pp_outcome oi Pc_adversary.Runner.pp_outcome orf)
    (Pc_manager.Registry.keys ())

let () =
  Alcotest.run "backend-diff"
    [
      ( "lockstep",
        [ QCheck_alcotest.to_alcotest ~long:true prop_lockstep ] );
      ( "end-to-end",
        [
          Alcotest.test_case "PF outcomes agree across backends" `Quick
            test_pf_outcomes_agree;
          Alcotest.test_case "Robson outcomes agree across backends" `Quick
            test_robson_outcomes_agree;
        ] );
    ]
