open Pc_adversary

(* End-to-end checks of the paper's program PF: configuration rules,
   the potential-function invariants of Claim 4.16 (u never decreases;
   u lower-bounds the heap size), budget compliance, and the Theorem 1
   bound itself at a scale where discretisation noise is small. *)

let test_config_validation () =
  Alcotest.check_raises "needs M > n"
    (Invalid_argument "Pf.config: need M > n") (fun () ->
      ignore (Pf.config ~m:64 ~n:64 ~c:8.0 ()));
  Alcotest.check_raises "needs room for stage 2"
    (Invalid_argument "Pf.config: need 2l + 2 <= log2 n (stage 2 must exist)")
    (fun () -> ignore (Pf.config ~ell:4 ~m:4096 ~n:64 ~c:64.0 ()));
  Alcotest.check_raises "needs l >= 1"
    (Invalid_argument "Pf.config: need l >= 1") (fun () ->
      ignore (Pf.config ~ell:0 ~m:4096 ~n:64 ~c:8.0 ()));
  let cfg = Pf.config ~m:(1 lsl 14) ~n:(1 lsl 6) ~c:8.0 () in
  Alcotest.(check bool) "default ell valid" true (cfg.ell >= 1);
  Alcotest.(check bool) "x in [0,1]" true (cfg.x >= 0.0 && cfg.x <= 1.0)

let run_with_observer ~m ~n ~c ~manager_key =
  let observations = ref [] in
  let observe o = observations := o :: !observations in
  let cfg, program = Pf.program ~observe ~m ~n ~c () in
  let manager = Pc_manager.Registry.construct_exn manager_key in
  let outcome = Runner.run ~c ~program ~manager () in
  (cfg, outcome, List.rev !observations)

let test_potential_monotone_and_bounds_hs () =
  List.iter
    (fun manager_key ->
      let _, outcome, obs =
        run_with_observer ~m:(1 lsl 14) ~n:(1 lsl 7) ~c:8.0 ~manager_key
      in
      Alcotest.(check bool) (manager_key ^ ": has observations") true
        (List.length obs >= 2);
      let rec check_monotone = function
        | (a : Pf.observation) :: (b : Pf.observation) :: rest ->
            Alcotest.(check bool)
              (Fmt.str "%s: u monotone at step %d" manager_key b.step)
              true
              (b.potential >= a.potential);
            check_monotone (b :: rest)
        | [ _ ] | [] -> ()
      in
      check_monotone obs;
      List.iter
        (fun (o : Pf.observation) ->
          Alcotest.(check bool)
            (Fmt.str "%s: u <= HS at step %d" manager_key o.step)
            true
            (o.potential <= o.high_water);
          Alcotest.(check bool)
            (Fmt.str "%s: live <= M at step %d" manager_key o.step)
            true
            (o.live_words <= 1 lsl 14))
        obs;
      Alcotest.(check bool) (manager_key ^ ": compliant") true
        outcome.compliant)
    [ "compacting"; "first-fit"; "improved-ac"; "bp-simple" ]

let test_theorem1_bound_holds_at_scale () =
  (* At M = 2^16, n = 2^8 the discretisation slack is ~n*steps/M < 2%;
     measured HS must reach the Theorem 1 floor against every
     compaction-capable manager. *)
  List.iter
    (fun manager_key ->
      List.iter
        (fun c ->
          let cfg, outcome, _ =
            run_with_observer ~m:(1 lsl 16) ~n:(1 lsl 8) ~c ~manager_key
          in
          Alcotest.(check bool)
            (Fmt.str "%s: HS/M %.3f >= h %.3f at c=%g" manager_key
               outcome.hs_over_m cfg.h c)
            true
            (outcome.hs_over_m >= cfg.h *. 0.98))
        [ 8.0; 16.0; 32.0 ])
    [ "compacting"; "improved-ac" ]

let test_unlimited_compaction_stays_low () =
  (* The same workload against the (c+1)M manager with c=4 stays well
     below the c=16 lower bound — fragmentation is the budget's fault. *)
  let _, program = Pf.program ~m:(1 lsl 14) ~n:(1 lsl 7) ~c:4.0 () in
  let o =
    Runner.run ~c:4.0 ~program ~manager:(Pc_manager.Bp_simple.make ()) ()
  in
  Alcotest.(check bool) "bp-simple within (c+1)M" true (o.hs_over_m <= 5.0)

let test_more_budget_less_fragmentation () =
  (* Directional: against the same manager family, shrinking the
     budget (growing c) increases the forced heap size. *)
  let hs c =
    let _, outcome, _ =
      run_with_observer ~m:(1 lsl 15) ~n:(1 lsl 7) ~c ~manager_key:"compacting"
    in
    outcome.hs_over_m
  in
  let h8 = hs 8.0 and h32 = hs 32.0 in
  Alcotest.(check bool) (Fmt.str "HS/M grows with c (%.3f < %.3f)" h8 h32)
    true (h8 < h32)

let test_ghosts_never_exceed_m () =
  (* live + ghost never exceeds M (the view's refill accounting). *)
  let seen_bad = ref false in
  let observe (o : Pf.observation) =
    if o.present_words > 1 lsl 14 then seen_bad := true
  in
  let _, program = Pf.program ~observe ~m:(1 lsl 14) ~n:(1 lsl 7) ~c:8.0 () in
  ignore
    (Runner.run ~c:8.0 ~program
       ~manager:(Pc_manager.Compacting.make ())
       ());
  Alcotest.(check bool) "present <= M throughout" false !seen_bad

let test_observation_sequence () =
  (* observations: one stage-1 snapshot at step 2l-1, then one per
     stage-2 step 2l .. log n - 2 *)
  let m = 1 lsl 13 and n = 1 lsl 7 in
  let _, _, obs = run_with_observer ~m ~n ~c:8.0 ~manager_key:"first-fit" in
  let cfg = Pf.config ~m ~n ~c:8.0 () in
  let expected =
    ((2 * cfg.ell) - 1)
    :: List.init
         (Pc_bounds.Logf.log2_exact n - 2 - (2 * cfg.ell) + 1)
         (fun i -> (2 * cfg.ell) + i)
  in
  Alcotest.(check (list int))
    "step sequence" expected
    (List.map (fun (o : Pf.observation) -> o.step) obs)

let test_claim_4_16_audit () =
  (* The potential function must grow by >= 3/4 |o| - 2^l q(o) at
     every stage-2 allocation (Claim 4.16), against every manager that
     could plausibly violate it. [audit:true] raises on violation. *)
  List.iter
    (fun (key, c) ->
      let _, program = Pf.program ~audit:true ~m:(1 lsl 13) ~n:(1 lsl 6) ~c () in
      let manager = Pc_manager.Registry.construct_exn key in
      let o = Runner.run ~c ~program ~manager () in
      Alcotest.(check bool) (key ^ " audited run compliant") true o.compliant)
    [
      ("compacting", 8.0);
      ("compacting", 16.0);
      ("improved-ac", 16.0);
      ("bp-simple", 8.0);
      ("first-fit", 8.0);
    ]

let test_runs_against_every_manager () =
  (* PF must complete and stay consistent against every registered
     manager (heap invariants are checked by the runner at the end; the
     driver enforces the live bound throughout). *)
  List.iter
    (fun (e : Pc_manager.Registry.entry) ->
      let _, program = Pf.program ~m:(1 lsl 12) ~n:(1 lsl 6) ~c:8.0 () in
      let o = Runner.run ~c:8.0 ~program ~manager:(e.construct ()) () in
      Alcotest.(check bool) (e.key ^ " compliant") true o.compliant)
    (Pc_manager.Registry.entries ())

let () =
  Alcotest.run "pf"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "observation sequence" `Quick
            test_observation_sequence;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "potential monotone, bounds HS" `Quick
            test_potential_monotone_and_bounds_hs;
          Alcotest.test_case "ghost accounting" `Quick
            test_ghosts_never_exceed_m;
          Alcotest.test_case "Claim 4.16 audit" `Quick test_claim_4_16_audit;
          Alcotest.test_case "all managers" `Quick
            test_runs_against_every_manager;
        ] );
      ( "theorem 1",
        [
          Alcotest.test_case "bound holds at scale" `Slow
            test_theorem1_bound_holds_at_scale;
          Alcotest.test_case "unlimited compaction stays low" `Quick
            test_unlimited_compaction_stays_low;
          Alcotest.test_case "budget monotonicity" `Quick
            test_more_budget_less_fragmentation;
        ] );
    ]
