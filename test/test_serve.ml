(* The serve daemon: wire framing and protocol codecs must be total
   against arbitrary peers, the lockfile must fail fast on a live
   foreign holder and break stale ones, the supervision tree must
   restart killed workers without losing or duplicating a job, and a
   daemon killed at an arbitrary point must come back serving
   byte-identical results with every job completed exactly once. *)

open Pc_exec
open Pc_serve
module Json = Pc_exec.Json

let replace_all ~sub ~by s =
  let n = String.length sub in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string buf by;
      i := !i + n
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pc_serve_test_%d_%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir dir 0o755;
    dir

let eventually ?(timeout = 5.) ?(poll = 0.01) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf poll;
      go ()
    end
  in
  go ()

(* Cheap, deterministic, pairwise-distinct specs: distinct seeds give
   distinct digests, so submission ids and journal lines never
   collide across tests. *)
let churn_spec seed =
  Spec.random_churn ~seed ~churn:160 ~c:8.0 ~manager:"first-fit"
    ~m:(1 lsl 9)
    ~dist:(Spec.Pow2 { lo_log = 0; hi_log = 3 })
    ~target_live:(1 lsl 8) ()

let specs_from base count = List.init count (fun k -> churn_spec (base + k))

(* What an uninterrupted local sweep computes — the bytes every serve
   path must reproduce. *)
let reference specs =
  let results, summary = Engine.run ~jobs:1 specs in
  if summary.Engine.failed > 0 then
    Alcotest.failf "reference sweep failed %d job(s)" summary.Engine.failed;
  List.map
    (fun (r : Engine.job_result) -> (Spec.key r.Engine.spec, r.Engine.result))
    results

let sample_outcome =
  lazy (Engine.outcome_exn (Engine.execute (churn_spec 1)))

(* ------------------------------------------------------------------ *)
(* Wire framing                                                       *)

let header n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  b

let write_bytes fd b = ignore (Unix.write fd b 0 (Bytes.length b))

let test_wire_round_trip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let payloads = [ "hello"; ""; String.make 50_000 'x'; "{\"v\":1}" ] in
  List.iter (Wire.send a) payloads;
  List.iter
    (fun p ->
      match Wire.recv b with
      | Some got -> Alcotest.(check string) "frame round-trips" p got
      | None -> Alcotest.fail "unexpected clean close")
    payloads;
  Unix.close a;
  Alcotest.(check bool)
    "EOF at a frame boundary is a clean close" true (Wire.recv b = None);
  Unix.close b

let test_wire_eof_mid_frame () =
  (* EOF inside the header... *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  write_bytes a (Bytes.sub (header 12) 0 2);
  Unix.close a;
  (match Wire.recv b with
  | exception Wire.Closed -> ()
  | _ -> Alcotest.fail "mid-header EOF must raise Closed");
  Unix.close b;
  (* ... and inside the payload are both mid-frame errors. *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  write_bytes a (header 10);
  write_bytes a (Bytes.of_string "abc");
  Unix.close a;
  (match Wire.recv b with
  | exception Wire.Closed -> ()
  | _ -> Alcotest.fail "mid-payload EOF must raise Closed");
  Unix.close b

let test_wire_oversized () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  write_bytes a (header (Wire.max_frame + 1));
  (match Wire.recv b with
  | exception Wire.Oversized n ->
      Alcotest.(check int) "announced length reported" (Wire.max_frame + 1) n
  | _ -> Alcotest.fail "oversized frame must be refused");
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Protocol codecs                                                    *)

let test_request_round_trip () =
  let requests =
    [
      Protocol.Submit
        {
          tenant = "alice";
          specs = specs_from 10 2;
          retries = 2;
          timeout = Some 0.25;
        };
      Protocol.Submit
        { tenant = "b0b_.-"; specs = specs_from 20 1; retries = 0; timeout = None };
      Protocol.Status { tenant = "t"; id = "deadbeef" };
      Protocol.Cancel { tenant = "t"; id = "deadbeef" };
      Protocol.Results { tenant = "t"; id = "deadbeef" };
      Protocol.Health;
      Protocol.Drain;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Ok req' ->
          Alcotest.(check bool) "request round-trips" true (req = req')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    requests

let test_response_round_trip () =
  let progress =
    { Protocol.total = 5; completed = 3; failed = 1; skipped = 0 }
  in
  let responses =
    [
      Protocol.Accepted { id = "abc"; total = 7; known = true };
      Protocol.Retry_after { seconds = 1.25; reason = "queue full" };
      Protocol.Status_of { id = "abc"; state = "running"; progress };
      Protocol.Results_of
        {
          id = "abc";
          results =
            [ ("k1", Ok (Lazy.force sample_outcome)); ("k2", Error "boom") ];
        };
      Protocol.Cancelled { id = "abc"; skipped = 4 };
      Protocol.Health_of
        {
          Protocol.pending = 3;
          in_flight = 2;
          workers = 4;
          restarts = 1;
          tenants = 2;
          submissions = 9;
          jobs_done = 40;
          cache_hits = 11;
          executed = 29;
          draining = false;
        };
      Protocol.Draining;
      Protocol.Refused { code = "bad-tenant"; message = "nope" };
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_string (Protocol.response_to_string resp) with
      | Ok resp' ->
          Alcotest.(check bool) "response round-trips" true (resp = resp')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    responses

let test_garbage_rejected () =
  let bad_requests =
    [
      "";
      "not json";
      "[1,2]";
      "{}";
      "{\"v\":2,\"op\":\"health\"}";
      "{\"v\":1}";
      "{\"v\":1,\"op\":\"nope\"}";
      "{\"v\":1,\"op\":\"submit\",\"tenant\":\"t\",\"specs\":[]}";
      "{\"v\":1,\"op\":\"submit\",\"tenant\":\"t\",\"specs\":[{\"bogus\":1}]}";
      "{\"v\":1,\"op\":\"status\",\"tenant\":\"t\"}";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "request %S rejected" s)
        true
        (Result.is_error (Protocol.request_of_string s)))
    bad_requests;
  let bad_responses =
    [ ""; "{\"v\":1}"; "{\"v\":1,\"type\":\"zzz\"}"; "{\"v\":1,\"type\":\"accepted\"}" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "response %S rejected" s)
        true
        (Result.is_error (Protocol.response_of_string s)))
    bad_responses

let test_tenant_names () =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%S accepted" name)
        true (Protocol.tenant_ok name))
    [ "alice"; "team-7"; "a.b_c"; String.make 64 'x' ];
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" name)
        false (Protocol.tenant_ok name))
    [ ""; "."; ".."; "a/b"; "a b"; "p$q"; String.make 65 'x' ]

(* ------------------------------------------------------------------ *)
(* Store: durable manifests                                           *)

let test_store_round_trip () =
  let state_dir = Filename.concat (fresh_dir ()) "state" in
  let specs = specs_from 30 2 in
  let m = Store.make ~tenant:"alice" ~specs ~retries:2 ~timeout:(Some 1.5) in
  Alcotest.(check string)
    "manifest id is the sweep digest" (Store.submission_id specs) m.Store.id;
  Store.save ~state_dir m;
  match Store.load_all ~state_dir with
  | [ m' ] -> Alcotest.(check bool) "manifest round-trips" true (m = m')
  | ms -> Alcotest.failf "expected 1 manifest, got %d" (List.length ms)

let test_store_skips_tampered () =
  let state_dir = Filename.concat (fresh_dir ()) "state" in
  let good = Store.make ~tenant:"alice" ~specs:(specs_from 40 2) ~retries:0 ~timeout:None in
  Store.save ~state_dir good;
  let dir =
    List.fold_left Filename.concat state_dir [ "tenants"; "alice"; "submissions" ]
  in
  (* Unparseable garbage... *)
  Out_channel.with_open_bin (Filename.concat dir "zz.json") (fun oc ->
      Out_channel.output_string oc "not json");
  (* ... and a tampered manifest: edit the specs so the embedded id no
     longer matches the content digest. *)
  let good_path = Filename.concat dir (good.Store.id ^ ".json") in
  let content = In_channel.with_open_bin good_path In_channel.input_all in
  let tampered = replace_all ~sub:"first-fit" ~by:"best-fit" content in
  Out_channel.with_open_bin (Filename.concat dir "tampered.json") (fun oc ->
      Out_channel.output_string oc tampered);
  match Store.load_all ~state_dir with
  | [ m ] ->
      Alcotest.(check string) "only the intact manifest loads" good.Store.id m.Store.id
  | ms -> Alcotest.failf "expected 1 manifest, got %d" (List.length ms)

(* ------------------------------------------------------------------ *)
(* Lockfile                                                           *)

let test_lockfile_self_stale () =
  let path = Filename.concat (fresh_dir ()) "serve.lock" in
  let l1 = Lockfile.acquire path in
  Alcotest.(check bool) "lock file exists" true (Sys.file_exists path);
  (* Our own PID in a lock counts as stale (a previous incarnation in
     this process image cannot be an independent live owner) — this is
     exactly what lets an in-process restart drill recover. *)
  let l2 = Lockfile.acquire path in
  Lockfile.release l2;
  Alcotest.(check bool) "released" true (not (Sys.file_exists path));
  Lockfile.release l1 (* never raises, even with the file gone *)

let test_lockfile_live_and_dead () =
  let path = Filename.concat (fresh_dir ()) "serve.lock" in
  let pid =
    Unix.create_process "sleep" [| "sleep"; "30" |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (string_of_int pid ^ "\n"));
      (* A live foreign holder must refuse us... *)
      (match Lockfile.acquire path with
      | exception Lockfile.Locked { pid = p; _ } ->
          Alcotest.(check int) "holder pid reported" pid p
      | l ->
          Lockfile.release l;
          Alcotest.fail "acquired over a live foreign holder");
      (* ... and once it is dead and reaped, the lock is stale. *)
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      let l = Lockfile.acquire path in
      Alcotest.(check string) "stale lock broken and reacquired" path (Lockfile.path l);
      Lockfile.release l)

(* ------------------------------------------------------------------ *)
(* Supervision tree                                                   *)

let test_supervisor_runs_jobs () =
  let m = Mutex.create () in
  let finished = ref [] in
  let pool =
    Supervisor.create ~workers:2 (fun j ->
        Mutex.lock m;
        finished := j :: !finished;
        Mutex.unlock m)
  in
  for j = 0 to 19 do
    Supervisor.push pool j
  done;
  Supervisor.drain pool;
  Supervisor.shutdown pool;
  Alcotest.(check (list int))
    "every job ran exactly once"
    (List.init 20 Fun.id)
    (List.sort compare !finished);
  Alcotest.(check int) "no restarts" 0 (Supervisor.restarts pool);
  Alcotest.(check bool) "not aborted" false (Supervisor.aborted pool)

let test_supervisor_restarts_dead_worker () =
  let m = Mutex.create () in
  let seen = Hashtbl.create 16 in
  let finished = ref [] in
  let restarted = ref [] in
  let exec j =
    let first =
      Mutex.lock m;
      let n = Option.value ~default:0 (Hashtbl.find_opt seen j) in
      Hashtbl.replace seen j (n + 1);
      Mutex.unlock m;
      n = 0
    in
    if first && j mod 3 = 0 then failwith (Printf.sprintf "worker died on %d" j)
    else begin
      Mutex.lock m;
      finished := j :: !finished;
      Mutex.unlock m
    end
  in
  let pool =
    Supervisor.create
      ~on_restart:(fun j ->
        restarted := j :: !restarted (* monitor holds the pool mutex *))
      ~workers:2 exec
  in
  for j = 0 to 8 do
    Supervisor.push pool j
  done;
  Supervisor.drain pool;
  Supervisor.shutdown pool;
  Alcotest.(check (list int))
    "every job finished exactly once despite worker deaths"
    (List.init 9 Fun.id)
    (List.sort compare !finished);
  Alcotest.(check (list int))
    "exactly the poisoned jobs were requeued" [ 0; 3; 6 ]
    (List.sort compare !restarted);
  Alcotest.(check int) "one respawn per death" 3 (Supervisor.restarts pool);
  Alcotest.(check bool) "not aborted" false (Supervisor.aborted pool)

exception Boom

let test_supervisor_fatal_aborts () =
  let fatal_seen = Atomic.make 0 in
  let pool =
    Supervisor.create
      ~fatal:(function Boom -> true | _ -> false)
      ~on_fatal:(fun _ -> Atomic.incr fatal_seen)
      ~workers:2
      (fun j -> if j = 3 then raise Boom else Unix.sleepf 0.002)
  in
  for j = 0 to 7 do
    Supervisor.push pool j
  done;
  Supervisor.drain pool;
  Alcotest.(check bool) "aborted" true (Supervisor.aborted pool);
  Alcotest.(check bool)
    "fatal exception recorded" true
    (Supervisor.fatal_exn pool = Some Boom);
  Alcotest.(check bool)
    "on_fatal fired exactly once" true
    (eventually (fun () -> Atomic.get fatal_seen = 1));
  (match Supervisor.push pool 99 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "push after abort must be refused");
  Supervisor.shutdown pool

(* ------------------------------------------------------------------ *)
(* The daemon end to end (in-process)                                 *)

let with_server ?faults ?(workers = 2) ?queue_cap ?tenant_cap f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "pc.sock" in
  let state_dir = Filename.concat dir "state" in
  let cfg =
    Server.config ~workers ?queue_cap ?tenant_cap ~backoff:0.001 ?faults
      ~socket ~state_dir ()
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      try
        Server.drain t;
        ignore (Server.wait t)
      with _ -> ())
    (fun () -> f ~socket ~state_dir t)

let journal_digests path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match
           Option.bind (Json.member "digest" (Json.of_string line))
             Json.to_string_opt
         with
         | Some d -> d
         | None | (exception _) ->
             Alcotest.failf "unparseable journal line: %s" line)

(* Exactly-once, verified at the byte level: the journal of a
   submission holds exactly one line per spec, no duplicates, no
   strays. *)
let check_exactly_once ~state_dir ~tenant specs =
  let dir = Store.journal_dir ~state_dir tenant in
  let ds = journal_digests (Checkpoint.path ~dir specs) in
  Alcotest.(check (list string))
    (tenant ^ ": journal holds exactly one line per job")
    (List.sort compare (List.map Spec.digest specs))
    (List.sort compare ds)

let test_submit_roundtrip_and_idempotence () =
  with_server (fun ~socket ~state_dir t ->
      let specs = specs_from 100 3 in
      let expected = reference specs in
      let run = Client.submit_and_wait ~socket ~tenant:"alice" specs in
      Alcotest.(check string) "completed" "completed" run.Client.state;
      Alcotest.(check bool) "fresh submission" false run.Client.known;
      Alcotest.(check int) "all jobs done" 3 run.Client.progress.Protocol.completed;
      Alcotest.(check int) "no failures" 0 run.Client.progress.Protocol.failed;
      Alcotest.(check bool)
        "daemon results byte-identical to a local sweep" true
        (run.Client.outcomes = expected);
      (* Resubmission is idempotent: same id, known=true, same bytes,
         nothing re-executed. *)
      let again = Client.submit_and_wait ~socket ~tenant:"alice" specs in
      Alcotest.(check bool) "deduplicated" true again.Client.known;
      Alcotest.(check string) "same id" run.Client.id again.Client.id;
      Alcotest.(check bool)
        "identical results on resubmit" true (again.Client.outcomes = expected);
      let h = Client.with_conn socket Client.health in
      Alcotest.(check int) "one submission registered" 1 h.Protocol.submissions;
      Alcotest.(check int) "three jobs done" 3 h.Protocol.jobs_done;
      Alcotest.(check int) "all fresh executions" 3 h.Protocol.executed;
      Alcotest.(check int) "one tenant" 1 h.Protocol.tenants;
      Alcotest.(check int) "no worker deaths" 0 (Server.restarts t);
      check_exactly_once ~state_dir ~tenant:"alice" specs)

let test_rejects_bad_peers () =
  with_server (fun ~socket ~state_dir:_ _t ->
      (* Bad tenant name. *)
      Client.with_conn socket (fun conn ->
          (match
             Client.rpc conn
               (Protocol.Submit
                  {
                    tenant = "../evil";
                    specs = specs_from 110 1;
                    retries = 0;
                    timeout = None;
                  })
           with
          | Protocol.Refused { code; _ } ->
              Alcotest.(check string) "bad tenant refused" "bad-tenant" code
          | _ -> Alcotest.fail "expected Refused");
          (* Unknown id. *)
          match Client.rpc conn (Protocol.Status { tenant = "t"; id = "zz" }) with
          | Protocol.Refused { code; _ } ->
              Alcotest.(check string) "unknown id refused" "unknown-id" code
          | _ -> Alcotest.fail "expected Refused");
      (* Raw garbage bytes: answered with a refusal, connection keeps
         serving. *)
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX socket);
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Wire.send fd "this is not json";
          (match Option.map Protocol.response_of_string (Wire.recv fd) with
          | Some (Ok (Protocol.Refused { code; _ })) ->
              Alcotest.(check string) "garbage refused" "bad-request" code
          | _ -> Alcotest.fail "expected a refusal frame");
          Wire.send fd (Protocol.request_to_string Protocol.Health);
          (match Option.map Protocol.response_of_string (Wire.recv fd) with
          | Some (Ok (Protocol.Health_of _)) -> ()
          | _ -> Alcotest.fail "connection must survive a garbage frame");
          (* A garbage length desyncs the stream: one refusal, then
             hang up. *)
          write_bytes fd (header (Wire.max_frame + 1));
          (match Option.map Protocol.response_of_string (Wire.recv fd) with
          | Some (Ok (Protocol.Refused { code; _ })) ->
              Alcotest.(check string) "oversize refused" "bad-frame" code
          | _ -> Alcotest.fail "expected a bad-frame refusal");
          Alcotest.(check bool)
            "server hangs up after a desync" true (Wire.recv fd = None)))

let slow_faults = Faults.make ~seed:5 ~delay:1.0 ~delay_s:0.25 ~max_transient:1 ()

let test_backpressure_queue_full () =
  (* One slow worker, queue capacity 4: a 3-job submission fills the
     queue; the next one is pushed back with Retry_after, and plain
     client backoff eventually gets it through. *)
  with_server ~workers:1 ~queue_cap:4 ~faults:slow_faults
    (fun ~socket ~state_dir:_ _t ->
      let specs_a = specs_from 120 3 and specs_b = specs_from 130 2 in
      Client.with_conn socket (fun conn ->
          let id_a, _, _, _ = Client.submit conn ~tenant:"alice" specs_a in
          (match
             Client.rpc conn
               (Protocol.Submit
                  { tenant = "alice"; specs = specs_b; retries = 0; timeout = None })
           with
          | Protocol.Retry_after { seconds; reason } ->
              Alcotest.(check bool) "positive hint" true (seconds > 0.);
              Alcotest.(check string) "queue full" "queue full" reason
          | _ -> Alcotest.fail "expected Retry_after");
          (* With backoff the refused submission lands once the queue
             drains. *)
          let id_b, _, _, rounds = Client.submit conn ~tenant:"alice" specs_b in
          Alcotest.(check bool) "took at least one backoff round" true (rounds > 0);
          let state_a, _ = Client.wait conn ~tenant:"alice" ~id:id_a in
          let state_b, pb = Client.wait conn ~tenant:"alice" ~id:id_b in
          Alcotest.(check string) "first completed" "completed" state_a;
          Alcotest.(check string) "second completed" "completed" state_b;
          Alcotest.(check int) "no failures" 0 pb.Protocol.failed))

let test_backpressure_tenant_quota () =
  with_server ~tenant_cap:2 (fun ~socket ~state_dir:_ _t ->
      Client.with_conn socket (fun conn ->
          (match
             Client.rpc conn
               (Protocol.Submit
                  {
                    tenant = "bob";
                    specs = specs_from 140 3;
                    retries = 0;
                    timeout = None;
                  })
           with
          | Protocol.Retry_after { reason; _ } ->
              Alcotest.(check string) "quota bounces bob" "tenant quota" reason
          | _ -> Alcotest.fail "expected Retry_after");
          (* The quota is per tenant: carol is unaffected. *)
          let _, total, _, _ = Client.submit conn ~tenant:"carol" (specs_from 150 2) in
          Alcotest.(check int) "carol admitted" 2 total))

let test_cancel_skips_queued_jobs () =
  with_server ~workers:1 ~faults:slow_faults (fun ~socket ~state_dir:_ _t ->
      Client.with_conn socket (fun conn ->
          let id, _, _, _ = Client.submit conn ~tenant:"alice" (specs_from 160 4) in
          let _ = Client.cancel conn ~tenant:"alice" ~id in
          Alcotest.(check bool)
            "cancelled submission settles" true
            (eventually (fun () ->
                 let _, p = Client.status conn ~tenant:"alice" ~id in
                 p.Protocol.completed + p.Protocol.skipped >= p.Protocol.total));
          let state, p = Client.status conn ~tenant:"alice" ~id in
          Alcotest.(check string) "state is cancelled" "cancelled" state;
          Alcotest.(check bool)
            "queued jobs were skipped, not run" true
            (p.Protocol.skipped >= 3);
          (* Results serve exactly the journaled (completed) subset. *)
          let rs = Client.results conn ~tenant:"alice" ~id in
          Alcotest.(check int)
            "one result per completed job" p.Protocol.completed (List.length rs)))

let test_drain_refuses_fresh_finishes_pending () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "pc.sock" in
  let cfg =
    Server.config ~workers:1 ~backoff:0.001 ~faults:slow_faults ~socket
      ~state_dir:(Filename.concat dir "state") ()
  in
  let t = Server.start cfg in
  let specs = specs_from 170 2 in
  let id =
    Client.with_conn socket (fun conn ->
        let id, _, _, _ = Client.submit conn ~tenant:"alice" specs in
        Client.drain conn;
        (* Draining: fresh work is backpressured away... *)
        (match
           Client.rpc conn
             (Protocol.Submit
                { tenant = "alice"; specs = specs_from 180 1; retries = 0; timeout = None })
         with
        | Protocol.Retry_after { reason; _ } ->
            Alcotest.(check string) "drain refuses fresh work" "draining" reason
        | _ -> Alcotest.fail "expected Retry_after");
        (* ... but resubmitting known work still answers. *)
        (match
           Client.rpc conn
             (Protocol.Submit { tenant = "alice"; specs; retries = 0; timeout = None })
         with
        | Protocol.Accepted { known; _ } ->
            Alcotest.(check bool) "known id still acked while draining" true known
        | _ -> Alcotest.fail "expected Accepted");
        id)
  in
  ignore id;
  (match Server.wait t with
  | Server.Drained -> ()
  | Server.Killed why -> Alcotest.failf "daemon killed instead of drained: %s" why);
  Alcotest.(check bool)
    "socket removed on graceful exit" true (not (Sys.file_exists socket));
  match Client.connect socket with
  | exception Unix.Unix_error _ -> ()
  | conn ->
      Client.close conn;
      Alcotest.fail "connect must fail after drain"

(* The acceptance drill: 8 concurrent clients, 16 submissions, 96 jobs
   total, injected worker kills throughout — every submission must
   complete with reference-identical bytes, every job exactly once,
   and the supervision tree must actually have been exercised. *)
let test_chaos_drill () =
  let clients = 8 and subs_per = 2 and jobs_per = 6 in
  let submission i s =
    let tenant = Printf.sprintf "t%d" i in
    (tenant, specs_from (1000 + (((i * subs_per) + s) * 100)) jobs_per)
  in
  let expected = Hashtbl.create 16 in
  for i = 0 to clients - 1 do
    for s = 0 to subs_per - 1 do
      let tenant, specs = submission i s in
      Hashtbl.replace expected (tenant, s) (reference specs)
    done
  done;
  let faults = Faults.make ~seed:9 ~wkill:0.35 ~max_transient:2 () in
  with_server ~workers:3 ~faults (fun ~socket ~state_dir t ->
      let errors = Array.make clients None in
      let worker i =
        try
          for s = 0 to subs_per - 1 do
            let tenant, specs = submission i s in
            let run = Client.submit_and_wait ~seed:i ~socket ~tenant specs in
            if run.Client.state <> "completed" then
              Alcotest.failf "%s/%d: state %s" tenant s run.Client.state;
            if run.Client.progress.Protocol.failed > 0 then
              Alcotest.failf "%s/%d: %d failed job(s)" tenant s
                run.Client.progress.Protocol.failed;
            if run.Client.outcomes <> Hashtbl.find expected (tenant, s) then
              Alcotest.failf "%s/%d: outcomes diverge from local sweep" tenant s
          done
        with e -> errors.(i) <- Some e
      in
      let threads = List.init clients (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i -> function
          | Some e -> Alcotest.failf "client %d died: %s" i (Printexc.to_string e)
          | None -> ())
        errors;
      let h = Client.with_conn socket Client.health in
      Alcotest.(check int)
        "every job done exactly once (by count)"
        (clients * subs_per * jobs_per)
        h.Protocol.jobs_done;
      Alcotest.(check int)
        "every submission registered" (clients * subs_per) h.Protocol.submissions;
      Alcotest.(check bool)
        "the supervision tree was exercised" true (Server.restarts t > 0);
      (* Byte-level exactly-once, per journal. *)
      for i = 0 to clients - 1 do
        for s = 0 to subs_per - 1 do
          let tenant, specs = submission i s in
          check_exactly_once ~state_dir ~tenant specs
        done
      done)

(* ------------------------------------------------------------------ *)
(* The crash-recovery property: kill the whole daemon at a random
   point, restart it on the same state dir, and demand byte-identical
   results with every job journaled exactly once.                     *)

let kill_restart_case (seed, count, kpick) =
  let specs = specs_from (10_000 + (seed * 37)) count in
  let expected = reference specs in
  let dir = fresh_dir () in
  let socket = Filename.concat dir "pc.sock" in
  let state_dir = Filename.concat dir "state" in
  let tenant = "survivor" in
  (* First incarnation: worker kills sprinkled in, whole-daemon kill
     after 1..count completed jobs. *)
  let kill_after = 1 + (kpick mod count) in
  let chaos =
    Faults.make ~seed ~wkill:0.2 ~max_transient:2 ~kill_after ()
  in
  let t1 =
    Server.start
      (Server.config ~workers:2 ~backoff:0.001 ~faults:chaos ~socket
         ~state_dir ())
  in
  let conn = Client.connect socket in
  let id, _, _, _ = Client.submit conn ~tenant specs in
  Client.close conn;
  (match Server.wait t1 with
  | Server.Killed _ -> ()
  | Server.Drained -> QCheck.Test.fail_report "daemon drained instead of dying");
  if not (Sys.file_exists (Store.lock_path ~state_dir)) then
    QCheck.Test.fail_report "killed daemon must leave its lockfile behind";
  (* Second incarnation: same state dir, no faults. It must break the
     stale lock, replay the manifest and finish the job list; the
     client just resubmits (idempotent) and reads the results. *)
  let t2 =
    Server.start
      (Server.config ~workers:2 ~backoff:0.001 ~socket ~state_dir ())
  in
  let run = Client.submit_and_wait ~socket ~tenant specs in
  if run.Client.id <> id then QCheck.Test.fail_report "submission id changed";
  if not run.Client.known then
    QCheck.Test.fail_report "restarted daemon forgot the manifested submission";
  if run.Client.state <> "completed" then
    QCheck.Test.fail_reportf "state %s after restart" run.Client.state;
  if run.Client.progress.Protocol.failed > 0 then
    QCheck.Test.fail_reportf "%d failed job(s) after restart"
      run.Client.progress.Protocol.failed;
  if run.Client.outcomes <> expected then
    QCheck.Test.fail_report
      "killed-and-restarted daemon's results differ from an uninterrupted sweep";
  Server.drain t2;
  (match Server.wait t2 with
  | Server.Drained -> ()
  | Server.Killed why -> QCheck.Test.fail_reportf "restarted daemon died: %s" why);
  let ds =
    journal_digests
      (Checkpoint.path ~dir:(Store.journal_dir ~state_dir tenant) specs)
  in
  if List.sort compare ds <> List.sort compare (List.map Spec.digest specs)
  then QCheck.Test.fail_report "journal is not exactly-once across the kill";
  true

let test_kill_restart_identical =
  QCheck.Test.make ~count:4
    ~name:"kill daemon at job k + restart = byte-identical, exactly-once"
    QCheck.(triple (int_bound 10_000) (int_range 3 6) (int_bound 1_000))
    kill_restart_case

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "frames round-trip" `Quick test_wire_round_trip;
          Alcotest.test_case "mid-frame EOF is an error" `Quick
            test_wire_eof_mid_frame;
          Alcotest.test_case "oversized frames refused" `Quick
            test_wire_oversized;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requests round-trip" `Quick
            test_request_round_trip;
          Alcotest.test_case "responses round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
          Alcotest.test_case "tenant names validated" `Quick test_tenant_names;
        ] );
      ( "store",
        [
          Alcotest.test_case "manifests round-trip" `Quick test_store_round_trip;
          Alcotest.test_case "tampered manifests skipped" `Quick
            test_store_skips_tampered;
        ] );
      ( "lockfile",
        [
          Alcotest.test_case "self-stale rule" `Quick test_lockfile_self_stale;
          Alcotest.test_case "live holder refused, dead holder broken" `Quick
            test_lockfile_live_and_dead;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "jobs run exactly once" `Quick
            test_supervisor_runs_jobs;
          Alcotest.test_case "dead workers restarted" `Quick
            test_supervisor_restarts_dead_worker;
          Alcotest.test_case "fatal exceptions abort" `Quick
            test_supervisor_fatal_aborts;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit round-trip + idempotence" `Quick
            test_submit_roundtrip_and_idempotence;
          Alcotest.test_case "bad peers rejected" `Quick test_rejects_bad_peers;
          Alcotest.test_case "queue backpressure" `Quick
            test_backpressure_queue_full;
          Alcotest.test_case "tenant quota" `Quick
            test_backpressure_tenant_quota;
          Alcotest.test_case "cancel skips queued jobs" `Quick
            test_cancel_skips_queued_jobs;
          Alcotest.test_case "drain: finish pending, refuse fresh" `Quick
            test_drain_refuses_fresh_finishes_pending;
          Alcotest.test_case "chaos drill: 8 clients, 96 jobs, worker kills"
            `Quick test_chaos_drill;
        ] );
      ( "crash recovery",
        [ QCheck_alcotest.to_alcotest test_kill_restart_identical ] );
    ]
