(* The fault-tolerance layer: injected worker crashes, stalls, torn
   cache writes and corrupted cache reads must all be recovered
   without perturbing a single outcome, and a sweep killed at an
   arbitrary job must resume from its journal bit-identical to an
   uninterrupted run. *)

open Pc_exec

let outcome : Pc_adversary.Runner.outcome Alcotest.testable =
  Alcotest.testable (fun ppf o -> Pc_adversary.Runner.pp_outcome ppf o) ( = )

let outcomes results = List.map Engine.outcome_exn results

let contains ~sub s =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pc_faults_test_%d_%d" (Unix.getpid ()) !counter)

(* A pool of cheap, deterministic specs spanning the workload kinds
   and moving/non-moving managers. *)
let spec_pool =
  [|
    Spec.robson ~manager:"first-fit" ~m:(1 lsl 10) ~n:(1 lsl 4) ();
    Spec.robson ~manager:"buddy" ~m:(1 lsl 10) ~n:(1 lsl 5) ();
    Spec.pf ~c:8.0 ~manager:"compacting" ~m:(1 lsl 11) ~n:(1 lsl 5) ();
    Spec.pf ~c:16.0 ~manager:"improved-ac" ~m:(1 lsl 11) ~n:(1 lsl 5) ();
    Spec.sawtooth ~c:8.0 ~manager:"best-fit" ~m:(1 lsl 10) ~n:(1 lsl 4) ();
    Spec.random_churn ~seed:11 ~churn:300 ~c:8.0 ~manager:"next-fit"
      ~m:(1 lsl 9)
      ~dist:(Pc_adversary.Random_workload.Pow2 { lo_log = 0; hi_log = 3 })
      ~target_live:(1 lsl 8) ();
  |]

let all_specs = Array.to_list spec_pool

(* Uninterrupted, fault-free, sequential: the reference the fault runs
   must reproduce bit-exactly. Computed once. *)
let baseline =
  lazy
    (let results, summary = Engine.run ~jobs:1 all_specs in
     assert (summary.failed = 0);
     outcomes results)

let check_against_baseline msg results =
  Alcotest.(check (list outcome)) msg (Lazy.force baseline) (outcomes results)

(* ------------------------------------------------------------------ *)
(* The deterministic coin                                             *)

let test_hash01_deterministic () =
  let v1 = Faults.hash01 ~seed:7 ~site:"crash" ~digest:"abc" 0 in
  let v2 = Faults.hash01 ~seed:7 ~site:"crash" ~digest:"abc" 0 in
  Alcotest.(check (float 0.)) "same inputs, same draw" v1 v2;
  Alcotest.(check bool) "in [0,1)" true (v1 >= 0. && v1 < 1.);
  Alcotest.(check bool)
    "different site, different draw" true
    (v1 <> Faults.hash01 ~seed:7 ~site:"delay" ~digest:"abc" 0);
  Alcotest.(check bool)
    "different attempt, different draw" true
    (v1 <> Faults.hash01 ~seed:7 ~site:"crash" ~digest:"abc" 1)

let test_spec_string_round_trip () =
  (match Faults.of_string "crash=0.3,delay=0.15,trunc=0.2,corrupt=0.2,seed=7" with
  | Ok f ->
      Alcotest.(check int) "seed parsed" 7 (Faults.seed f);
      (* to_string must itself parse back. *)
      Alcotest.(check bool)
        "to_string parses" true
        (Result.is_ok (Faults.of_string (Faults.to_string f)))
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Result.is_error (Faults.of_string bad)))
    [ ""; "crash"; "crash=2.0"; "nope=1"; "kill-after=-1" ]

(* ------------------------------------------------------------------ *)
(* Crash and delay recovery                                           *)

let test_crash_recovery () =
  (* crash=1.0: every job dies on attempts 0 and 1 (max_transient=2);
     a retry budget of 3 must recover them all, bit-identically. *)
  let faults = Faults.make ~seed:1 ~crash:1.0 ~max_transient:2 () in
  let results, summary =
    Engine.run ~jobs:2 ~retries:3 ~backoff:0.0005 ~faults all_specs
  in
  Alcotest.(check int) "no failures" 0 summary.failed;
  Alcotest.(check int)
    "two retries per job"
    (2 * List.length all_specs)
    summary.retried;
  check_against_baseline "crash-recovered outcomes bit-identical" results

let test_crash_exhausts_retries () =
  let faults = Faults.make ~seed:1 ~crash:1.0 ~max_transient:3 () in
  let results, summary =
    Engine.run ~retries:1 ~backoff:0.0005 ~faults [ List.hd all_specs ]
  in
  Alcotest.(check int) "job failed" 1 summary.failed;
  match (List.hd results).result with
  | Error msg ->
      Alcotest.(check bool)
        "classified as unrecovered transient" true
        (contains ~sub:"unrecovered transient" msg)
  | Ok _ -> Alcotest.fail "expected a failure"

let test_delay_timeout_retry () =
  (* delay=1.0 stalls attempt 0 past the timeout; attempt 1 is beyond
     max_transient=1 and runs clean. *)
  let faults =
    Faults.make ~seed:2 ~delay:1.0 ~delay_s:0.08 ~max_transient:1 ()
  in
  let spec = Spec.robson ~manager:"first-fit" ~m:(1 lsl 8) ~n:(1 lsl 4) () in
  let r = Engine.execute_with_retries ~faults ~retries:2 ~timeout:0.04 ~backoff:0.0005 spec in
  Alcotest.(check bool) "recovered" true (Result.is_ok r.result);
  Alcotest.(check int) "took exactly one retry" 2 r.attempts

let test_deterministic_failure_probe () =
  (* A spec that raises the same exception every time must be probed
     once and then reported, not retried through the whole budget. *)
  let poisoned = Spec.robson ~manager:"no-such-manager" ~m:256 ~n:16 () in
  let r = Engine.execute_with_retries ~retries:5 ~backoff:0.0005 poisoned in
  Alcotest.(check bool) "failed" true (Result.is_error r.result);
  Alcotest.(check int) "one probe, no transient retries" 2 r.attempts;
  match r.result with
  | Error msg ->
      Alcotest.(check bool)
        "not classified transient" false
        (contains ~sub:"transient" msg)
  | Ok _ -> assert false

(* ------------------------------------------------------------------ *)
(* Cache fault kinds: torn writes and corrupted reads self-heal       *)

let test_torn_write_self_heals () =
  let spec = List.hd all_specs in
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  (* Every store torn: the entry lands truncated (but atomically). *)
  let tearing = Faults.make ~seed:3 ~trunc:1.0 () in
  let _, s1 = Engine.run ~cache ~faults:tearing [ spec ] in
  Alcotest.(check int) "first run executes" 1 s1.executed;
  (match Cache.lookup cache spec with
  | Cache.Invalid _ -> ()
  | Cache.Hit _ -> Alcotest.fail "torn entry served as a hit"
  | Cache.Miss -> Alcotest.fail "torn entry invisible (expected Invalid)");
  (* Fault-free re-run: the invalid entry is counted, re-executed and
     healed... *)
  let r2, s2 = Engine.run ~cache [ spec ] in
  Alcotest.(check int) "invalid entry counted" 1 s2.recovered;
  Alcotest.(check int) "re-executed" 1 s2.executed;
  Alcotest.(check outcome)
    "healed outcome bit-identical"
    (List.hd (Lazy.force baseline))
    (Engine.outcome_exn (List.hd r2));
  (* ... and the third run is a clean cache hit. *)
  let _, s3 = Engine.run ~cache [ spec ] in
  Alcotest.(check int) "healed entry hits" 1 s3.cached;
  Alcotest.(check int) "nothing recovered" 0 s3.recovered

let test_corrupt_read_self_heals () =
  let spec = List.hd all_specs in
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let _, s1 = Engine.run ~cache [ spec ] in
  Alcotest.(check int) "primed" 1 s1.executed;
  (* corrupt=1.0: every read of the (intact) entry is mangled. *)
  let corrupting = Faults.make ~seed:4 ~corrupt:1.0 () in
  let r2, s2 = Engine.run ~cache ~faults:corrupting [ spec ] in
  Alcotest.(check int) "corrupted read counted" 1 s2.recovered;
  Alcotest.(check int) "re-executed" 1 s2.executed;
  Alcotest.(check int) "no failures" 0 s2.failed;
  Alcotest.(check outcome)
    "outcome unperturbed"
    (List.hd (Lazy.force baseline))
    (Engine.outcome_exn (List.hd r2));
  (* Fault-free read: the entry on disk was never damaged. *)
  let _, s3 = Engine.run ~cache [ spec ] in
  Alcotest.(check int) "clean hit afterwards" 1 s3.cached

(* ------------------------------------------------------------------ *)
(* Journal mechanics                                                  *)

let test_journal_tolerates_truncated_tail () =
  let dir = fresh_dir () in
  let specs = all_specs in
  let cp = Checkpoint.open_ ~dir specs in
  List.iter
    (fun s -> Checkpoint.record cp s (Error "placeholder"))
    [ List.nth specs 0; List.nth specs 1 ];
  Checkpoint.close cp;
  let jpath = Checkpoint.path ~dir specs in
  let clean_size = (Unix.stat jpath).Unix.st_size in
  (* Simulate a writer killed mid-append. *)
  let torn = "{\"digest\":\"deadbeef\",\"key\":\"trunc" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 jpath in
  output_string oc torn;
  close_out oc;
  let cp = Checkpoint.open_ ~resume:true ~dir specs in
  Alcotest.(check int) "intact lines survive" 2 (Checkpoint.loaded cp);
  Alcotest.(check int)
    "every torn byte counted repaired" (String.length torn)
    (Checkpoint.repaired cp);
  Alcotest.(check int)
    "file physically truncated back to the valid prefix" clean_size
    (Unix.stat jpath).Unix.st_size;
  Alcotest.(check bool)
    "journaled error replays" true
    (Checkpoint.find cp (List.nth specs 0) = Some (Error "placeholder"));
  Alcotest.(check bool)
    "unjournaled spec misses" true
    (Checkpoint.find cp (List.nth specs 2) = None);
  (* WAL invariant: appends after a repair land on a record boundary,
     so the next resume is clean — nothing repaired, everything
     visible. *)
  Checkpoint.record cp (List.nth specs 2) (Error "after-repair");
  Checkpoint.close cp;
  let cp = Checkpoint.open_ ~resume:true ~dir specs in
  Alcotest.(check int) "post-repair append replays" 3 (Checkpoint.loaded cp);
  Alcotest.(check int) "clean journal needs no repair" 0 (Checkpoint.repaired cp);
  Alcotest.(check bool)
    "post-repair record intact" true
    (Checkpoint.find cp (List.nth specs 2) = Some (Error "after-repair"));
  Checkpoint.close cp

let test_sweep_digest_sensitivity () =
  let d = Checkpoint.sweep_digest in
  Alcotest.(check string) "digest is stable" (d all_specs) (d all_specs);
  Alcotest.(check bool)
    "order-sensitive" true
    (d all_specs <> d (List.rev all_specs));
  Alcotest.(check bool)
    "content-sensitive" true
    (d all_specs <> d (List.tl all_specs))

(* ------------------------------------------------------------------ *)
(* The crash-recovery property: kill at a random job under every
   fault kind, resume, and demand bit-identical results.              *)

let kill_resume_case (seed, kill_after, count) =
  let specs =
    List.filteri (fun i _ -> i < count) all_specs
  in
  let reference, ref_summary = Engine.run ~jobs:1 specs in
  if ref_summary.failed > 0 then QCheck.Test.fail_report "baseline failed";
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let jdir = Checkpoint.default_dir ~cache_dir:dir in
  let chaos ?kill_after seed =
    Faults.make ~seed ~crash:0.4 ~delay:0.3 ~delay_s:0.001 ~trunc:0.4
      ~corrupt:0.4 ~max_transient:2 ?kill_after ()
  in
  (* First run: full chaos, killed after [kill_after] completed jobs
     (or runs to completion if the kill point is past the end). *)
  let cp = Checkpoint.open_ ~dir:jdir specs in
  (try
     ignore
       (Engine.run ~jobs:1 ~cache ~checkpoint:cp ~retries:3 ~backoff:0.0003
          ~faults:(chaos ~kill_after seed) specs)
   with Faults.Sweep_killed _ -> ());
  Checkpoint.close cp;
  (* Resume: chaos still on (different draws), no kill. *)
  let cp = Checkpoint.open_ ~resume:true ~dir:jdir specs in
  let results, summary =
    Engine.run ~jobs:2 ~cache ~checkpoint:cp ~retries:3 ~backoff:0.0003
      ~faults:(chaos (seed + 1)) specs
  in
  Checkpoint.close cp;
  if summary.failed > 0 then
    QCheck.Test.fail_reportf "resumed run left %d failure(s)" summary.failed;
  if outcomes results <> outcomes reference then
    QCheck.Test.fail_report
      "killed-and-resumed outcomes differ from uninterrupted run";
  true

let test_kill_resume_deterministic =
  QCheck.Test.make ~count:15
    ~name:"kill at job k + resume = uninterrupted run (all fault kinds)"
    QCheck.(
      triple (int_bound 10_000) (int_range 1 6)
        (int_range 1 (Array.length spec_pool)))
    kill_resume_case

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault injection"
    [
      ( "determinism",
        [
          Alcotest.test_case "seeded coin" `Quick test_hash01_deterministic;
          Alcotest.test_case "spec strings" `Quick test_spec_string_round_trip;
        ] );
      ( "transient failures",
        [
          Alcotest.test_case "crashes recovered by retries" `Quick
            test_crash_recovery;
          Alcotest.test_case "retry budget exhausts" `Quick
            test_crash_exhausts_retries;
          Alcotest.test_case "delay + timeout retries" `Quick
            test_delay_timeout_retry;
          Alcotest.test_case "deterministic failures probed once" `Quick
            test_deterministic_failure_probe;
        ] );
      ( "cache faults",
        [
          Alcotest.test_case "torn write self-heals" `Quick
            test_torn_write_self_heals;
          Alcotest.test_case "corrupt read self-heals" `Quick
            test_corrupt_read_self_heals;
        ] );
      ( "journal",
        [
          Alcotest.test_case "truncated tail tolerated" `Quick
            test_journal_tolerates_truncated_tail;
          Alcotest.test_case "sweep digest sensitivity" `Quick
            test_sweep_digest_sensitivity;
        ] );
      ( "crash recovery",
        [ QCheck_alcotest.to_alcotest test_kill_resume_deterministic ] );
    ]
