open Pc_heap
open Pc_manager
open Pc_adversary

(* The interaction model: driver-level enforcement of the live bound,
   move notifications, runner accounting, the view's ghost discipline,
   and random-workload determinism. *)

let simple_program = Helpers.simple_program

let test_live_bound_enforced () =
  let program =
    simple_program ~live_bound:16 ~max_size:8 (fun driver ->
        ignore (Driver.alloc driver ~size:8);
        ignore (Driver.alloc driver ~size:8);
        match Driver.alloc driver ~size:1 with
        | _ -> Alcotest.fail "expected Live_bound_exceeded"
        | exception Driver.Live_bound_exceeded { requested; live; bound } ->
            Alcotest.(check int) "requested" 1 requested;
            Alcotest.(check int) "live" 16 live;
            Alcotest.(check int) "bound" 16 bound)
  in
  ignore (Runner.run ~program ~manager:First_fit.manager ())

let test_free_unblocks () =
  let program =
    simple_program ~live_bound:16 ~max_size:16 (fun driver ->
        let a, _, _ = Driver.alloc driver ~size:16 in
        Driver.free driver a;
        ignore (Driver.alloc driver ~size:16))
  in
  let o = Runner.run ~program ~manager:First_fit.manager () in
  Alcotest.(check int) "allocated total" 32 o.allocated;
  Alcotest.(check int) "freed" 16 o.freed;
  Alcotest.(check int) "final live" 16 o.final_live

let test_move_notifications () =
  (* A manager that always compacts everything to 0 before placing at
     the frontier: the program must see the moves. *)
  let slide_manager =
    Manager.make ~name:"slide" (fun ctx ~size:_ ->
        let heap = Ctx.heap ctx in
        let cursor = ref 0 in
        Heap.iter_live heap (fun o ->
            if o.addr <> !cursor then Heap.move heap o.oid ~dst:!cursor;
            cursor := !cursor + o.size);
        Free_index.frontier (Ctx.free_index ctx))
  in
  let seen = ref [] in
  let program =
    simple_program ~live_bound:64 ~max_size:8 (fun driver ->
        let a, addr_a, moves0 = Driver.alloc driver ~size:8 in
        Alcotest.(check int) "first placement" 0 addr_a;
        Alcotest.(check int) "no moves yet" 0 (List.length moves0);
        Driver.free driver a;
        let _, _, _ = Driver.alloc driver ~size:4 in
        (* heap: one object at 4 after this alloc? no: slide moved
           nothing (heap was empty), placed at 0. *)
        let _, _, moves = Driver.alloc driver ~size:4 in
        seen := moves;
        ())
  in
  ignore (Runner.run ~program ~manager:slide_manager ());
  Alcotest.(check int) "no move needed when packed" 0 (List.length !seen);
  (* now force a move: leave a hole, then allocate *)
  let seen = ref [] in
  let program =
    simple_program ~live_bound:64 ~max_size:8 (fun driver ->
        let a, _, _ = Driver.alloc driver ~size:4 in
        let _b, _, _ = Driver.alloc driver ~size:4 in
        Driver.free driver a;
        (* hole at [0,4); b at [4,8): slide moves b to 0 *)
        let _, _, moves = Driver.alloc driver ~size:4 in
        seen := moves)
  in
  ignore (Runner.run ~program ~manager:slide_manager ());
  match !seen with
  | [ { Driver.src = 4; dst = 0; size = 4; _ } ] -> ()
  | l -> Alcotest.failf "unexpected moves (%d)" (List.length l)

let test_runner_accounting () =
  let program =
    simple_program ~live_bound:100 ~max_size:10 (fun driver ->
        let xs =
          List.map (fun _ -> Driver.alloc driver ~size:10) [ 1; 2; 3 ]
        in
        match xs with
        | (a, _, _) :: _ -> Driver.free driver a
        | [] -> ())
  in
  let o = Runner.run ~c:8.0 ~program ~manager:First_fit.manager () in
  Alcotest.(check int) "allocated" 30 o.allocated;
  Alcotest.(check int) "freed" 10 o.freed;
  Alcotest.(check int) "final live" 20 o.final_live;
  Alcotest.(check int) "m recorded" 100 o.m;
  Alcotest.(check int) "n recorded" 10 o.n;
  Alcotest.(check bool) "c recorded" true (o.c = Some 8.0);
  Alcotest.(check bool) "moved nothing" true (o.moved = 0 && o.compliant)

let test_view_ghost_discipline () =
  (* When the manager moves a tracked object, the view frees it on the
     heap and keeps it as a ghost at its original address. *)
  let evict_manager =
    (* Places everything at the frontier, but first moves the oldest
       live object 100 words up — guaranteeing a move per alloc. *)
    Manager.make ~name:"evictor" (fun ctx ~size:_ ->
        let heap = Ctx.heap ctx in
        (match Heap.live_list heap with
        | o :: _ -> Heap.move heap o.oid ~dst:(Heap.high_water heap + 100)
        | [] -> ());
        Free_index.frontier (Ctx.free_index ctx))
  in
  let program =
    simple_program ~live_bound:64 ~max_size:8 (fun driver ->
        let view = View.create driver in
        let r1 = View.alloc view ~size:8 in
        Alcotest.(check bool) "r1 live" false r1.ghost;
        let _r2 = View.alloc view ~size:8 in
        (* serving r2 moved r1: it must now be a ghost *)
        Alcotest.(check bool) "r1 ghosted" true r1.ghost;
        Alcotest.(check int) "present = live + ghost" 16
          (View.present_words view);
        Alcotest.(check int) "heap live only r2" 8 (View.live_words view);
        (* freeing a ghost only drops it from the view *)
        View.free view r1;
        Alcotest.(check int) "present after ghost-free" 8
          (View.present_words view))
  in
  ignore (Runner.run ~program ~manager:evict_manager ())

let test_random_workload_deterministic () =
  let outcome seed =
    let program =
      Random_workload.program ~seed ~churn:500 ~m:2048
        ~dist:(Random_workload.Uniform { lo = 1; hi = 32 }) ~target_live:1024
        ()
    in
    Runner.run ~program ~manager:First_fit.manager ()
  in
  let a = outcome 5 and b = outcome 5 and c = outcome 6 in
  Alcotest.(check int) "same seed same HS" a.hs b.hs;
  Alcotest.(check int) "same seed same churn" a.allocated b.allocated;
  Alcotest.(check bool) "different seed differs" true
    (a.hs <> c.hs || a.allocated <> c.allocated)

let test_program_validation () =
  Alcotest.check_raises "n > M rejected"
    (Invalid_argument "Program.make: need n <= M") (fun () ->
      ignore (simple_program ~live_bound:8 ~max_size:16 (fun _ -> ())))

let () =
  Alcotest.run "runner_driver"
    [
      ( "driver",
        [
          Alcotest.test_case "live bound enforced" `Quick test_live_bound_enforced;
          Alcotest.test_case "free unblocks" `Quick test_free_unblocks;
          Alcotest.test_case "move notifications" `Quick test_move_notifications;
        ] );
      ( "runner",
        [
          Alcotest.test_case "accounting" `Quick test_runner_accounting;
          Alcotest.test_case "program validation" `Quick test_program_validation;
        ] );
      ( "view",
        [ Alcotest.test_case "ghost discipline" `Quick test_view_ghost_discipline ] );
      ( "random workload",
        [
          Alcotest.test_case "deterministic" `Quick
            test_random_workload_deterministic;
        ] );
    ]
