open Pc_bounds

(* The closed-form bounds, validated against every number the paper
   states explicitly, plus structural properties of the formulas. *)

let m_paper = 256 * Params.mb
let n_paper = Params.mb

let test_paper_anchor_points () =
  (* Figure 1's reported anchors: ~2x at c=10, ~3.15x at c=50 (the
     text says "3.15 * M" at c=50), 3.5x at c=100. *)
  let h c = Cohen_petrank.waste_factor ~m:m_paper ~n:n_paper ~c in
  Alcotest.(check (float 0.05)) "c=10 -> 2.0" 2.0 (h 10.0);
  Alcotest.(check (float 0.05)) "c=50 -> 3.15" 3.15 (h 50.0);
  Alcotest.(check (float 0.05)) "c=100 -> 3.5" 3.5 (h 100.0)

let test_paper_robson_quote () =
  (* Section 1: "for realistic parameters ... if we were willing to
     execute a full compaction ... overhead factor 1"; Robson at these
     parameters is (1/2 * 20 + 1) = 11 minus n/M terms. *)
  Alcotest.(check (float 0.01)) "Robson 256MB/1MB" 10.996
    (Robson.waste_factor_pow2 ~m:m_paper ~n:n_paper)

let test_bp_vacuous_at_paper_scale () =
  (* "throughout the range c = 10..100, the lower bound from [4] gives
     nothing but the trivial lower bound" *)
  List.iter
    (fun c ->
      Alcotest.(check (float 1e-9)) (Fmt.str "c=%g trivial" c) 1.0
        (Bendersky_petrank.waste_factor ~m:m_paper ~n:n_paper ~c))
    [ 10.0; 25.0; 50.0; 75.0; 100.0 ]

let test_bp_meaningful_at_huge_scale () =
  (* [4] becomes non-trivial only for huge heaps (the paper says
     M > n = 16TB): in the branch c > 4 log n, the factor
     log n / (6 (log log n + 2)) crosses 1 only for astronomical n. *)
  let m = 1 lsl 61 and n = 1 lsl 53 in
  Alcotest.(check bool) "non-trivial" true
    (Bendersky_petrank.waste_factor ~m ~n ~c:300.0 > 1.0)

let test_s1_factor () =
  Alcotest.(check (float 1e-9)) "l=0" 1.0 (Cohen_petrank.s1_factor ~ell:0);
  Alcotest.(check (float 1e-9)) "l=1" 1.5 (Cohen_petrank.s1_factor ~ell:1);
  Alcotest.(check (float 1e-6)) "l=2" (3.0 -. 0.5 -. (1.0 /. 3.0))
    (Cohen_petrank.s1_factor ~ell:2)

let test_ell_limit () =
  Alcotest.(check int) "c=10: 2^l <= 7.5" 2 (Cohen_petrank.ell_limit ~c:10.0);
  Alcotest.(check int) "c=50: 2^l <= 37.5" 5 (Cohen_petrank.ell_limit ~c:50.0);
  Alcotest.(check int) "c=100: 2^l <= 75" 6 (Cohen_petrank.ell_limit ~c:100.0)

let test_h_side_conditions () =
  let h ell = Cohen_petrank.h ~m:m_paper ~n:n_paper ~c:50.0 ~ell in
  Alcotest.(check bool) "l=0 invalid" true (h 0 = None);
  Alcotest.(check bool) "l=5 valid at c=50" true (h 5 <> None);
  Alcotest.(check bool) "l=6 exceeds limit" true (h 6 = None);
  (* stage 2 must exist: log n = 8 means l <= 3 *)
  Alcotest.(check bool) "stage-2 room" true
    (Cohen_petrank.h ~m:(1 lsl 16) ~n:(1 lsl 8) ~c:100.0 ~ell:4 = None)

let test_best_picks_argmax () =
  match Cohen_petrank.best ~m:m_paper ~n:n_paper ~c:50.0 with
  | None -> Alcotest.fail "expected a best point"
  | Some { ell; h } ->
      Alcotest.(check int) "optimal l at c=50" 3 ell;
      List.iter
        (fun other ->
          match Cohen_petrank.h ~m:m_paper ~n:n_paper ~c:50.0 ~ell:other with
          | Some v ->
              Alcotest.(check bool) (Fmt.str "l=%d not better" other) true
                (v <= h +. 1e-9)
          | None -> ())
        [ 1; 2; 3; 4; 5 ]

let test_lower_bound_clamped () =
  (* When no valid l exists (c too small), the bound degrades to the
     trivial M. *)
  Alcotest.(check (float 1e-9)) "clamped to M" 1.0
    (Cohen_petrank.waste_factor ~m:8192 ~n:256 ~c:2.0)

let prop_h_monotone_in_c =
  QCheck.Test.make ~name:"lower bound weakly increases with c" ~count:50
    QCheck.(pair (int_range 10 200) (int_range 10 190))
    (fun (c1, dc) ->
      let c1 = float_of_int c1 in
      let c2 = c1 +. float_of_int dc in
      Cohen_petrank.waste_factor ~m:m_paper ~n:n_paper ~c:c2
      >= Cohen_petrank.waste_factor ~m:m_paper ~n:n_paper ~c:c1 -. 1e-9)

let prop_h_monotone_in_n =
  QCheck.Test.make ~name:"Figure 2: bound increases with n (M=256n)"
    ~count:20
    QCheck.(int_range 10 29)
    (fun nl ->
      let f nl = Cohen_petrank.waste_factor ~m:(256 lsl nl) ~n:(1 lsl nl) ~c:100.0 in
      f (nl + 1) >= f nl -. 1e-9)

let test_theorem2_coefficients () =
  let a = Theorem2.coefficients ~c:20.0 ~log_n:20 in
  Alcotest.(check (float 1e-9)) "a0" 1.0 a.(0);
  Alcotest.(check (float 1e-9)) "a1 = 0.95 * 1/2" 0.475 a.(1);
  Alcotest.(check (float 1e-9)) "a2 = 0.95 * 1/4" 0.2375 a.(2);
  (* eventually the 1/c floor dominates: a_i = (1 - 1/c)/c *)
  Alcotest.(check (float 1e-9)) "floor" (0.95 /. 20.0) a.(20);
  (* decreasing *)
  Array.iteri
    (fun i ai -> if i > 0 then Alcotest.(check bool) "decreasing" true (ai <= a.(i - 1)))
    a

let test_theorem2_side_condition () =
  Alcotest.(check bool) "c=9 < 10 = log n / 2" false
    (Theorem2.applicable ~n:n_paper ~c:9.0);
  Alcotest.(check bool) "c=11 ok" true (Theorem2.applicable ~n:n_paper ~c:11.0);
  Alcotest.check_raises "raises below threshold"
    (Invalid_argument "Theorem2.upper_bound: requires c > (1/2) log n")
    (fun () -> ignore (Theorem2.upper_bound ~m:m_paper ~n:n_paper ~c:9.0))

let test_theorem2_improves_in_range () =
  (* Figure 3's qualitative content: the new upper bound beats the
     prior best for c in [20, 100]. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (Fmt.str "improves at c=%g" c) true
        (Theorem2.improvement ~m:m_paper ~n:n_paper ~c > 0.0))
    [ 20.0; 40.0; 60.0; 80.0; 100.0 ]

let test_robson_formulas () =
  (* M(1/2 log n + 1) - n + 1 at hand-checkable scale *)
  Alcotest.(check (float 1e-9)) "1024/16" (1024.0 *. 3.0 -. 15.0)
    (Robson.lower_bound_pow2 ~m:1024 ~n:16);
  Alcotest.(check (float 1e-9)) "upper = lower (matching)"
    (Robson.lower_bound_pow2 ~m:1024 ~n:16)
    (Robson.upper_bound_pow2 ~m:1024 ~n:16);
  Alcotest.(check (float 1e-9)) "general doubles"
    (2.0 *. Robson.lower_bound_pow2 ~m:1024 ~n:16)
    (Robson.upper_bound_general ~m:1024 ~n:16);
  Alcotest.check_raises "n > m rejected" (Invalid_argument "Robson: need n <= m")
    (fun () -> ignore (Robson.lower_bound_pow2 ~m:16 ~n:1024))

let test_bp_upper () =
  Alcotest.(check (float 1e-9)) "(c+1)M" 9216.0
    (Bendersky_petrank.upper_bound ~m:1024 ~c:8.0)

let test_stage2_fraction () =
  (* x = (1 - 2^-l h)/(l+1) stays in (0, 1) at the paper's scale *)
  match Cohen_petrank.best ~m:m_paper ~n:n_paper ~c:50.0 with
  | Some { ell; _ } -> (
      match
        Cohen_petrank.stage2_allocation_fraction ~m:m_paper ~n:n_paper ~c:50.0
          ~ell
      with
      | Some x -> Alcotest.(check bool) "x in (0,1)" true (x > 0.0 && x < 1.0)
      | None -> Alcotest.fail "expected x")
  | None -> Alcotest.fail "expected best"

(* ------------------------------------------------------------------ *)
(* Empirical: the closed forms against measured heaps                 *)

let test_theorem2_ceiling_empirical () =
  (* At the churn fixture's scale (M = 4096, n = 32, so log2 n = 5)
     any c > 2.5 satisfies Theorem 2's side condition. No registry
     manager — moving or not — may exceed the ceiling on the standard
     churn workload. *)
  let m = 4096 and n = 32 in
  let c = 4.0 in
  Alcotest.(check bool) "side condition holds" true
    (Theorem2.applicable ~n ~c);
  let ceiling = Theorem2.upper_bound ~m ~n ~c in
  List.iter
    (fun (e : Pc_manager.Registry.entry) ->
      let o = Helpers.run_churn ~c e.key Helpers.churn_seed in
      Alcotest.(check bool)
        (Fmt.str "%s: HS %d under ceiling %.0f" e.key o.hs ceiling)
        true
        (float_of_int o.hs <= ceiling))
    (Pc_manager.Registry.entries ())

let test_pf_drives_every_manager_above_floor () =
  (* Theorem 1 lower-bounds every c-partial manager, not just a
     compaction-free first fit: PF observes the manager's moves and
     ghosts the moved objects, so the whole registry — moving and
     non-moving alike — must end at or above the floor. Iterating the
     registry keeps the check complete by construction as the zoo
     grows. *)
  let m = 1 lsl 14 and n = 1 lsl 7 in
  List.iter
    (fun c ->
      let h = Cohen_petrank.waste_factor ~m ~n ~c in
      Alcotest.(check bool) (Fmt.str "floor non-trivial at c=%g" c) true
        (h > 1.0);
      List.iter
        (fun (e : Pc_manager.Registry.entry) ->
          let _, program = Pc_adversary.Pf.program ~m ~n ~c () in
          let o =
            Pc_adversary.Runner.run ~c ~program ~manager:(e.construct ()) ()
          in
          Alcotest.(check bool)
            (Fmt.str "%s: HS/M %.3f above floor %.3f at c=%g" e.key
               o.hs_over_m h c)
            true (o.hs_over_m >= h))
        (Pc_manager.Registry.entries ()))
    [ 8.0; 16.0; 32.0 ]

let test_logf () =
  Alcotest.(check int) "log2_exact" 10 (Logf.log2_exact 1024);
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Logf.log2_exact: not a positive power of two")
    (fun () -> ignore (Logf.log2_exact 1000));
  Alcotest.(check (float 1e-9)) "log2i" 10.0 (Logf.log2i 1024)

let () =
  Alcotest.run "bounds"
    [
      ( "paper numbers",
        [
          Alcotest.test_case "Figure 1 anchors" `Quick test_paper_anchor_points;
          Alcotest.test_case "Robson quote" `Quick test_paper_robson_quote;
          Alcotest.test_case "BP vacuous at paper scale" `Quick
            test_bp_vacuous_at_paper_scale;
          Alcotest.test_case "BP meaningful at huge scale" `Quick
            test_bp_meaningful_at_huge_scale;
        ] );
      ( "theorem 1",
        [
          Alcotest.test_case "s1 factor" `Quick test_s1_factor;
          Alcotest.test_case "ell limit" `Quick test_ell_limit;
          Alcotest.test_case "side conditions" `Quick test_h_side_conditions;
          Alcotest.test_case "best is argmax" `Quick test_best_picks_argmax;
          Alcotest.test_case "clamped to trivial" `Quick test_lower_bound_clamped;
          Alcotest.test_case "stage-2 fraction" `Quick test_stage2_fraction;
        ] );
      ( "theorem 2",
        [
          Alcotest.test_case "coefficients" `Quick test_theorem2_coefficients;
          Alcotest.test_case "side condition" `Quick test_theorem2_side_condition;
          Alcotest.test_case "improves in range" `Quick
            test_theorem2_improves_in_range;
        ] );
      ( "context bounds",
        [
          Alcotest.test_case "Robson formulas" `Quick test_robson_formulas;
          Alcotest.test_case "BP upper" `Quick test_bp_upper;
          Alcotest.test_case "logf" `Quick test_logf;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "Theorem 2 ceiling holds for every manager"
            `Quick test_theorem2_ceiling_empirical;
          Alcotest.test_case "PF pushes every manager above the Theorem 1 floor"
            `Quick test_pf_drives_every_manager_above_floor;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_h_monotone_in_c; prop_h_monotone_in_n ] );
    ]
