(* The parallel sweep engine: parallel execution must be bit-identical
   to sequential execution, the result cache must serve re-runs
   without executing anything (and without perturbing the numbers),
   and one failing point must not kill a sweep. *)

open Pc_exec

let outcome = Helpers.outcome
let grid = Helpers.grid
let outcomes = Helpers.outcomes
let fresh_dir = Helpers.fresh_dir

let test_parallel_matches_sequential () =
  let specs = grid () in
  let r1, s1 = Engine.run ~jobs:1 specs in
  let r4, s4 = Engine.run ~jobs:4 specs in
  Alcotest.(check int) "all executed (seq)" (List.length specs) s1.executed;
  Alcotest.(check int) "all executed (par)" (List.length specs) s4.executed;
  Alcotest.(check int) "no failures" 0 s4.failed;
  Alcotest.(check (list outcome))
    "jobs=4 bit-identical to jobs=1" (outcomes r1) (outcomes r4)

let test_cache_round_trip () =
  let specs = grid () in
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let r1, s1 = Engine.run ~jobs:2 ~cache specs in
  Alcotest.(check int) "first run executes all" (List.length specs) s1.executed;
  Alcotest.(check int) "first run has no hits" 0 s1.cached;
  let r2, s2 = Engine.run ~jobs:2 ~cache specs in
  Alcotest.(check int) "second run executes nothing" 0 s2.executed;
  Alcotest.(check int) "second run fully cached" (List.length specs) s2.cached;
  Alcotest.(check bool)
    "hits marked as from_cache" true
    (List.for_all (fun (r : Engine.job_result) -> r.from_cache) r2);
  (* The JSON round-trip must be exact — floats included. *)
  Alcotest.(check (list outcome))
    "cached outcomes bit-identical" (outcomes r1) (outcomes r2)

let test_failure_isolation () =
  let bad = Spec.pf ~c:8.0 ~manager:"compacting" ~m:32 ~n:64 () in
  (* m < n *)
  let unknown = Spec.robson ~manager:"no-such-manager" ~m:256 ~n:16 () in
  let good = Spec.robson ~manager:"first-fit" ~m:256 ~n:16 () in
  let results, summary = Engine.run ~jobs:2 [ bad; good; unknown ] in
  Alcotest.(check int) "two failures" 2 summary.failed;
  match results with
  | [ b; g; u ] ->
      Alcotest.(check bool) "bad spec failed" true (Result.is_error b.result);
      Alcotest.(check bool) "unknown manager failed" true
        (Result.is_error u.result);
      Alcotest.(check bool) "good spec survived" true (Result.is_ok g.result)
  | _ -> Alcotest.fail "expected three results in input order"

let test_spec_json_round_trip () =
  List.iter
    (fun spec ->
      let spec' = Spec.of_json (Json.of_string (Json.to_string (Spec.to_json spec))) in
      Alcotest.(check bool)
        (Printf.sprintf "round-trips: %s" (Spec.key spec))
        true (Spec.equal spec spec'))
    (grid ()
    @ [
        Spec.pf ~ell:2 ~stage1_steps:0 ~maintain_density:false ~c:32.0
          ~manager:"sliding" ~m:4096 ~n:64 ();
        Spec.pw ~steps:3 ~manager:"buddy" ~m:1024 ~n:32 ();
        Spec.sawtooth ~rounds:4
          ~pattern:(Spec.Random 3) ~c:8.0 ~manager:"next-fit" ~m:1024 ~n:32 ();
      ])

let test_cache_ignores_corrupt_entries () =
  let spec = Spec.robson ~manager:"first-fit" ~m:256 ~n:16 () in
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let path = Cache.path cache spec in
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc;
  Alcotest.(check bool) "corrupt entry is a miss" true (Cache.find cache spec = None);
  let _, s = Engine.run ~cache [ spec ] in
  Alcotest.(check int) "re-executed over corrupt entry" 1 s.executed;
  Alcotest.(check bool) "entry repaired" true (Cache.find cache spec <> None)

(* Every way an entry can rot — truncation, garbage bytes, a stale
   format version, a digest collision — must surface as a counted
   [Invalid] (never a silent miss, never a wrong hit), re-execute, and
   self-heal the entry on disk. *)
let test_cache_invalid_entry_taxonomy () =
  let spec = Spec.robson ~manager:"first-fit" ~m:256 ~n:16 () in
  let other = Spec.robson ~manager:"buddy" ~m:256 ~n:16 () in
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let write path content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  let fixtures =
    [
      ("truncated", fun path -> write path (String.sub (read path) 0 (String.length (read path) / 2)));
      ("garbage", fun path -> write path "\x00\xffnot even close to json");
      ( "wrong format version",
        fun path ->
          (* Valid JSON, wrong version: must not be served. *)
          let entry = Json.of_string (read path) in
          let bumped =
            match entry with
            | Json.Obj fields ->
                Json.Obj
                  (List.map
                     (function
                       | "format", _ -> ("format", Json.Int 999)
                       | f -> f)
                     fields)
            | j -> j
          in
          write path (Json.to_string bumped) );
      ( "digest collision",
        fun path ->
          (* A well-formed entry for a *different* spec sitting at
             this spec's path: the key check must reject it. *)
          let cache' = Cache.create ~dir:(fresh_dir ()) () in
          let r = Engine.execute other in
          Cache.store cache' other (Result.get_ok r.result);
          write path (read (Cache.path cache' other)) );
    ]
  in
  List.iter
    (fun (name, mangle) ->
      let cache = Cache.create ~dir:(fresh_dir ()) () in
      (* Prime a valid entry, then rot it. *)
      let _, s0 = Engine.run ~cache [ spec ] in
      Alcotest.(check int) (name ^ ": primed") 1 s0.executed;
      mangle (Cache.path cache spec);
      (match Cache.lookup cache spec with
      | Cache.Invalid _ -> ()
      | Cache.Hit _ -> Alcotest.failf "%s: rotten entry served as a hit" name
      | Cache.Miss -> Alcotest.failf "%s: rotten entry was a silent miss" name);
      let r1, s1 = Engine.run ~cache [ spec ] in
      Alcotest.(check int) (name ^ ": counted as recovered") 1 s1.recovered;
      Alcotest.(check int) (name ^ ": re-executed") 1 s1.executed;
      Alcotest.(check bool)
        (name ^ ": outcome ok") true
        (Result.is_ok (List.hd r1).result);
      (* Self-healed: the next run is a clean hit. *)
      let _, s2 = Engine.run ~cache [ spec ] in
      Alcotest.(check int) (name ^ ": healed entry hits") 1 s2.cached;
      Alcotest.(check int) (name ^ ": nothing left to recover") 0 s2.recovered)
    fixtures

let test_pool_map_order () =
  let items = Array.init 100 (fun i -> i) in
  let doubled = Pool.map_array ~jobs:4 (fun i -> 2 * i) items in
  Alcotest.(check (array int))
    "order preserved under parallel map"
    (Array.map (fun i -> 2 * i) items)
    doubled

let () =
  Alcotest.run "sweep engine"
    [
      ( "determinism",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "pool preserves order" `Quick test_pool_map_order;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round trip" `Quick test_cache_round_trip;
          Alcotest.test_case "corrupt entry = miss" `Quick
            test_cache_ignores_corrupt_entries;
          Alcotest.test_case "invalid-entry taxonomy heals" `Quick
            test_cache_invalid_entry_taxonomy;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "failures are isolated" `Quick
            test_failure_isolation;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "spec json round trip" `Quick
            test_spec_json_round_trip;
        ] );
    ]
