open Pc_heap
open Pc_adversary

(* Robson's adversary and the occupying-offset machinery. The headline
   check: against every non-moving manager the measured heap matches
   or exceeds Robson's bound M*(1/2*log n + 1) - n + 1, and first fit
   achieves it exactly. *)

let record ~addr ~size : View.record =
  { oid = Oid.of_int 0; orig_addr = addr; size; ghost = false }

let test_occupying () =
  (* step 3: modulus 8, f = 5: object covers a word = 5 mod 8? *)
  let check name expect r f =
    Alcotest.(check bool) name expect (Robson_steps.occupying ~f ~step:3 r)
  in
  check "covers its own word" true (record ~addr:5 ~size:1) 5;
  check "misses" false (record ~addr:6 ~size:1) 5;
  check "crosses residue" true (record ~addr:3 ~size:4) 5;
  check "stops short" false (record ~addr:3 ~size:2) 5;
  check "next period" true (record ~addr:12 ~size:2) 5;
  check "large always occupies" true (record ~addr:0 ~size:8) 5;
  check "wraps below" true (record ~addr:20 ~size:2) 5
(* addr 20: next 5 mod 8 word is 21 < 22 *)

let test_wasted_space_objective () =
  (* One pinned 1-word object at the offset of each 8-word chunk gives
     objective (8-1) per chunk. *)
  let ctx = Pc_manager.Ctx.create ~live_bound:1024 () in
  let driver = Driver.create ctx Pc_manager.First_fit.manager in
  let view = View.create driver in
  let r1 = View.alloc view ~size:1 in
  (* placed at 0 *)
  let r2 = View.alloc view ~size:2 in
  (* placed at 1..2 *)
  ignore r1;
  ignore r2;
  (* f=0 captures r1 only: (8-1); f=1 captures r2 only: (8-2) *)
  Alcotest.(check int) "objective f=0" 7 (Robson_steps.wasted_space view ~f:0 ~step:3);
  Alcotest.(check int) "objective f=1" 6 (Robson_steps.wasted_space view ~f:1 ~step:3)

let robson_bound ~m ~n = Pc_bounds.Robson.lower_bound_pow2 ~m ~n

let test_first_fit_matches_bound_exactly () =
  (* Against first fit the adversary achieves Robson's bound exactly —
     the matching upper/lower pair — at several scales. *)
  List.iter
    (fun (m_log, n_log) ->
      let m = 1 lsl m_log and n = 1 lsl n_log in
      let program = Robson_pr.program ~m ~n () in
      let o = Runner.run ~program ~manager:Pc_manager.First_fit.manager () in
      let bound = robson_bound ~m ~n in
      Alcotest.(check (float 0.5))
        (Fmt.str "M=2^%d n=2^%d" m_log n_log)
        bound (float_of_int o.hs))
    [ (8, 2); (10, 4); (12, 6) ]

let test_all_non_moving_at_least_bound () =
  let m = 1 lsl 10 and n = 1 lsl 4 in
  let bound = robson_bound ~m ~n in
  List.iter
    (fun (e : Pc_manager.Registry.entry) ->
      if not e.moving then begin
        let program = Robson_pr.program ~m ~n () in
        let o = Runner.run ~program ~manager:(e.construct ()) () in
        Alcotest.(check bool)
          (e.key ^ " >= Robson bound") true
          (float_of_int o.hs >= bound -. 1e-9)
      end)
    (Pc_manager.Registry.entries ())

let test_unlimited_compaction_defeats_pr () =
  (* With unlimited compaction the heap stays near M: the adversary
     only hurts non-moving (or budget-limited) managers. *)
  let m = 1 lsl 10 and n = 1 lsl 4 in
  let program = Robson_pr.program ~m ~n () in
  let o =
    Runner.run ~program ~manager:(Pc_manager.Compacting.make ()) ()
  in
  Alcotest.(check bool)
    (Fmt.str "HS/M %.3f close to 1" o.hs_over_m)
    true (o.hs_over_m < 1.2);
  (* the 2M bump-and-compact manager also stays within its arena *)
  let program = Robson_pr.program ~m ~n () in
  let o2 =
    Runner.run ~program ~manager:(Pc_manager.Bp_simple.make ()) ()
  in
  Alcotest.(check bool)
    (Fmt.str "bp-simple %.3f within 2M" o2.hs_over_m)
    true (o2.hs_over_m <= 2.0)

let test_budgeted_compaction_compliance () =
  (* Against a c-partial compactor, PR still runs fine (ghost
     handling) and the budget is respected. *)
  let m = 1 lsl 10 and n = 1 lsl 4 in
  let program = Robson_pr.program ~m ~n () in
  let o =
    Runner.run ~c:8.0 ~program ~manager:(Pc_manager.Compacting.make ()) ()
  in
  Alcotest.(check bool) "compliant" true o.compliant;
  Alcotest.(check bool) "live never exceeded M" true (o.final_live <= m)

let test_claim_4_9_occupying_floor () =
  (* Claim 4.9: after step i there are at least M*(i+2)/2^(i+1)
     f_i-occupying objects, whatever the manager does. *)
  List.iter
    (fun (manager_key, c) ->
      let m = 1 lsl 10 and n = 1 lsl 5 in
      let floor_violation = ref None in
      let program =
        Program.make ~name:"pr-instrumented" ~live_bound:m ~max_size:n
          (fun driver ->
            let view = View.create driver in
            let observe ~step ~f =
              let count = Robson_steps.occupying_count view ~f ~step in
              let floor = m * (step + 2) / (1 lsl (step + 1)) in
              if count < floor then
                floor_violation := Some (step, count, floor)
            in
            ignore (Robson_steps.run ~observe view ~m ~steps:5 : int))
      in
      let manager = Pc_manager.Registry.construct_exn manager_key in
      let _ =
        match c with
        | Some c -> Runner.run ~c ~program ~manager ()
        | None -> Runner.run ~program ~manager ()
      in
      match !floor_violation with
      | Some (step, count, floor) ->
          Alcotest.failf "%s: step %d has %d occupying < floor %d"
            manager_key step count floor
      | None -> ())
    [ ("first-fit", None); ("best-fit", None); ("compacting", Some 8.0) ]

let test_steps_parameter () =
  let m = 1 lsl 10 and n = 1 lsl 6 in
  (* a shallower run wastes less *)
  let run steps =
    let program = Robson_pr.program ~steps ~m ~n () in
    (Runner.run ~program ~manager:Pc_manager.First_fit.manager ()).hs
  in
  Alcotest.(check bool) "deeper wastes more" true (run 6 > run 3);
  Alcotest.check_raises "too many steps"
    (Invalid_argument "Robson_pr.program: steps out of range") (fun () ->
      ignore (Robson_pr.program ~steps:7 ~m ~n ()))

(* The bound grows with each step exactly as Robson's analysis says:
   going one step deeper adds ~M/2 (up to the -n+1 term). *)
let prop_bound_monotone_in_n =
  QCheck.Test.make ~name:"Robson bound weakly increases with n" ~count:20
    QCheck.(pair (int_range 6 14) (int_range 1 5))
    (fun (m_log, n_log) ->
      let m = 1 lsl m_log in
      QCheck.assume (n_log + 1 <= m_log);
      (* weak: the step gains M/2 but pays n; at n = m/2 they tie *)
      robson_bound ~m ~n:(1 lsl (n_log + 1)) >= robson_bound ~m ~n:(1 lsl n_log))

let () =
  Alcotest.run "robson"
    [
      ( "machinery",
        [
          Alcotest.test_case "occupying" `Quick test_occupying;
          Alcotest.test_case "wasted-space objective" `Quick
            test_wasted_space_objective;
          Alcotest.test_case "steps parameter" `Quick test_steps_parameter;
          Alcotest.test_case "Claim 4.9 occupying floor" `Quick
            test_claim_4_9_occupying_floor;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "first fit matches exactly" `Quick
            test_first_fit_matches_bound_exactly;
          Alcotest.test_case "all non-moving >= bound" `Quick
            test_all_non_moving_at_least_bound;
          Alcotest.test_case "unlimited compaction defeats PR" `Quick
            test_unlimited_compaction_defeats_pr;
          Alcotest.test_case "budgeted compaction compliant" `Quick
            test_budgeted_compaction_compliance;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_bound_monotone_in_n ] );
    ]
