open Pc_heap
open Pc_manager
open Pc_adversary

(* Every manager must produce valid placements (the heap rejects
   overlaps), respect the compaction budget (the context raises
   Budget.Exceeded otherwise), and keep the heap invariants intact.
   Random churn workloads exercise all of that end to end; additional
   unit tests pin down each policy's distinctive placement choices. *)

let run_churn = Helpers.run_churn

let test_all_managers_churn () =
  List.iter
    (fun (e : Registry.entry) ->
      let o = run_churn ~c:8.0 e.key Helpers.churn_seed in
      Alcotest.(check bool)
        (e.key ^ " compliant") true o.compliant;
      Alcotest.(check bool)
        (e.key ^ " heap covers live") true
        (o.hs >= o.final_live))
    (Registry.entries ())

let test_non_moving_never_move () =
  List.iter
    (fun (e : Registry.entry) ->
      if not e.moving then begin
        let o = run_churn ~c:2.0 e.key Helpers.alt_churn_seed in
        Alcotest.(check int) (e.key ^ " moved nothing") 0 o.moved
      end)
    (Registry.entries ())

(* ------------------------------------------------------------------ *)
(* Placement-policy unit tests on hand-built heaps                    *)

let with_ctx = Helpers.with_ctx

let test_first_fit_policy () =
  with_ctx (fun ctx heap ->
      ignore (Heap.alloc heap ~addr:0 ~size:10 : Oid.t);
      ignore (Heap.alloc heap ~addr:14 ~size:16 : Oid.t);
      ignore (Heap.alloc heap ~addr:46 ~size:14 : Oid.t);
      (* gaps: [10,14) and [30,46); tail at 60 *)
      Alcotest.(check int) "fits first gap" 10 (First_fit.alloc ctx ~size:4);
      Alcotest.(check int) "skips to second" 30 (First_fit.alloc ctx ~size:10);
      Alcotest.(check int) "tail" 60 (First_fit.alloc ctx ~size:32))

let test_best_fit_policy () =
  with_ctx (fun ctx heap ->
      ignore (Heap.alloc heap ~addr:0 ~size:10 : Oid.t);
      ignore (Heap.alloc heap ~addr:14 ~size:16 : Oid.t);
      ignore (Heap.alloc heap ~addr:46 ~size:14 : Oid.t);
      ignore (Heap.alloc heap ~addr:70 ~size:10 : Oid.t);
      (* gaps: [10,14)=4, [30,46)=16, [60,70)=10 *)
      Alcotest.(check int) "tightest gap wins" 60 (Best_fit.alloc ctx ~size:7);
      Alcotest.(check int) "exact fit" 10 (Best_fit.alloc ctx ~size:4);
      Alcotest.(check int) "frontier fallback" 80 (Best_fit.alloc ctx ~size:64))

let test_worst_fit_policy () =
  with_ctx (fun ctx heap ->
      ignore (Heap.alloc heap ~addr:0 ~size:10 : Oid.t);
      ignore (Heap.alloc heap ~addr:14 ~size:16 : Oid.t);
      ignore (Heap.alloc heap ~addr:46 ~size:14 : Oid.t);
      (* gaps: [10,14)=4, [30,46)=16 *)
      Alcotest.(check int) "largest gap" 30 (Worst_fit.alloc ctx ~size:4))

let test_aligned_fit_policy () =
  with_ctx (fun ctx heap ->
      ignore (Heap.alloc heap ~addr:0 ~size:3 : Oid.t);
      (* free from 3; an 8-word object must go to the 8-aligned 8 *)
      Alcotest.(check int) "aligned placement" 8 (Aligned_fit.alloc ctx ~size:8);
      (* a 5-word object also aligns to 8 (round_up_pow2 5 = 8) *)
      ignore (Heap.alloc heap ~addr:8 ~size:8 : Oid.t);
      Alcotest.(check int) "non-pow2 size aligns up" 16
        (Aligned_fit.alloc ctx ~size:5))

let test_buddy_padding_reserved () =
  let ctx = Ctx.create ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let buddy = Registry.construct_exn "buddy" in
  (* a 5-word object reserves a whole 8-word block *)
  let a1 = Manager.alloc buddy ctx ~size:5 in
  let o1 = Heap.alloc heap ~addr:a1 ~size:5 in
  Alcotest.(check int) "block aligned" 0 (a1 mod 8);
  (* the next 2-word request must NOT land in [a1+5, a1+8) *)
  let a2 = Manager.alloc buddy ctx ~size:2 in
  Alcotest.(check bool) "padding respected" true
    (a2 + 2 <= a1 + 5 || a2 >= a1 + 8);
  let o2 = Heap.alloc heap ~addr:a2 ~size:2 in
  (* free the 5-word object: its padding is released for reuse *)
  Heap.free heap o1;
  Manager.on_free buddy ctx (Heap.get heap o2);
  (* dummy to exercise on_free path for a live object too *)
  ignore (Manager.alloc buddy ctx ~size:1 : int)

let test_segregated_slots () =
  let ctx = Ctx.create ~live_bound:65536 () in
  let heap = Ctx.heap ctx in
  let seg = Segregated.make ~block_words:64 () in
  (* two size-8 objects must land in the same 64-word block *)
  let a1 = Manager.alloc seg ctx ~size:8 in
  let o1 = Heap.alloc heap ~addr:a1 ~size:8 in
  let a2 = Manager.alloc seg ctx ~size:8 in
  let _o2 = Heap.alloc heap ~addr:a2 ~size:8 in
  Alcotest.(check int) "same block" (a1 / 64) (a2 / 64);
  Alcotest.(check bool) "distinct slots" true (a1 <> a2);
  (* a size-4 object goes to a different block *)
  let a3 = Manager.alloc seg ctx ~size:4 in
  let _o3 = Heap.alloc heap ~addr:a3 ~size:4 in
  Alcotest.(check bool) "class-segregated" true (a3 / 64 <> a1 / 64);
  (* large objects get dedicated block spans *)
  let a4 = Manager.alloc seg ctx ~size:100 in
  Alcotest.(check int) "span aligned" 0 (a4 mod 64);
  let _o4 = Heap.alloc heap ~addr:a4 ~size:100 in
  (* freeing one small object and reallocating reuses its slot *)
  Heap.free heap o1;
  Manager.on_free seg ctx { Heap.oid = o1; addr = a1; size = 8 };
  let a5 = Manager.alloc seg ctx ~size:8 in
  Alcotest.(check int) "slot reused" a1 a5

let test_compacting_reuses_window () =
  (* When the heap would otherwise grow, the compacting manager clears
     a cheap window instead. One 1-word obstacle in an otherwise free
     region must be moved aside. *)
  let budget = Budget.create ~c:4.0 in
  let ctx = Ctx.create ~budget ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let mgr = Compacting.make ~min_window:64 () in
  (* layout: [0,60) live, [60,64) free, 1-word obstacle at 70,
     [128,176) live. The only 64-aligned window that can be cleared is
     [64,128), at the cost of moving the obstacle into the side gap. *)
  ignore (Heap.alloc heap ~addr:0 ~size:60 : Oid.t);
  let obstacle = Heap.alloc heap ~addr:70 ~size:1 in
  ignore (Heap.alloc heap ~addr:128 ~size:48 : Oid.t);
  (* request 64: no contiguous 64-word gap, tail would raise HWM *)
  let a = Manager.alloc mgr ctx ~size:64 in
  Alcotest.(check int) "window reused" 64 a;
  Alcotest.(check bool) "obstacle was moved" true (Heap.addr heap obstacle <> 70);
  Alcotest.(check int) "budget charged" 1 (Budget.moved budget);
  Alcotest.(check bool) "window now free" true
    (Heap.is_free heap ~addr:64 ~size:64)

let test_tlsf_class_rounding () =
  (* sl_log = 3: 8 subclasses per power-of-two range *)
  Alcotest.(check int) "small passthrough" 7 (Tlsf.class_round ~sl_log:3 7);
  Alcotest.(check int) "exact boundary" 64 (Tlsf.class_round ~sl_log:3 64);
  (* 65 is in range [64,128), granularity 8: rounds to 72 *)
  Alcotest.(check int) "rounds into class" 72 (Tlsf.class_round ~sl_log:3 65);
  Alcotest.(check int) "upper part of range" 120 (Tlsf.class_round ~sl_log:3 113);
  with_ctx (fun ctx heap ->
      let tlsf = Tlsf.make ~sl_log:3 () in
      (* a 66-word gap does NOT satisfy a 65-word request (class 72) *)
      ignore (Heap.alloc heap ~addr:0 ~size:10 : Oid.t);
      ignore (Heap.alloc heap ~addr:76 ~size:10 : Oid.t);
      (* gap [10,76) = 66 words *)
      Alcotest.(check int) "good fit skips tight gap" 86
        (Manager.alloc tlsf ctx ~size:65);
      (* a 72-word gap does *)
      ignore (Heap.alloc heap ~addr:86 ~size:65 : Oid.t);
      ignore (Heap.alloc heap ~addr:160 ~size:4 : Oid.t);
      (* widen the first gap to [4,76) = 72 by freeing [0,10) — easier:
         a fresh ctx below *)
      ignore ctx)

let test_semispace_flip () =
  let budget = Budget.create ~c:2.0 in
  let ctx = Ctx.create ~budget ~live_bound:64 () in
  let heap = Ctx.heap ctx in
  let mgr = Semispace.make ~space_words:64 () in
  (* fill the from-space [0,64) *)
  let oids =
    List.init 4 (fun _ ->
        let a = Manager.alloc mgr ctx ~size:16 in
        Heap.alloc heap ~addr:a ~size:16)
  in
  (* free two objects; the bump pointer does not retract *)
  (match oids with
  | a :: b :: _ ->
      Heap.free heap a;
      Heap.free heap b
  | _ -> Alcotest.fail "setup");
  (* next allocation cannot bump (space full) -> flip into [64,128) *)
  let a = Manager.alloc mgr ctx ~size:16 in
  Alcotest.(check int) "flip copied survivors to to-space" (64 + 32) a;
  Alcotest.(check int) "copied words" 32 (Budget.moved budget);
  let _ = Heap.alloc heap ~addr:a ~size:16 in
  Alcotest.(check bool) "old space clear" true
    (Heap.occupied_words_in heap ~start:0 ~stop:64 = 0)

let test_semispace_overflow_when_budget_dry () =
  (* With a dry budget the flip is unaffordable: allocation overflows
     beyond both spaces instead of violating the c-partial rule. *)
  let budget = Budget.create ~c:64.0 in
  let ctx = Ctx.create ~budget ~live_bound:64 () in
  let heap = Ctx.heap ctx in
  let mgr = Semispace.make ~space_words:64 () in
  let _ =
    List.init 4 (fun _ ->
        let a = Manager.alloc mgr ctx ~size:16 in
        Heap.alloc heap ~addr:a ~size:16)
  in
  (* allocated 64, quota 1 < live 64: no flip possible *)
  let live_before = Heap.live_words heap in
  Heap.free heap (Pc_heap.Oid.of_int 0);
  let a = Manager.alloc mgr ctx ~size:16 in
  Alcotest.(check bool) "overflow beyond both spaces" true (a >= 128);
  Alcotest.(check int) "nothing moved" 0 (Budget.moved budget);
  ignore live_before

let test_sliding_periodic_compaction () =
  (* c = 1.5 so the quota (270/1.5 = 180) covers the 170 live words at
     slide time *)
  let budget = Budget.create ~c:1.5 in
  let ctx = Ctx.create ~budget ~live_bound:256 () in
  let heap = Ctx.heap ctx in
  let mgr = Sliding.make ~period:1.0 () in
  (* create a hole, then allocate past the compaction threshold *)
  let a = Heap.alloc heap ~addr:0 ~size:100 in
  ignore (Heap.alloc heap ~addr:100 ~size:100 : Oid.t);
  Heap.free heap a;
  (* threshold = 1.0 * 256; allocated so far = 200, this next
     allocation triggers the slide on its next call *)
  let x = Manager.alloc mgr ctx ~size:50 in
  Alcotest.(check int) "first fit into hole" 0 x;
  ignore (Heap.alloc heap ~addr:x ~size:50 : Oid.t);
  (* allocated = 250 < 256: still no slide *)
  Alcotest.(check int) "no compaction yet" 0 (Budget.moved budget);
  let y = Manager.alloc mgr ctx ~size:20 in
  ignore (Heap.alloc heap ~addr:y ~size:20 : Oid.t);
  Alcotest.(check int) "fills the hole, still no slide" 50 y;
  (* allocated = 270 >= 256 at the start of the next call: the
     survivor at [100,200) slides down to [70,170) before placement *)
  let z = Manager.alloc mgr ctx ~size:10 in
  ignore (Heap.alloc heap ~addr:z ~size:10 : Oid.t);
  Alcotest.(check int) "slid" 100 (Budget.moved budget);
  Alcotest.(check int) "placed after slide" 170 z

let test_bp_simple_bound () =
  (* bp-simple must stay within (c+1)M on the adversary. *)
  let m = 1 lsl 12 and n = 1 lsl 6 in
  let c = 4.0 in
  let program = Robson_pr.program ~m ~n () in
  let o = Runner.run ~c ~program ~manager:(Bp_simple.make ()) () in
  Alcotest.(check bool) "within (c+1)M" true
    (float_of_int o.hs <= (c +. 1.0) *. float_of_int m);
  Alcotest.(check bool) "compliant" true o.compliant

(* ------------------------------------------------------------------ *)
(* The related-literature zoo                                         *)

(* Drive a manager by hand: place through it, then mirror the
   placement on the heap (what the driver does). *)
let hand_driven mgr ctx heap =
  let alloc size =
    let a = Manager.alloc mgr ctx ~size in
    (Heap.alloc heap ~addr:a ~size, a)
  in
  let free (oid, _) =
    let o = Heap.get heap oid in
    Heap.free heap oid;
    Manager.on_free mgr ctx o
  in
  (alloc, free)

let test_meshing_merges_disjoint_pages () =
  let budget = Budget.create ~c:4.0 in
  let ctx = Ctx.create ~budget ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let mgr = Meshing.make ~page_words:16 () in
  let alloc, free = hand_driven mgr ctx heap in
  (* two full size-4 pages: [0,16) and [16,32) *)
  let page0 = List.init 4 (fun _ -> alloc 4) in
  let page1 = List.init 4 (fun _ -> alloc 4) in
  Alcotest.(check int) "pages packed" 32 (Heap.high_water heap);
  (* free slots 2,3 of page0 and 0,1 of page1: disjoint bitmaps *)
  free (List.nth page0 2);
  free (List.nth page0 3);
  free (List.nth page1 0);
  free (List.nth page1 1);
  (* a size-8 request needs a fresh page; no free aligned cell exists
     and the tail would grow the heap — only meshing avoids that *)
  let a = Manager.alloc mgr ctx ~size:8 in
  Alcotest.(check int) "released cell reused" 0 a;
  Alcotest.(check int) "merge charged the source page's live words" 8
    (Budget.moved budget);
  Alcotest.(check int) "survivors merged into one full page" 16
    (Heap.occupied_words_in heap ~start:16 ~stop:32);
  ignore (Heap.alloc heap ~addr:a ~size:8 : Oid.t);
  Alcotest.(check int) "no growth" 32 (Heap.high_water heap);
  Heap.check_invariants heap

let test_compact_fit_plugs_full_page_hole () =
  let budget = Budget.create ~c:4.0 in
  let ctx = Ctx.create ~budget ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let mgr = Compact_fit.make ~page_words:16 () in
  let alloc, free = hand_driven mgr ctx heap in
  (* two full size-4 pages: [0,16) and [16,32) *)
  let oids = Array.init 8 (fun _ -> alloc 4) in
  (* a hole in a full page leaves the class's single partial page; the
     next allocation fills exactly that hole *)
  free oids.(1);
  let _, a = alloc 4 in
  Alcotest.(check int) "hole reused directly" 4 a;
  (* two holes in different pages break the compact invariant: the
     repair at the next allocation plugs the lower page's hole with
     the highest slot of the higher partial page *)
  free oids.(2);
  free oids.(4);
  Alcotest.(check int) "nothing moved yet" 0 (Budget.moved budget);
  let _, a = alloc 4 in
  Alcotest.(check int) "repair moved one object" 4 (Budget.moved budget);
  Alcotest.(check int) "migrant plugged the low hole" 8
    (Heap.addr heap (fst oids.(7)));
  Alcotest.(check int) "allocation goes to the surviving partial page" 16 a;
  Heap.check_invariants heap

let test_cost_oblivious_resizes_on_volume () =
  let budget = Budget.create ~c:2.0 in
  let ctx = Ctx.create ~budget ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let mgr = Cost_oblivious.make ~init_slots:2 () in
  let alloc, _ = hand_driven mgr ctx heap in
  Alcotest.(check int) "bucket slot 0" 0 (snd (alloc 8));
  Alcotest.(check int) "bucket slot 1" 8 (snd (alloc 8));
  (* the bucket is full but the quota (16/2 = 8) cannot pay the
     16-word migration yet: allocations overflow outside the bucket *)
  Alcotest.(check int) "overflow" 16 (snd (alloc 8));
  Alcotest.(check int) "overflow again" 24 (snd (alloc 8));
  Alcotest.(check int) "nothing moved yet" 0 (Budget.moved budget);
  (* 32 allocated words recharged the quota to 16: the bucket doubles
     and the class migrates compactly *)
  Alcotest.(check int) "doubled bucket" 48 (snd (alloc 8));
  Alcotest.(check int) "migration paid by allocation volume" 16
    (Budget.moved budget);
  Alcotest.(check bool) "old bucket vacated" true
    (Heap.is_free heap ~addr:0 ~size:16);
  Heap.check_invariants heap

let test_polylog_epoch_repack () =
  let budget = Budget.create ~c:2.0 in
  let ctx = Ctx.create ~budget ~live_bound:64 () in
  let heap = Ctx.heap ctx in
  let mgr = Polylog_realloc.make () in
  let alloc, free = hand_driven mgr ctx heap in
  (* aligned placement up to the first epoch (M = 64 allocated words) *)
  let o1 = alloc 8 and o2 = alloc 8 and o3 = alloc 8 and o4 = alloc 8 in
  Alcotest.(check (list int)) "aligned placement" [ 0; 8; 16; 24 ]
    [ snd o1; snd o2; snd o3; snd o4 ];
  free o1;
  free o3;
  let o5 = alloc 16 and o6 = alloc 16 in
  Alcotest.(check (list int)) "holes unusable before repack" [ 32; 48 ]
    [ snd o5; snd o6 ];
  Alcotest.(check int) "no repack yet" 0 (Budget.moved budget);
  (* allocated = 64 = M: the next request triggers the epoch repack,
     sliding objects to their lowest aligned fit until the quota
     (64/2 = 32) runs dry — a partial compaction *)
  let _, a = alloc 8 in
  Alcotest.(check int) "repack stopped at the quota" 32 (Budget.moved budget);
  Alcotest.(check int) "first survivor slid down" 0
    (Heap.addr heap (fst o2));
  Alcotest.(check int) "last survivor out of budget, unmoved" 48
    (Heap.addr heap (fst o6));
  Alcotest.(check int) "placement into the repacked gap" 32 a;
  Heap.check_invariants heap

let test_register_rejects_duplicates () =
  let before = Registry.keys () in
  (try
     Registry.register
       {
         key = "first-fit";
         summary = "shadowing duplicate";
         moving = false;
         construct = (fun () -> First_fit.manager);
       };
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument msg ->
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "error names the duplicate key" true
       (contains msg "first-fit"));
  Alcotest.(check (list string)) "registry unchanged" before (Registry.keys ())

let test_registry () =
  Alcotest.(check int) "seventeen managers" 17 (List.length (Registry.entries ()));
  Alcotest.(check bool) "find known" true (Registry.find "buddy" <> None);
  Alcotest.(check bool) "find unknown" true (Registry.find "nope" = None);
  (try
     ignore (Registry.construct_exn "nope");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* Random churn against every manager, as a property over seeds. *)
let prop_churn_all =
  QCheck.Test.make ~name:"every manager survives random churn" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      List.for_all
        (fun (e : Registry.entry) ->
          let o = run_churn ~c:6.0 e.key seed in
          o.compliant && o.hs >= o.final_live)
        (Registry.entries ()))

let () =
  Alcotest.run "managers"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "all managers churn" `Quick test_all_managers_churn;
          Alcotest.test_case "non-moving never move" `Quick
            test_non_moving_never_move;
          Alcotest.test_case "bp-simple bound" `Quick test_bp_simple_bound;
        ] );
      ( "policies",
        [
          Alcotest.test_case "first fit" `Quick test_first_fit_policy;
          Alcotest.test_case "best fit" `Quick test_best_fit_policy;
          Alcotest.test_case "worst fit" `Quick test_worst_fit_policy;
          Alcotest.test_case "aligned fit" `Quick test_aligned_fit_policy;
          Alcotest.test_case "buddy padding" `Quick test_buddy_padding_reserved;
          Alcotest.test_case "segregated slots" `Quick test_segregated_slots;
          Alcotest.test_case "compacting reuse" `Quick
            test_compacting_reuses_window;
          Alcotest.test_case "tlsf class rounding" `Quick
            test_tlsf_class_rounding;
          Alcotest.test_case "semispace flip" `Quick test_semispace_flip;
          Alcotest.test_case "semispace overflow" `Quick
            test_semispace_overflow_when_budget_dry;
          Alcotest.test_case "sliding compaction" `Quick
            test_sliding_periodic_compaction;
          Alcotest.test_case "meshing merge" `Quick
            test_meshing_merges_disjoint_pages;
          Alcotest.test_case "compact-fit plug" `Quick
            test_compact_fit_plugs_full_page_hole;
          Alcotest.test_case "cost-oblivious resize" `Quick
            test_cost_oblivious_resizes_on_volume;
          Alcotest.test_case "polylog epoch repack" `Quick
            test_polylog_epoch_repack;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "duplicate registration" `Quick
            test_register_rejects_duplicates;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_churn_all ]);
    ]
