open Pc_heap
open Pc_manager
open Pc_adversary

(* The shared manager-conformance suite: one parameterised battery
   instantiated over every registry entry, so any manager added
   through [Registry.register] is tested by construction. Per entry:

   - live-word conservation and HS >= live words on the standard churn
     fixture, under the enforced c-partial budget;
   - budget-rule compliance cross-checked by the oracle layer at
     [Full] level (any violation triages a repro bundle and raises);
   - determinism across the two heap backends: bit-identical outcomes;
   - replay fidelity: the recorded trace replays onto both backends to
     the same final heap.

   The meta suite pins the registry listing itself: the generated
   battery keys must equal [Registry.keys ()] exactly (completeness: a
   registered manager cannot lack conformance coverage), keys must be
   unique, and the zoo must hold the seventeen documented managers. *)

let c = 4.0

(* A churn fixture light enough to run the full battery over the whole
   zoo: sizes are powers of two up to 32, half the bound stays live. *)
let churn_program ~seed =
  Random_workload.program ~seed ~churn:600 ~m:1024
    ~dist:(Random_workload.Pow2 { lo_log = 0; hi_log = 5 })
    ~target_live:512 ()

let run ?backend ?(audit = Pc_audit.Oracle.Off) (e : Registry.entry) seed =
  Runner.run ?backend ~c ~audit
    ~failures_dir:(Helpers.fresh_dir ())
    ~program:(churn_program ~seed)
    ~manager:(e.construct ()) ()

let test_conservation (e : Registry.entry) () =
  List.iter
    (fun seed ->
      let o = run e seed in
      Alcotest.(check int)
        (Fmt.str "%s seed %d: allocated - freed = live" e.key seed)
        (o.allocated - o.freed) o.final_live;
      Alcotest.(check bool)
        (Fmt.str "%s seed %d: HS covers live words" e.key seed)
        true (o.hs >= o.final_live);
      Alcotest.(check bool)
        (Fmt.str "%s seed %d: budget-compliant" e.key seed)
        true o.compliant)
    [ Helpers.churn_seed; Helpers.alt_churn_seed ]

(* The runner's own [compliant] flag comes from the enforced budget;
   the oracle at [Full] level re-derives the c-partial rule (and the
   live bound, and the structural invariants) independently from the
   event stream, raising [Report.Reported] on any divergence. *)
let test_oracle_audit (e : Registry.entry) () =
  let o = run ~audit:Pc_audit.Oracle.Full e Helpers.churn_seed in
  Alcotest.(check bool) (e.key ^ " audited run compliant") true o.compliant

let test_backend_determinism (e : Registry.entry) () =
  let oi = run ~backend:Backend.Imperative e Helpers.churn_seed in
  let orf = run ~backend:Backend.Reference e Helpers.churn_seed in
  Alcotest.check Helpers.outcome (e.key ^ " backends agree") oi orf

(* Drive the churn by hand with a trace recorder attached, then replay
   the trace onto each backend: the final heaps must agree with the
   original run word for word. *)
let test_trace_replay (e : Registry.entry) () =
  let program = churn_program ~seed:Helpers.churn_seed in
  let budget = Budget.create ~c in
  let ctx = Ctx.create ~budget ~live_bound:(Program.live_bound program) () in
  let heap = Ctx.heap ctx in
  let trace = Trace.create () in
  Trace.record trace heap;
  let driver = Driver.create ctx (e.construct ()) in
  Program.run program driver;
  Heap.check_invariants heap;
  List.iter
    (fun backend ->
      match Trace.replay ~backend trace with
      | Error msg -> Alcotest.failf "%s: replay rejected: %s" e.key msg
      | Ok r ->
          Heap.check_invariants r;
          Alcotest.(check int)
            (Fmt.str "%s: replayed HS (%a)" e.key Backend.pp backend)
            (Heap.high_water heap) (Heap.high_water r);
          Alcotest.(check int)
            (Fmt.str "%s: replayed live words (%a)" e.key Backend.pp backend)
            (Heap.live_words heap) (Heap.live_words r);
          Alcotest.(check int)
            (Fmt.str "%s: replayed moved words (%a)" e.key Backend.pp backend)
            (Heap.moved_total heap) (Heap.moved_total r))
    [ Backend.Imperative; Backend.Reference ]

let battery (e : Registry.entry) =
  ( e.key,
    [
      Alcotest.test_case "conservation + compliance" `Quick
        (test_conservation e);
      Alcotest.test_case "oracle full audit" `Quick (test_oracle_audit e);
      Alcotest.test_case "backend determinism" `Quick
        (test_backend_determinism e);
      Alcotest.test_case "trace replay" `Quick (test_trace_replay e);
    ] )

let batteries = List.map battery (Registry.entries ())

(* ------------------------------------------------------------------ *)
(* Registry completeness                                              *)

let test_registry_completeness () =
  let covered = List.map fst batteries in
  Alcotest.(check (list string))
    "every registry entry has a conformance battery" (Registry.keys ())
    covered;
  let sorted = List.sort_uniq compare covered in
  Alcotest.(check int)
    "registry keys are unique" (List.length covered) (List.length sorted);
  Alcotest.(check bool)
    "the zoo holds at least seventeen managers" true
    (List.length covered >= 17)

(* Conservation and compliance as a property over fresh seeds, zoo-wide. *)
let prop_conformance =
  QCheck.Test.make ~name:"zoo-wide churn conformance" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      List.for_all
        (fun (e : Registry.entry) ->
          let o = run e seed in
          o.compliant
          && o.allocated - o.freed = o.final_live
          && o.hs >= o.final_live)
        (Registry.entries ()))

let () =
  Alcotest.run "manager-conformance"
    (batteries
    @ [
        ( "registry",
          [
            Alcotest.test_case "completeness" `Quick
              test_registry_completeness;
          ] );
        ("properties", [ QCheck_alcotest.to_alcotest prop_conformance ]);
      ])
