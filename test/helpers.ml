(* Shared test fixtures. Seeds are fixed here so every suite exercises
   the same deterministic workloads — a failure in one suite reproduces
   verbatim from another. *)

open Pc_manager
open Pc_adversary
open Pc_exec

(* Default seeds, shared across suites. *)
let churn_seed = 11
let alt_churn_seed = 13

(* The standard random-churn workload (managers, telemetry suites). *)
let churn_program ~m ~seed =
  Random_workload.program ~seed ~churn:2_000 ~m
    ~dist:(Random_workload.Pow2 { lo_log = 0; hi_log = 5 }) ~target_live:(m / 2)
    ()

(* Run the standard churn against a registry manager. *)
let run_churn ?c key seed =
  let manager = Registry.construct_exn key in
  let program = churn_program ~m:4096 ~seed in
  Runner.run ?c ~program ~manager ()

(* A fresh unlimited-budget context over a hand-buildable heap. *)
let with_ctx f =
  let ctx = Ctx.create ~live_bound:4096 () in
  f ctx (Ctx.heap ctx)

(* A named one-shot program around a run closure. *)
let simple_program ~live_bound ~max_size run =
  Program.make ~name:"test" ~live_bound ~max_size run

(* Outcome equality down to the float fields — the engine suites pin
   bit-identical results across worker counts and cache round-trips. *)
let outcome : Runner.outcome Alcotest.testable =
  Alcotest.testable (fun ppf o -> Runner.pp_outcome ppf o) ( = )

let outcomes results = List.map Engine.outcome_exn results

(* A small PF/Robson/churn grid touching moving and non-moving
   managers — the standard sweep fixture. *)
let grid () =
  List.concat_map
    (fun c ->
      List.map
        (fun manager -> Spec.pf ~c ~manager ~m:(1 lsl 12) ~n:(1 lsl 6) ())
        [ "compacting"; "improved-ac"; "first-fit" ])
    [ 8.0; 16.0 ]
  @ List.map
      (fun manager -> Spec.robson ~manager ~m:(1 lsl 12) ~n:(1 lsl 5) ())
      [ "first-fit"; "buddy" ]
  @ [
      Spec.random_churn ~seed:churn_seed ~churn:500 ~c:8.0 ~manager:"best-fit"
        ~m:(1 lsl 10)
        ~dist:(Random_workload.Pow2 { lo_log = 0; hi_log = 4 })
        ~target_live:(1 lsl 9) ();
    ]

(* Process-unique temp directories (cache/journal isolation). *)
let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pc_test_%d_%d" (Unix.getpid ()) !counter)
