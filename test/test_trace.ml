open Pc_heap

let scripted_trace () =
  let h = Heap.create () in
  let t = Trace.create () in
  Trace.record t h;
  let a = Heap.alloc h ~addr:0 ~size:4 in
  let b = Heap.alloc h ~addr:8 ~size:4 in
  Heap.move h a ~dst:16;
  Heap.free h b;
  (h, t)

let test_length_and_order () =
  let _, t = scripted_trace () in
  Alcotest.(check int) "length" 4 (Trace.length t);
  let kinds =
    List.map
      (fun (e : Trace.entry) ->
        match e.event with
        | Heap.Alloc _ -> "a"
        | Heap.Free _ -> "f"
        | Heap.Move _ -> "m")
      (Trace.entries t)
  in
  Alcotest.(check (list string)) "order" [ "a"; "a"; "m"; "f" ] kinds

let replay_exn t =
  match Trace.replay t with
  | Ok h -> h
  | Error msg -> Alcotest.fail ("replay rejected: " ^ msg)

let test_replay () =
  let h, t = scripted_trace () in
  let r = replay_exn t in
  Alcotest.(check int) "hwm" (Heap.high_water h) (Heap.high_water r);
  Alcotest.(check int) "live" (Heap.live_words h) (Heap.live_words r);
  Alcotest.(check int) "moved" (Heap.moved_total h) (Heap.moved_total r);
  Heap.check_invariants r

let test_serialization_roundtrip () =
  let _, t = scripted_trace () in
  let s = Trace.to_string t in
  let t' = Trace.of_string s in
  Alcotest.(check int) "length preserved" (Trace.length t) (Trace.length t');
  Alcotest.(check string) "string stable" s (Trace.to_string t');
  let r = replay_exn t' in
  Heap.check_invariants r;
  Alcotest.(check int) "replayed hwm" 20 (Heap.high_water r)

let test_parse_errors () =
  (try
     ignore (Trace.of_string "z 1 2 3");
     Alcotest.fail "expected failure"
   with Failure msg ->
     Alcotest.(check bool) "message mentions line" true
       (String.length msg > 0));
  Alcotest.(check int) "empty string parses to empty trace" 0
    (Trace.length (Trace.of_string ""))

let test_format () =
  let _, t = scripted_trace () in
  Alcotest.(check string) "wire format"
    "a 0 0 4\na 1 8 4\nm 0 0 16 4\nf 1 8 4\n" (Trace.to_string t)

let test_stats () =
  let _, t = scripted_trace () in
  let s = Trace.stats t in
  Alcotest.(check int) "events" 4 s.events;
  Alcotest.(check int) "allocs" 2 s.allocs;
  Alcotest.(check int) "frees" 1 s.frees;
  Alcotest.(check int) "moves" 1 s.moves;
  Alcotest.(check int) "allocated words" 8 s.allocated_words;
  Alcotest.(check int) "freed words" 4 s.freed_words;
  Alcotest.(check int) "moved words" 4 s.moved_words;
  (* b was born at event 1, freed at event 3 *)
  Alcotest.(check (float 1e-9)) "lifetime" 2.0 s.mean_lifetime;
  Alcotest.(check int) "immortal (a survives)" 1 s.immortal;
  Alcotest.(check int) "size bucket 2" 2 s.size_histogram.(2)

let () =
  Alcotest.run "trace"
    [
      ( "unit",
        [
          Alcotest.test_case "length and order" `Quick test_length_and_order;
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "wire format" `Quick test_format;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
