open Pc_heap
open Pc_adversary

let oid = Oid.of_int
let check_int = Alcotest.(check int)

let test_whole_entries () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.assoc_whole a (oid 1) ~obj_size:4 ~chunk:0;
  Association.assoc_whole a (oid 2) ~obj_size:2 ~chunk:0;
  Association.assoc_whole a (oid 3) ~obj_size:8 ~chunk:5;
  check_int "sum chunk 0" 6 (Association.sum a 0);
  check_int "sum chunk 5" 8 (Association.sum a 5);
  check_int "sum empty chunk" 0 (Association.sum a 7);
  Alcotest.(check (list int)) "locs" [ 0 ] (Association.locs_of a (oid 1));
  check_int "chunk count" 2 (Association.chunk_count a);
  Association.check_invariants a

let test_halves () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.assoc_halves a (oid 1) ~obj_size:8 ~chunk1:0 ~chunk2:2;
  check_int "half in chunk 0" 4 (Association.sum a 0);
  check_int "half in chunk 2" 4 (Association.sum a 2);
  Alcotest.(check (list int)) "two locs" [ 2; 0 ]
    (List.sort (fun x y -> compare y x) (Association.locs_of a (oid 1)));
  (* same-chunk halves collapse to a whole *)
  Association.assoc_halves a (oid 2) ~obj_size:8 ~chunk1:1 ~chunk2:1;
  check_int "collapsed whole" 8 (Association.sum a 1);
  Association.check_invariants a

let test_migrate_half () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.assoc_halves a (oid 1) ~obj_size:8 ~chunk1:0 ~chunk2:2;
  let e = List.hd (Association.entries a 0) in
  (match Association.migrate_half a ~from_idx:0 e with
  | Some dest ->
      check_int "destination is partner chunk" 2 dest;
      check_int "source emptied" 0 (Association.sum a 0);
      check_int "whole at destination" 8 (Association.sum a 2);
      Alcotest.(check bool) "entry is whole now" true
        (match Association.entries a 2 with
        | [ e ] -> not e.half
        | _ -> false)
  | None -> Alcotest.fail "expected a destination");
  Association.check_invariants a

let test_migrate_orphan_half () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.assoc_halves a (oid 1) ~obj_size:8 ~chunk1:0 ~chunk2:2;
  (* reuse chunk 2 (its entries drop), leaving an orphaned half at 0 *)
  let vanished = Association.reset_chunk a 2 in
  Alcotest.(check (list int)) "nothing fully vanished yet" []
    (List.map Oid.to_int vanished);
  let e = List.hd (Association.entries a 0) in
  Alcotest.(check bool) "orphan migration returns None" true
    (Association.migrate_half a ~from_idx:0 e = None);
  Alcotest.(check (list int)) "no locs left" []
    (Association.locs_of a (oid 1));
  Association.check_invariants a

let test_reset_chunk () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.assoc_whole a (oid 1) ~obj_size:4 ~chunk:0;
  Association.assoc_halves a (oid 2) ~obj_size:8 ~chunk1:0 ~chunk2:3;
  let vanished = Association.reset_chunk a 0 in
  Alcotest.(check (list int)) "whole-only object vanished" [ 1 ]
    (List.map Oid.to_int vanished);
  check_int "chunk emptied" 0 (Association.sum a 0);
  check_int "other half survives" 4 (Association.sum a 3);
  Association.check_invariants a

let test_middle_set () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.set_middle a 4;
  Alcotest.(check bool) "middle" true (Association.is_middle a 4);
  (* associating clears the middle flag *)
  Association.assoc_whole a (oid 1) ~obj_size:2 ~chunk:4;
  Alcotest.(check bool) "cleared by association" false (Association.is_middle a 4);
  (* a step change empties E *)
  Association.set_middle a 6;
  Association.merge_step a;
  Alcotest.(check bool) "cleared by step change" false (Association.is_middle a 3);
  Association.check_invariants a

let test_merge_step () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  Association.assoc_whole a (oid 1) ~obj_size:2 ~chunk:0;
  Association.assoc_whole a (oid 2) ~obj_size:4 ~chunk:1;
  (* halves of oid 3 sit in chunks 2 and 3, which merge into chunk 1 *)
  Association.assoc_halves a (oid 3) ~obj_size:8 ~chunk1:2 ~chunk2:3;
  (* halves of oid 4 sit in chunks 5 and 6, which merge into 2 and 3 *)
  Association.assoc_halves a (oid 4) ~obj_size:16 ~chunk1:5 ~chunk2:6;
  Association.merge_step a;
  check_int "chunk size doubled" 4 (Association.chunk_log a);
  check_int "merged sums add" 6 (Association.sum a 0);
  check_int "half pair becomes whole" 8 (Association.sum a 1);
  Alcotest.(check bool) "whole entry" true
    (match Association.entries a 1 with [ e ] -> not e.half | _ -> false);
  check_int "split halves stay halves" 8 (Association.sum a 2);
  check_int "oid4 other half" 8 (Association.sum a 3);
  Alcotest.(check bool) "still halves" true
    (match Association.entries a 2 with [ e ] -> e.half | _ -> false);
  Association.check_invariants a

let test_potential () =
  let a = Association.create ~chunk_log:3 ~ell:2 in
  let n = 64 in
  (* chunk words 8, ell 2: u_D = min(4 * sum, 8) *)
  Association.assoc_whole a (oid 1) ~obj_size:1 ~chunk:0;
  (* u_0 = 4 *)
  Association.assoc_whole a (oid 2) ~obj_size:8 ~chunk:1;
  (* u_1 = 8 (capped) *)
  Association.set_middle a 2;
  (* u_2 = 8 *)
  check_int "potential" (4 + 8 + 8 - (n / 4)) (Association.potential a ~n)

let test_create_validation () =
  Alcotest.check_raises "ell >= 1"
    (Invalid_argument "Association.create: need l >= 1") (fun () ->
      ignore (Association.create ~chunk_log:3 ~ell:0))

(* Random association scripts keep the structural invariants — checked
   after every step, and the scripts also exercise [merge_step] (the
   between-steps chunk-size doubling of PF). *)
let prop_random_scripts =
  QCheck.Test.make ~name:"random scripts keep invariants" ~count:50
    QCheck.(pair (int_bound 100_000) (int_range 5 80))
    (fun (seed, steps) ->
      let st = Random.State.make [| seed |] in
      let a = Association.create ~chunk_log:3 ~ell:2 in
      let next = ref 0 in
      for _ = 1 to steps do
        (match Random.State.int st 6 with
        | 0 ->
            incr next;
            Association.assoc_whole a (oid !next)
              ~obj_size:(1 lsl Random.State.int st 4)
              ~chunk:(Random.State.int st 8)
        | 1 ->
            incr next;
            let c1 = Random.State.int st 8 in
            let c2 = Random.State.int st 8 in
            Association.assoc_halves a (oid !next)
              ~obj_size:(2 lsl Random.State.int st 3)
              ~chunk1:c1 ~chunk2:c2
        | 2 -> ignore (Association.reset_chunk a (Random.State.int st 8))
        | 3 -> (
            let idx = Random.State.int st 8 in
            match Association.entries a idx with
            | e :: _ when e.half ->
                ignore (Association.migrate_half a ~from_idx:idx e)
            | e :: _ -> Association.remove_entry a idx e
            | [] -> ())
        | 4 ->
            (* only reset (empty) chunks can join E, as in PF line 14 *)
            let idx = Random.State.int st 8 in
            ignore (Association.reset_chunk a idx);
            Association.set_middle a idx
        | _ ->
            (* keep chunk sizes bounded across long scripts *)
            if Association.chunk_log a < 16 then Association.merge_step a);
        Association.check_invariants a
      done;
      true)

let () =
  Alcotest.run "association"
    [
      ( "unit",
        [
          Alcotest.test_case "whole entries" `Quick test_whole_entries;
          Alcotest.test_case "halves" `Quick test_halves;
          Alcotest.test_case "migrate half" `Quick test_migrate_half;
          Alcotest.test_case "orphan half" `Quick test_migrate_orphan_half;
          Alcotest.test_case "reset chunk" `Quick test_reset_chunk;
          Alcotest.test_case "middle set" `Quick test_middle_set;
          Alcotest.test_case "merge step" `Quick test_merge_step;
          Alcotest.test_case "potential" `Quick test_potential;
          Alcotest.test_case "validation" `Quick test_create_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_scripts ]);
    ]
