open Pc_heap
open Pc_manager

(* The shared eviction machinery: candidate discovery around gaps,
   cost accounting (straddlers count fully), relocation targeting, and
   budget-capped eviction. *)

let ctx_with ~c layout =
  let budget = Budget.create ~c in
  let ctx = Ctx.create ~budget ~live_bound:65536 () in
  let heap = Ctx.heap ctx in
  let oids = List.map (fun (addr, size) -> Heap.alloc heap ~addr ~size) layout in
  (ctx, heap, budget, oids)

let test_window_cost () =
  let _, heap, _, _ =
    ctx_with ~c:4.0 [ (0, 10); (60, 16); (100, 4) ]
  in
  Alcotest.(check int) "empty window" 0 (Evict.window_cost heap ~start:16 ~size:32);
  Alcotest.(check int) "contained object" 4
    (Evict.window_cost heap ~start:96 ~size:16);
  (* the 16-word object at [60,76) straddles the window [64,128): it
     counts at FULL size, because evicting the window means moving the
     whole object *)
  Alcotest.(check int) "straddler counts fully" (16 + 4)
    (Evict.window_cost heap ~start:64 ~size:64)

let test_window_candidates_order () =
  (* three windows of size 32 with occupancies 0 (skipped by gap
     discovery only if empty — empty windows still listed), 2, 12:
     candidates come cheapest first *)
  let ctx, _, _, _ =
    ctx_with ~c:4.0 [ (0, 30); (34, 2); (64, 12); (120, 8) ]
  in
  let cands = Evict.window_candidates ctx ~size:32 ~align:32 in
  (match cands with
  | first :: second :: _ ->
      Alcotest.(check int) "cheapest window" 32 first.window_start;
      Alcotest.(check int) "cheapest cost" 2 first.cost;
      Alcotest.(check bool) "ordered by cost" true (second.cost >= first.cost)
  | _ -> Alcotest.fail "expected at least two candidates");
  (* all candidates lie below the frontier and on the alignment grid *)
  List.iter
    (fun (c : Evict.candidate) ->
      Alcotest.(check int) "aligned" 0 (c.window_start mod 32);
      Alcotest.(check bool) "below frontier" true (c.window_start + 32 <= 128))
    cands

let test_relocate_avoids_window () =
  let ctx, heap, _, oids = ctx_with ~c:4.0 [ (0, 28); (34, 2); (120, 20) ] in
  ignore oids;
  (* gaps: [28,34) = 6, [36,120) = 84. Avoid [32,64): the first-fit
     target for a 2-word object would be 28 (fine), but for a 40-word
     object the only gap big enough starts inside the window —
     relocation must resume at 64 ([64,104) fits within [36,120)). *)
  let avoid = Interval.of_extent ~start:32 ~len:32 in
  let small = { Heap.oid = Oid.of_int 99; addr = 34; size = 2 } in
  Alcotest.(check (option int)) "small object to early gap" (Some 28)
    (Evict.relocate_first_fit ctx ~avoid small);
  let large = { Heap.oid = Oid.of_int 98; addr = 34; size = 40 } in
  Alcotest.(check (option int)) "large object past the window" (Some 64)
    (Evict.relocate_first_fit ctx ~avoid large);
  ignore heap

(* Layout with no fully-free aligned 32-word window: the cheapest
   window is [32,64) at cost 12. *)
let capped_layout = [ (0, 30); (40, 12); (64, 28); (112, 8) ]

let test_try_evict_respects_budget () =
  (* The cheapest window costs 12 but the quota is 1: eviction must
     fail and move nothing. *)
  let ctx, heap, budget, _ = ctx_with ~c:64.0 capped_layout in
  (* allocated = 78, quota = 78/64 = 1 *)
  Alcotest.(check int) "tiny quota" 1 (Budget.available budget);
  let r = Evict.try_evict ctx ~size:32 ~align:32 ~move_cap:100 in
  Alcotest.(check bool) "no eviction" true (r = None);
  Alcotest.(check int) "nothing moved" 0 (Heap.moved_total heap)

let test_try_evict_move_cap () =
  (* Plenty of budget but a small move_cap: same refusal. *)
  let ctx, heap, _, _ = ctx_with ~c:2.0 capped_layout in
  let r = Evict.try_evict ctx ~size:32 ~align:32 ~move_cap:4 in
  Alcotest.(check bool) "cap refuses" true (r = None);
  Alcotest.(check int) "nothing moved" 0 (Heap.moved_total heap);
  (* raise the cap: [32,64) clears; its 12-word occupant cannot use
     the [52,64) gap (inside the window) and lands at [92,104) *)
  let r = Evict.try_evict ctx ~size:32 ~align:32 ~move_cap:16 in
  Alcotest.(check (option int)) "window cleared" (Some 32) r;
  Alcotest.(check bool) "free now" true (Heap.is_free heap ~addr:32 ~size:32);
  Alcotest.(check int) "moved the occupant" 12 (Heap.moved_total heap)

let test_try_evict_straddler () =
  (* An object straddling the window boundary must be moved whole. *)
  let ctx, heap, _, oids = ctx_with ~c:2.0 [ (0, 24); (60, 8); (96, 30) ] in
  let straddler = List.nth oids 1 in
  (* object [60,68) straddles windows [32,64) and [64,96) *)
  let r = Evict.try_evict ctx ~size:32 ~align:32 ~move_cap:32 in
  Alcotest.(check (option int)) "cleared a window" (Some 32) r;
  Alcotest.(check bool) "straddler moved entirely" true
    (let a = Heap.addr heap straddler in
     a + 8 <= 32 || a >= 64);
  Alcotest.(check int) "charged full size" 8 (Heap.moved_total heap)

(* ------------------------------------------------------------------ *)
(* Window-cost accounting under the page-granular managers: a meshing
   merge must charge the budget exactly [window_cost] of the source
   page, and a compact-fit plug exactly [window_cost] of the donor
   slot. The oracle audits the c-partial rule independently on every
   event, so a mis-charged move trips it immediately. Objects are
   3 words in 4-word slots, making live words differ from slot words —
   a manager charging slot granularity fails these checks. *)

module Oracle = Pc_audit.Oracle

let hand_driven mgr ctx heap =
  let alloc size =
    let a = Manager.alloc mgr ctx ~size in
    (Heap.alloc heap ~addr:a ~size, a)
  in
  let free (oid, _) =
    let o = Heap.get heap oid in
    Heap.free heap oid;
    Manager.on_free mgr ctx o
  in
  (alloc, free)

let test_meshing_merge_charges_window_cost () =
  let budget = Budget.create ~c:4.0 in
  let ctx = Ctx.create ~budget ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let oracle = Oracle.attach ~level:Oracle.Full ~sample_every:1 ~c:4.0 heap in
  let mgr = Meshing.make ~page_words:16 () in
  let alloc, free = hand_driven mgr ctx heap in
  (* two full pages of 3-word objects in 4-word slots *)
  let page0 = List.init 4 (fun _ -> alloc 3) in
  let page1 = List.init 4 (fun _ -> alloc 3) in
  free (List.nth page0 2);
  free (List.nth page0 3);
  free (List.nth page1 0);
  free (List.nth page1 1);
  (* the source page [0,16) holds 2 live objects = 6 words, not the
     8 words of its two occupied slots *)
  let expected = Evict.window_cost heap ~start:0 ~size:16 in
  Alcotest.(check int) "source page costs its live words" 6 expected;
  (* a size-8 request forces a fresh page: meshing releases [0,16) *)
  let _, a = alloc 8 in
  Alcotest.(check int) "merge reused the released cell" 0 a;
  Alcotest.(check int) "budget charged exactly window_cost" expected
    (Budget.moved budget);
  Oracle.finish oracle;
  Heap.check_invariants heap

let test_compact_fit_plug_charges_window_cost () =
  let budget = Budget.create ~c:4.0 in
  let ctx = Ctx.create ~budget ~live_bound:4096 () in
  let heap = Ctx.heap ctx in
  let oracle = Oracle.attach ~level:Oracle.Full ~sample_every:1 ~c:4.0 heap in
  let mgr = Compact_fit.make ~page_words:16 () in
  let alloc, free = hand_driven mgr ctx heap in
  let oids = Array.init 8 (fun _ -> alloc 3) in
  (* holes in two different pages break the compact invariant *)
  free oids.(2);
  free oids.(4);
  (* the repair migrant is the donor page's highest slot [28,32) *)
  let expected = Evict.window_cost heap ~start:28 ~size:4 in
  Alcotest.(check int) "donor slot costs its live words" 3 expected;
  let _, a = alloc 3 in
  Alcotest.(check int) "budget charged exactly window_cost" expected
    (Budget.moved budget);
  Alcotest.(check int) "migrant plugged the low hole" 8
    (Heap.addr heap (fst oids.(7)));
  Alcotest.(check int) "allocation went to the surviving partial page" 16 a;
  Oracle.finish oracle;
  Heap.check_invariants heap

let () =
  Alcotest.run "evict"
    [
      ( "unit",
        [
          Alcotest.test_case "window cost" `Quick test_window_cost;
          Alcotest.test_case "candidate order" `Quick
            test_window_candidates_order;
          Alcotest.test_case "relocation avoids window" `Quick
            test_relocate_avoids_window;
          Alcotest.test_case "budget respected" `Quick
            test_try_evict_respects_budget;
          Alcotest.test_case "move cap" `Quick test_try_evict_move_cap;
          Alcotest.test_case "straddler moved whole" `Quick
            test_try_evict_straddler;
        ] );
      ( "page managers",
        [
          Alcotest.test_case "meshing merge cost" `Quick
            test_meshing_merge_charges_window_cost;
          Alcotest.test_case "compact-fit plug cost" `Quick
            test_compact_fit_plug_charges_window_cost;
        ] );
    ]
