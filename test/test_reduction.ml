open Pc_adversary

(* Claim 4.8, executably: the ghost-hardened stage 1 against a real
   compacting manager makes exactly the same decisions as Robson's
   program against the imaginary manager A' built from its trace. *)

let lockstep ?c manager_key ~m ~ell =
  let manager = Pc_manager.Registry.construct_exn manager_key in
  let real = Reduction.record ?c ~manager ~m ~ell () in
  let imaginary = Reduction.replay_against_a_prime real in
  (real, imaginary)

let test_lockstep_non_moving () =
  (* With a non-moving manager no ghosts arise; A' is just a spread-out
     relabelling and the traces must agree. *)
  let real, imaginary = lockstep "first-fit" ~m:(1 lsl 10) ~ell:3 in
  (match Reduction.check real imaginary with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "offsets per step" 4 (Array.length real.offsets)

let test_lockstep_compacting () =
  (* The interesting case: the real manager moves objects, the program
     ghosts them, and the executions must still stay in lockstep —
     that is the whole point of the ghost device. *)
  List.iter
    (fun c ->
      let real, imaginary =
        lockstep ~c "compacting" ~m:(1 lsl 11) ~ell:3
      in
      match Reduction.check real imaginary with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "c=%g: %s" c msg)
    [ 2.0; 4.0; 8.0 ]

let test_lockstep_semispace () =
  (* A manager that moves everything wholesale. *)
  let real, imaginary = lockstep ~c:2.0 "semispace" ~m:(1 lsl 10) ~ell:2 in
  match Reduction.check real imaginary with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_a_prime_is_fixed_point () =
  (* A' of an A'-trace reproduces itself: the construction is
     idempotent. *)
  let _, imaginary = lockstep "first-fit" ~m:(1 lsl 9) ~ell:2 in
  let again = Reduction.replay_against_a_prime imaginary in
  match Reduction.check imaginary again with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_a_prime_rejects_divergence () =
  let real, _ = lockstep "first-fit" ~m:256 ~ell:2 in
  let mgr = Reduction.a_prime real in
  let ctx = Pc_manager.Ctx.create ~live_bound:256 () in
  (* wrong size at k = 0 *)
  (try
     ignore (Pc_manager.Manager.alloc mgr ctx ~size:5 : int);
     Alcotest.fail "expected Mismatch"
   with Reduction.Mismatch _ -> ());
  (* A' placements are congruent to the recorded residues *)
  let mgr = Reduction.a_prime real in
  let size0, residue0 = real.entries.(0) in
  let a = Pc_manager.Manager.alloc mgr ctx ~size:size0 in
  Alcotest.(check int) "residue preserved" residue0 (a mod 4)

(* Lockstep holds for every manager in the registry, under a tight
   budget, across random ell. *)
let prop_lockstep_all_managers =
  QCheck.Test.make ~name:"Claim 4.8 lockstep for all managers" ~count:8
    QCheck.(pair (int_range 1 3) (int_range 0 20))
    (fun (ell, salt) ->
      let keys = Pc_manager.Registry.keys () in
      let key = List.nth keys (salt mod List.length keys) in
      let real, imaginary = lockstep ~c:3.0 key ~m:(1 lsl 9) ~ell in
      match Reduction.check real imaginary with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "reduction"
    [
      ( "claim 4.8",
        [
          Alcotest.test_case "non-moving lockstep" `Quick
            test_lockstep_non_moving;
          Alcotest.test_case "compacting lockstep" `Quick
            test_lockstep_compacting;
          Alcotest.test_case "semispace lockstep" `Quick
            test_lockstep_semispace;
          Alcotest.test_case "A' fixed point" `Quick test_a_prime_is_fixed_point;
          Alcotest.test_case "A' rejects divergence" `Quick
            test_a_prime_rejects_divergence;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_lockstep_all_managers ] );
    ]
