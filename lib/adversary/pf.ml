open Pc_bounds

(* The paper's bad program P_F (Algorithm 1) — the constructive heart
   of Theorem 1.

   Stage 1 (steps 0..l): Robson's program hardened with ghosts
   (Robson_steps). Stage 2 (steps 2l .. log n - 2): at each step the
   heap is partitioned into 2^i-word chunks; the program de-allocates
   as much as possible while keeping every chunk's associated objects
   at density 2^-l (Association), then allocates floor(x*M*2^(-i-2))
   objects of size 2^(i+2), each of which must land on >= 3 entirely
   fresh (or expensively compacted) chunks. Density 2^-l > 1/c makes
   chunk reuse cost the manager more budget than the allocation
   recharges, so the heap must keep growing: HS >= M*h (Theorem 1). *)

(* Telemetry: one span per stage — stage 2 aggregates over its steps,
   so [count] on the snapshot is the number of stage-2 steps run. *)
let stage1_span = Pc_telemetry.Registry.span "pf.stage1"
let stage2_span = Pc_telemetry.Registry.span "pf.stage2_step"

type observation = {
  step : int; (* the step index i, or 2l-1 for the stage-1 snapshot *)
  potential : int; (* the paper's u(t) at the end of the step *)
  high_water : int;
  live_words : int;
  present_words : int; (* live + ghost *)
}

type config = {
  m : int;
  n : int;
  c : float;
  ell : int;
  h : float;
  x : float; (* per-step allocation fraction of M *)
}

let config ?ell ~m ~n ~c () =
  let log_n = Logf.log2_exact n in
  if m <= n then invalid_arg "Pf.config: need M > n";
  let ell =
    match ell with
    | Some e -> e
    | None -> (
        match Cohen_petrank.best ~m ~n ~c with
        | Some { ell; _ } -> ell
        | None -> 1)
  in
  if ell < 1 then invalid_arg "Pf.config: need l >= 1";
  if (2 * ell) + 2 > log_n then
    invalid_arg "Pf.config: need 2l + 2 <= log2 n (stage 2 must exist)";
  let h = Option.value (Cohen_petrank.h ~m ~n ~c ~ell) ~default:1.0 in
  let x =
    Option.value
      (Cohen_petrank.stage2_allocation_fraction ~m ~n ~c ~ell)
      ~default:(1.0 /. float_of_int (ell + 1))
  in
  { m; n; c; ell; h; x }

(* Drop an object's view record once its last association entry is
   gone. Only ghosts can reach this point: a live object's entries sit
   on chunks it intersects, which are therefore never reused. *)
let drop_if_orphaned view assoc oid =
  if Association.locs_of assoc oid = [] then begin
    match View.find view oid with
    | Some r ->
        if not r.ghost then
          failwith "Pf: live object lost its association entries";
        View.free view r
    | None -> ()
  end

(* Algorithm 1 line 13: for each chunk, de-allocate as much as
   possible while keeping the associated size at least [threshold].
   Halves migrate to their partner chunk (re-evaluated via the
   worklist); wholes are really freed. *)
let density_pass view assoc ~threshold =
  let work = Queue.create () in
  List.iter (fun idx -> Queue.add idx work) (Association.chunk_indices assoc);
  while not (Queue.is_empty work) do
    let idx = Queue.pop work in
    (* One sorted pass is equivalent to Algorithm 1's "repeatedly drop
       the largest droppable entry": dropping an entry only shrinks the
       associated sum, so an entry that failed [s - |e| >= threshold]
       can never become droppable later — the scan position is
       monotone, and re-sorting after every removal (the literal
       reading) would reproduce exactly this sequence of drops. *)
    let entries =
      Association.entries assoc idx
      |> List.sort (fun a b ->
             Int.compare (Association.entry_size b) (Association.entry_size a))
    in
    let s = ref (Association.sum assoc idx) in
    List.iter
      (fun (e : Association.entry) ->
        let sz = Association.entry_size e in
        if !s - sz >= threshold then begin
          s := !s - sz;
          if e.half then begin
            match Association.migrate_half assoc ~from_idx:idx e with
            | Some dest -> Queue.add dest work
            | None -> drop_if_orphaned view assoc e.oid
          end
          else begin
            Association.remove_entry assoc idx e;
            match View.find view e.oid with
            | Some r -> View.free view r
            | None -> failwith "Pf: association entry without view record"
          end
        end)
      entries
  done

exception
  Audit_failure of {
    step : int;
    delta_u : int;
    floor : int; (* ceil(3/4 |o|) - 2^l q(o) *)
  }

(* [stage1_steps] and [maintain_density] exist for ablation studies
   (bench/main.exe ablation): they deliberately weaken the adversary to
   measure how much each of the paper's two mechanisms — the Robson
   stage and the density maintenance — contributes to the bound. *)
let program ?ell ?observe ?(audit = false) ?stage1_steps
    ?(maintain_density = true) ~m ~n ~c () =
  let cfg = config ?ell ~m ~n ~c () in
  let log_n = Logf.log2_exact n in
  let ell = cfg.ell in
  let stage1_steps =
    match stage1_steps with
    | None -> ell
    | Some s ->
        if s < 0 || s > ell then
          invalid_arg "Pf.program: stage1_steps out of range";
        s
  in
  let emit assoc view driver ~step =
    match observe with
    | None -> ()
    | Some f ->
        f
          {
            step;
            potential = Association.potential assoc ~n;
            high_water = Driver.high_water driver;
            live_words = Driver.live_words driver;
            present_words = View.present_words view;
          }
  in
  let run driver =
    let view = View.create driver in
    (* Stage 1: Robson steps 0..l, then l-1 null steps (no requests —
       nothing to simulate) and the line-9 association on the
       partition D(2l-1). *)
    let f =
      Pc_telemetry.Span.time stage1_span (fun () ->
          Robson_steps.run view ~m ~steps:stage1_steps)
    in
    (* Ghosts are a stage-1 device (Definition 4.1): they shaped the
       offset choices and refill counts above, but they do not cross
       into stage 2 — the potential they carried is the 2^l*q1 term of
       Lemma 4.5. Only live objects get line-9 associations; were
       ghosts associated too, a manager could reuse their long-freed
       chunks in stage 2 without paying any stage-2 compaction,
       breaking Lemma 4.6's accounting. *)
    let stage1_ghosts =
      View.fold_present view ~init:[] ~f:(fun acc r ->
          if r.ghost then r :: acc else acc)
    in
    List.iter (fun r -> View.free view r) stage1_ghosts;
    let assoc = Association.create ~chunk_log:((2 * ell) - 1) ~ell in
    let modulus = 1 lsl ell in
    View.iter_present view (fun r ->
        (* the object's f_l-occupying word (live objects never moved,
           so the original address is the current one). After a full
           stage 1 every survivor is f_l-occupying; a truncated stage
           (ablation) leaves non-occupying objects, which we associate
           with the chunk of their first word to keep the invariant
           "an associated object intersects its chunk". *)
        let delta = (f - r.orig_addr) mod modulus in
        let delta = if delta < 0 then delta + modulus else delta in
        let w = if delta < r.size then r.orig_addr + delta else r.orig_addr in
        let idx = w / (1 lsl ((2 * ell) - 1)) in
        Association.assoc_whole assoc r.oid ~obj_size:r.size ~chunk:idx);
    emit assoc view driver ~step:((2 * ell) - 1);
    (* Stage 2: steps 2l .. log n - 2. *)
    for i = 2 * ell to log_n - 2 do
      Pc_telemetry.Span.enter stage2_span;
      Association.merge_step assoc;
      density_pass view assoc
        ~threshold:(if maintain_density then 1 lsl (i - ell) else 0);
      let size = 1 lsl (i + 2) in
      let count =
        int_of_float (Float.floor (cfg.x *. float_of_int m)) / size
      in
      let chunk = 1 lsl i in
      for _ = 1 to count do
        if Driver.live_words driver + size <= m then begin
          (* Claim 4.16 audit: an allocation (with the chunk reuse it
             entails) must grow u by at least 3/4 |o| - 2^l q(o),
             where q(o) is the associated space on the reused chunks
             (Definition 4.14). Moves during the allocation do not
             change u (association survives compaction). *)
          let u_before =
            if audit then Association.potential assoc ~n else 0
          in
          let r = View.alloc view ~size in
          (* first chunk fully covered by the object *)
          let k0 = (r.orig_addr + chunk - 1) / chunk in
          let d1 = k0 and d2 = k0 + 1 and d3 = k0 + 2 in
          let q_o =
            if audit then
              Association.sum assoc d1 + Association.sum assoc d2
              + Association.sum assoc d3
            else 0
          in
          List.iter
            (fun d ->
              let vanished = Association.reset_chunk assoc d in
              List.iter (fun oid -> drop_if_orphaned view assoc oid) vanished)
            [ d1; d2; d3 ];
          Association.assoc_halves assoc r.oid ~obj_size:size ~chunk1:d1
            ~chunk2:d3;
          Association.set_middle assoc d2;
          if audit then begin
            let u_after = Association.potential assoc ~n in
            let floor = (3 * size / 4) - ((1 lsl ell) * q_o) in
            if u_after - u_before < floor then
              raise
                (Audit_failure
                   { step = i; delta_u = u_after - u_before; floor });
            Association.check_invariants assoc
          end
        end
      done;
      emit assoc view driver ~step:i;
      Pc_telemetry.Span.exit_ stage2_span
    done
  in
  ( cfg,
    Program.make
      ~name:(Fmt.str "pf[l=%d,c=%g]" ell c)
      ~live_bound:m ~max_size:n run )
