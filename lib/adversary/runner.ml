open Pc_heap
open Pc_manager

(* Executes a (program, manager) interaction and reports HS(A, P) and
   the rest of the paper's accounting. *)

let src = Logs.Src.create "pc.runner" ~doc:"program/manager executions"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = {
  program : string;
  manager : string;
  m : int;
  n : int;
  c : float option;
  hs : int; (* HS(A, P): high-water mark in words *)
  hs_over_m : float;
  allocated : int;
  moved : int;
  freed : int;
  final_live : int;
  compliant : bool; (* c-partial rule never violated *)
}

let run ?backend ?c ?(check = false) ?(check_every = 64) ~program ~manager () =
  if check_every <= 0 then invalid_arg "Runner.run: check_every must be > 0";
  let budget =
    match c with Some c -> Budget.create ~c | None -> Budget.unlimited ()
  in
  let m = Program.live_bound program in
  let ctx = Ctx.create ?backend ~budget ~live_bound:m () in
  let driver = Driver.create ctx manager in
  if check then begin
    (* Sampled: the full invariant sweep is O(live), so running it on
       every event turns an O(T) execution into O(T^2). One event in
       [check_every] keeps executions honest at tolerable cost; the
       final check below always runs on the complete heap. *)
    let countdown = ref check_every in
    Heap.on_event (Ctx.heap ctx) (fun _ ->
        decr countdown;
        if !countdown <= 0 then begin
          countdown := check_every;
          Heap.check_invariants (Ctx.heap ctx)
        end)
  end;
  Log.debug (fun k ->
      k "running %s vs %s (M=%d, c=%s)" (Program.name program)
        (Manager.name manager) m
        (match c with Some c -> Fmt.str "%g" c | None -> "unlimited"));
  Program.run program driver;
  let heap = Ctx.heap ctx in
  Heap.check_invariants heap;
  Log.info (fun k ->
      k "%s vs %s: HS=%d (%.3f x M), moved %d of %d allocated"
        (Program.name program) (Manager.name manager) (Heap.high_water heap)
        (float_of_int (Heap.high_water heap) /. float_of_int m)
        (Heap.moved_total heap)
        (Heap.allocated_total heap));
  {
    program = Program.name program;
    manager = Manager.name manager;
    m;
    n = Program.max_size program;
    c;
    hs = Heap.high_water heap;
    hs_over_m = float_of_int (Heap.high_water heap) /. float_of_int m;
    allocated = Heap.allocated_total heap;
    moved = Heap.moved_total heap;
    freed = Heap.freed_total heap;
    final_live = Heap.live_words heap;
    compliant = Budget.is_compliant budget;
  }

let pp_outcome ppf o =
  Fmt.pf ppf
    "%-16s vs %-12s M=%-8d n=%-6d c=%-6s HS=%-9d HS/M=%.3f moved=%d%s"
    o.program o.manager o.m o.n
    (match o.c with Some c -> Fmt.str "%g" c | None -> "-")
    o.hs o.hs_over_m o.moved
    (if o.compliant then "" else "  [BUDGET VIOLATED]")
