open Pc_heap
open Pc_manager

(* Executes a (program, manager) interaction and reports HS(A, P) and
   the rest of the paper's accounting. *)

let src = Logs.Src.create "pc.runner" ~doc:"program/manager executions"

module Log = (val Logs.src_log src : Logs.LOG)

(* Telemetry: where executions spend their time (primary run vs triage
   re-run), how the waste factor came out against the audited theory
   floor, and — at the [Full] level — the HS/M trajectory over the
   run, bucketed as permille so Theorem 1's floor is readable straight
   off the histogram. Span aggregates are shared across sweep worker
   domains; per-domain interleavings can drop an update, which is
   acceptable for timing aggregates and never affects outcomes. *)
module T = Pc_telemetry

let exec_span = T.Registry.span "runner.exec"
let triage_span = T.Registry.span "runner.triage"
let executions_c = T.Registry.counter "runner.executions"
let violations_c = T.Registry.counter "runner.violations"
let hs_over_m_g = T.Registry.gauge "runner.hs_over_m"
let theory_floor_g = T.Registry.gauge "runner.theory_floor"
let fragmentation_g = T.Registry.gauge "runner.external_fragmentation"
let trajectory_h = T.Registry.histogram "runner.hs_over_m_permille"
let trajectory_every = 64

type outcome = {
  program : string;
  manager : string;
  m : int;
  n : int;
  c : float option;
  hs : int; (* HS(A, P): high-water mark in words *)
  hs_over_m : float;
  allocated : int;
  moved : int;
  freed : int;
  final_live : int;
  compliant : bool; (* c-partial rule never violated *)
}

let run ?backend ?c ?(check = false) ?(check_every = 64)
    ?(audit = Pc_audit.Oracle.Off) ?(audit_every = 64) ?audit_c ?theory_h
    ?failures_dir ~program ~manager () =
  if check_every <= 0 then invalid_arg "Runner.run: check_every must be > 0";
  let m = Program.live_bound program in
  (* The oracle audits [audit_c] — normally the enforced bound, but a
     caller can audit a bound the budget does not enforce (that is how
     the CI drill models a manager whose budget debit is broken). *)
  let audit_c = match audit_c with Some _ as ac -> ac | None -> c in
  (* One execution of the interaction. Programs build their state
     inside their run closure, so executions are deterministic and
     repeatable; [record] controls whether the heap's event stream is
     captured as a trace. The primary run does not record — retaining
     every event costs real time and memory on clean runs — and on a
     violation the run is repeated with the recorder on to obtain the
     trace for triage. *)
  let exec ~record =
    let budget =
      match c with Some c -> Budget.create ~c | None -> Budget.unlimited ()
    in
    let ctx = Ctx.create ?backend ~budget ~live_bound:m () in
    let heap = Ctx.heap ctx in
    T.Counter.incr executions_c;
    (* Full level only: sample the HS/M trajectory as the run unfolds.
       The listener merely observes, so attaching it cannot change the
       interaction — level [full] stays bit-identical to [off]. *)
    if !T.Sink.full_active then begin
      let countdown = ref trajectory_every in
      Heap.on_event heap (fun _ ->
          decr countdown;
          if !countdown <= 0 then begin
            countdown := trajectory_every;
            T.Histogram.observe trajectory_h (Heap.high_water heap * 1000 / m)
          end)
    end;
    (* Listener order matters: Heap.on_event fires most-recently-added
       first, and Ctx wired the budget at heap creation (so it fires
       last). Attaching the oracle before the trace recorder means the
       recorder runs first on every event — the violating event is
       already recorded when the oracle raises. *)
    let oracle =
      if audit = Pc_audit.Oracle.Off then None
      else
        Some
          (Pc_audit.Oracle.attach ~level:audit ~sample_every:audit_every
             ?c:audit_c ~live_bound:m heap)
    in
    let trace =
      if record then begin
        let t = Trace.create () in
        Trace.record t heap;
        Some t
      end
      else None
    in
    let driver = Driver.create ctx manager in
    if check then begin
      (* Sampled: the full invariant sweep is O(live), so running it on
         every event turns an O(T) execution into O(T^2). One event in
         [check_every] keeps executions honest at tolerable cost; the
         final check below always runs on the complete heap. *)
      let countdown = ref check_every in
      Heap.on_event heap (fun _ ->
          decr countdown;
          if !countdown <= 0 then begin
            countdown := check_every;
            Heap.check_invariants heap
          end)
    end;
    let event_seq () =
      match oracle with Some o -> Pc_audit.Oracle.seq o | None -> -1
    in
    let result =
      try
        Program.run program driver;
        (match oracle with
        | Some oracle -> Pc_audit.Oracle.finish ?theory_h oracle
        | None -> ());
        Ok ()
      with
      | Pc_audit.Oracle.Violation v -> Error v
      | Budget.Exceeded { requested; available }
        when audit <> Pc_audit.Oracle.Off ->
          (* The budget's own enforcement tripping under audit means
             the oracle's (identical) bound was not the binding one —
             e.g. the enforced c is tighter than the audited c.
             Triaged the same way. *)
          Error
            {
              Pc_audit.Oracle.oracle = "budget";
              seq = event_seq ();
              detail =
                Printf.sprintf
                  "Budget.Exceeded: move of %d words, %d available" requested
                  available;
            }
      | Pf.Audit_failure { step; delta_u; floor }
        when audit <> Pc_audit.Oracle.Off ->
          (* PF's own Claim 4.16 potential audit, surfaced as a triaged
             (unshrinkable: adversary-internal) violation. *)
          Error
            {
              Pc_audit.Oracle.oracle = "pf-potential";
              seq = event_seq ();
              detail =
                Printf.sprintf
                  "Claim 4.16 violated at stage-2 step %d: potential grew by \
                   %d < floor %d"
                  step delta_u floor;
            }
    in
    (budget, heap, trace, result)
  in
  Log.debug (fun k ->
      k "running %s vs %s (M=%d, c=%s, audit=%a)" (Program.name program)
        (Manager.name manager) m
        (match c with Some c -> Fmt.str "%g" c | None -> "unlimited")
        Pc_audit.Oracle.pp_level audit);
  let budget, heap, _, result =
    T.Span.time exec_span (fun () -> exec ~record:false)
  in
  (match result with
  | Ok () -> ()
  | Error v -> (
      T.Counter.incr violations_c;
      let info =
        {
          Pc_audit.Report.program = Program.name program;
          manager = Manager.name manager;
          m;
          n = Program.max_size program;
          c = audit_c;
          backend = Heap.backend heap;
          theory_h;
        }
      in
      (* Triage: repeat the execution with the recorder on, then
         delta-debug the captured trace and emit a repro bundle
         (raising Report.Reported). If the repeat does not reproduce
         the violation — a nondeterministic program — the violation
         propagates as-is, without a bundle. *)
      match T.Span.time triage_span (fun () -> exec ~record:true) with
      | _, _, Some trace, Error v' when v'.Pc_audit.Oracle.oracle = v.oracle ->
          Pc_audit.Report.capture ?dir:failures_dir ~info ~violation:v ~trace
            ()
      | _ -> raise (Pc_audit.Oracle.Violation v)));
  Heap.check_invariants heap;
  if !T.Sink.active then begin
    T.Gauge.set hs_over_m_g
      (float_of_int (Heap.high_water heap) /. float_of_int m);
    (match theory_h with
    | Some floor -> T.Gauge.set theory_floor_g floor
    | None -> ());
    T.Gauge.set fragmentation_g
      (Metrics.external_fragmentation (Metrics.snapshot heap))
  end;
  Log.info (fun k ->
      k "%s vs %s: HS=%d (%.3f x M), moved %d of %d allocated"
        (Program.name program) (Manager.name manager) (Heap.high_water heap)
        (float_of_int (Heap.high_water heap) /. float_of_int m)
        (Heap.moved_total heap)
        (Heap.allocated_total heap));
  {
    program = Program.name program;
    manager = Manager.name manager;
    m;
    n = Program.max_size program;
    c;
    hs = Heap.high_water heap;
    hs_over_m = float_of_int (Heap.high_water heap) /. float_of_int m;
    allocated = Heap.allocated_total heap;
    moved = Heap.moved_total heap;
    freed = Heap.freed_total heap;
    final_live = Heap.live_words heap;
    compliant = Budget.is_compliant budget;
  }

let pp_outcome ppf o =
  Fmt.pf ppf
    "%-16s vs %-12s M=%-8d n=%-6d c=%-6s HS=%-9d HS/M=%.3f moved=%d%s"
    o.program o.manager o.m o.n
    (match o.c with Some c -> Fmt.str "%g" c | None -> "-")
    o.hs o.hs_over_m o.moved
    (if o.compliant then "" else "  [BUDGET VIOLATED]")
