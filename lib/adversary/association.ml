open Pc_heap

(* The object-to-chunk association maintained by P_F's second stage
   (Section 4, Figure 4).

   At step i the heap is partitioned into aligned chunks of 2^i words;
   chunk k covers [k*2^i, (k+1)*2^i). Each chunk carries a set of
   associated objects — whole objects, or halves of objects whose two
   halves live on two chunks (Claim 4.15). Association survives both
   compaction (the entry stays at the old chunk while the object turns
   into a ghost) and de-allocation-by-migration of halves; it is the
   program's instrument for keeping every used chunk at density 2^-l,
   and the analysis' instrument for charging heap words (the potential
   function u, Definition 4.4, is computed from this structure). *)

type entry = { oid : Oid.t; obj_size : int; half : bool }

let entry_size e = if e.half then e.obj_size / 2 else e.obj_size

type chunk = {
  mutable entries : entry list;
  mutable sum : int; (* total entry size *)
  mutable middle : bool; (* member of the set E (Definition 4.12) *)
}

type t = {
  ell : int; (* density exponent: target density 2^-ell *)
  mutable chunk_log : int; (* current chunk size is 2^chunk_log *)
  mutable chunks : (int, chunk) Hashtbl.t; (* chunk index -> state *)
  locs : (int, int list) Hashtbl.t; (* oid as int -> chunk indices *)
}

let create ~chunk_log ~ell =
  if ell < 1 then invalid_arg "Association.create: need l >= 1";
  {
    ell;
    chunk_log;
    chunks = Hashtbl.create 256;
    locs = Hashtbl.create 256;
  }

let chunk_log t = t.chunk_log
let chunk_words t = 1 lsl t.chunk_log
let ell t = t.ell

let get_chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some ch -> ch
  | None ->
      let ch = { entries = []; sum = 0; middle = false } in
      Hashtbl.add t.chunks idx ch;
      ch

let find_chunk t idx = Hashtbl.find_opt t.chunks idx
let sum t idx = match find_chunk t idx with Some ch -> ch.sum | None -> 0

let entries t idx =
  match find_chunk t idx with Some ch -> ch.entries | None -> []

let is_middle t idx =
  match find_chunk t idx with Some ch -> ch.middle | None -> false

let locs_of t oid =
  Option.value ~default:[] (Hashtbl.find_opt t.locs (Oid.to_int oid))

let add_loc t oid idx =
  Hashtbl.replace t.locs (Oid.to_int oid) (idx :: locs_of t oid)

let remove_loc t oid idx =
  let rec remove_once = function
    | [] -> []
    | x :: rest -> if x = idx then rest else x :: remove_once rest
  in
  match remove_once (locs_of t oid) with
  | [] -> Hashtbl.remove t.locs (Oid.to_int oid)
  | l -> Hashtbl.replace t.locs (Oid.to_int oid) l

let add_entry t idx e =
  let ch = get_chunk t idx in
  ch.entries <- e :: ch.entries;
  ch.sum <- ch.sum + entry_size e;
  ch.middle <- false;
  add_loc t e.oid idx

(* Remove one entry (by oid and half-ness) from a chunk. *)
let remove_entry t idx (e : entry) =
  let ch = get_chunk t idx in
  let rec remove_once = function
    | [] -> invalid_arg "Association.remove_entry: entry not found"
    | x :: rest ->
        if Oid.equal x.oid e.oid && x.half = e.half then rest
        else x :: remove_once rest
  in
  ch.entries <- remove_once ch.entries;
  ch.sum <- ch.sum - entry_size e;
  remove_loc t e.oid idx

let assoc_whole t oid ~obj_size ~chunk =
  add_entry t chunk { oid; obj_size; half = false }

let assoc_halves t oid ~obj_size ~chunk1 ~chunk2 =
  if chunk1 = chunk2 then assoc_whole t oid ~obj_size ~chunk:chunk1
  else begin
    add_entry t chunk1 { oid; obj_size; half = true };
    add_entry t chunk2 { oid; obj_size; half = true }
  end

let set_middle t idx =
  let ch = get_chunk t idx in
  if ch.entries <> [] then
    invalid_arg "Association.set_middle: chunk has entries";
  ch.middle <- true

(* Reset a chunk for reuse by a fresh allocation (Algorithm 1 line
   14): drop every remaining entry (they are ghosts — a live object
   associated with a chunk intersects it, and a reused chunk holds no
   live words). Returns the oids that lost their last entry, i.e. the
   ghosts that cease to exist. *)
let reset_chunk t idx =
  match find_chunk t idx with
  | None -> []
  | Some ch ->
      let vanished =
        List.filter_map
          (fun e ->
            remove_loc t e.oid idx;
            if locs_of t e.oid = [] then Some e.oid else None)
          ch.entries
      in
      ch.entries <- [];
      ch.sum <- 0;
      ch.middle <- false;
      vanished

(* Migrate a half entry out of [from_idx] to the chunk holding the
   object's other half (Algorithm 1 line 13: "when a half object is
   freed, associate it with the chunk that contains the other half").
   If both halves meet they merge into a whole entry. Returns the
   destination chunk, or [None] when no other half exists (the object
   is a ghost whose other chunk was reused): the entry then simply
   disappears, and the caller should drop the object if this was its
   last entry. *)
let migrate_half t ~from_idx (e : entry) =
  if not e.half then invalid_arg "Association.migrate_half: whole entry";
  remove_entry t from_idx e;
  match locs_of t e.oid with
  | [] -> None
  | [ other ] ->
      (* The other half is at [other]: merge into a whole entry. *)
      remove_entry t other e;
      add_entry t other { e with half = false };
      Some other
  | _ :: _ :: _ ->
      invalid_arg "Association.migrate_half: more than two locations"

(* Step change (Algorithm 1 line 12): chunk size doubles, pairs of
   chunks merge, entry sets take unions; two halves of one object
   landing in the same merged chunk become a whole entry. The middle
   set E empties (Definition 4.12). *)
let merge_step t =
  let merged = Hashtbl.create (Hashtbl.length t.chunks) in
  let new_locs = Hashtbl.create (Hashtbl.length t.locs) in
  Hashtbl.iter
    (fun idx (ch : chunk) ->
      let nidx = idx / 2 in
      let nch =
        match Hashtbl.find_opt merged nidx with
        | Some nch -> nch
        | None ->
            let nch = { entries = []; sum = 0; middle = false } in
            Hashtbl.add merged nidx nch;
            nch
      in
      List.iter
        (fun e ->
          nch.entries <- e :: nch.entries;
          nch.sum <- nch.sum + entry_size e)
        ch.entries)
    t.chunks;
  (* Merge half-pairs that now share a chunk. *)
  Hashtbl.iter
    (fun nidx (nch : chunk) ->
      (* Count the halves per oid once, then rebuild in one pass: a
         pair's first half is dropped and its second becomes the whole
         entry — the same list the remove-on-second-encounter fold
         produced, without the quadratic mid-list removal. An object
         has at most two half entries in total, so a count is a pair
         indicator. *)
      let halves = Hashtbl.create 8 in
      List.iter
        (fun (e : entry) ->
          if e.half then begin
            let key = Oid.to_int e.oid in
            Hashtbl.replace halves key
              (1 + Option.value ~default:0 (Hashtbl.find_opt halves key))
          end)
        nch.entries;
      let seen = Hashtbl.create 8 in
      let merged_entries =
        List.fold_left
          (fun acc (e : entry) ->
            if not e.half then e :: acc
            else begin
              let key = Oid.to_int e.oid in
              if Hashtbl.find halves key = 2 then
                if Hashtbl.mem seen key then { e with half = false } :: acc
                else begin
                  Hashtbl.add seen key ();
                  acc
                end
              else e :: acc
            end)
          [] nch.entries
      in
      nch.entries <- merged_entries;
      (* sums are unchanged by half-merging: two halves = one whole *)
      List.iter
        (fun e ->
          let key = Oid.to_int e.oid in
          let cur = Option.value ~default:[] (Hashtbl.find_opt new_locs key) in
          Hashtbl.replace new_locs key (nidx :: cur))
        merged_entries)
    merged;
  t.chunks <- merged;
  Hashtbl.reset t.locs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.locs k v) new_locs;
  t.chunk_log <- t.chunk_log + 1

let chunk_indices t = Hashtbl.fold (fun idx _ acc -> idx :: acc) t.chunks []
let chunk_count t = Hashtbl.length t.chunks

(* The potential function u(t) of Definition 4.4:
   u = sum_D u_D - n/4, with u_D = 2^i for middle chunks and
   min(2^ell * sum_D, 2^i) otherwise. In the paper n/4 is the largest
   chunk ever (the last chunk may stick out of the heap); we take the
   same deduction. *)
let potential t ~n =
  let cw = chunk_words t in
  let total = ref 0 in
  Hashtbl.iter
    (fun _ (ch : chunk) ->
      let ud =
        if ch.middle then cw
        else min ((1 lsl t.ell) * ch.sum) cw
      in
      total := !total + ud)
    t.chunks;
  !total - (n / 4)

let check_invariants t =
  Hashtbl.iter
    (fun idx (ch : chunk) ->
      let s = List.fold_left (fun acc e -> acc + entry_size e) 0 ch.entries in
      if s <> ch.sum then failwith "Association: chunk sum drift";
      if ch.middle && ch.entries <> [] then
        failwith "Association: middle chunk with entries";
      List.iter
        (fun e ->
          if not (List.mem idx (locs_of t e.oid)) then
            failwith "Association: missing loc back-reference")
        ch.entries)
    t.chunks;
  Hashtbl.iter
    (fun oid idxs ->
      if List.length idxs > 2 then failwith "Association: more than 2 locs";
      List.iter
        (fun idx ->
          let present =
            List.exists
              (fun e -> Oid.to_int e.oid = oid)
              (entries t idx)
          in
          if not present then failwith "Association: stale loc")
        idxs)
    t.locs
