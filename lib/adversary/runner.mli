(** Executes a (program, manager) interaction and reports [HS(A, P)]
    together with the rest of the paper's accounting. *)

type outcome = {
  program : string;
  manager : string;
  m : int;
  n : int;
  c : float option;
  hs : int;  (** the heap size [HS(A, P)]: high-water mark in words *)
  hs_over_m : float;
  allocated : int;
  moved : int;
  freed : int;
  final_live : int;
  compliant : bool;  (** the c-partial rule was never violated *)
}

val run :
  ?backend:Pc_heap.Backend.t ->
  ?c:float ->
  ?check:bool ->
  ?check_every:int ->
  ?audit:Pc_audit.Oracle.level ->
  ?audit_every:int ->
  ?audit_c:float ->
  ?theory_h:float ->
  ?failures_dir:string ->
  program:Program.t ->
  manager:Pc_manager.Manager.t ->
  unit ->
  outcome
(** [c] bounds the manager's compaction (omit for unlimited). [backend]
    selects the heap substrate (default {!Pc_heap.Backend.default}).
    [check] (default false) samples the full heap invariant check
    during the run: one event in [check_every] (default 64) triggers
    the O(live) sweep — set [check_every:1] to check every event, tests
    only. A full check always runs once at the end of every
    execution.

    [audit] (default [Off]) attaches the {!Pc_audit.Oracle} layer to
    the run: the heap's event stream is checked (budget, live-space,
    structural, and — at [Differential] — the backend-divergence
    watchdog; [audit_every], default 64, is the structural-sweep
    sampling period). On any violation — including
    {!Pc_heap.Budget.Exceeded} and PF's {!Pf.Audit_failure} — the
    deterministic execution is repeated with a {!Pc_heap.Trace}
    recorder attached (clean runs pay no recording cost), the captured
    trace is delta-debugged, and an atomic repro bundle is emitted
    under [failures_dir] (default {!Pc_audit.Report.default_dir}); the
    run raises {!Pc_audit.Report.Reported}. [audit_c] audits a compaction bound
    different from the enforced one (test hook: an unlimited budget
    plus [audit_c] models a manager whose budget debit is broken);
    it defaults to [c]. [theory_h] additionally asserts Theorem 1's
    floor [HS/M >= theory_h] on the final heap. *)

val pp_outcome : Format.formatter -> outcome -> unit
