(** Executes a (program, manager) interaction and reports [HS(A, P)]
    together with the rest of the paper's accounting. *)

type outcome = {
  program : string;
  manager : string;
  m : int;
  n : int;
  c : float option;
  hs : int;  (** the heap size [HS(A, P)]: high-water mark in words *)
  hs_over_m : float;
  allocated : int;
  moved : int;
  freed : int;
  final_live : int;
  compliant : bool;  (** the c-partial rule was never violated *)
}

val run :
  ?backend:Pc_heap.Backend.t ->
  ?c:float ->
  ?check:bool ->
  ?check_every:int ->
  program:Program.t ->
  manager:Pc_manager.Manager.t ->
  unit ->
  outcome
(** [c] bounds the manager's compaction (omit for unlimited). [backend]
    selects the heap substrate (default {!Pc_heap.Backend.default}).
    [check] (default false) samples the full heap invariant check
    during the run: one event in [check_every] (default 64) triggers
    the O(live) sweep — set [check_every:1] to check every event, tests
    only. A full check always runs once at the end of every
    execution. *)

val pp_outcome : Format.formatter -> outcome -> unit
