(** Minimal JSON reader/writer for the result cache and the benchmark
    report — no external dependency.

    Finite floats are printed with enough digits ([%.17g]) that every
    double round-trips bit-exactly; whole doubles print without a
    fractional part and therefore parse back as [Int] (use {!to_float}
    when a float is expected). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:bool -> t -> string
val of_string : string -> t
(** Raises {!Parse_error} on malformed input. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on a missing field or a non-object. *)

val member_exn : string -> t -> t
(** Raises {!Parse_error} when the field is missing. *)

val to_int : t -> int option
(** Also accepts whole [Float]s. *)

val to_float : t -> float option
(** Also accepts [Int]s. *)

val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
