(* Minimal JSON: just enough for the result cache and the benchmark
   report — no external dependency. Floats print with "%.17g" so that
   every finite double round-trips bit-exactly through the cache. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep whole doubles readable ("8" not "8.0000000000000000"). *)
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.is_integer (f /. 0.) then
        (* nan/inf are not JSON; the cache never stores them, but do
           not emit garbage if a caller does. *)
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          write b ~indent ~level:(level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          write b ~indent ~level:(level + 1) item)
        fields;
      newline ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 256 in
  write b ~indent ~level:0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let len = String.length st.src in
  while
    st.pos < len
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st ch =
  match peek st with
  | Some c when c = ch -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" ch)

let parse_literal st word v =
  let len = String.length word in
  if
    st.pos + len <= String.length st.src
    && String.sub st.src st.pos len = word
  then begin
    st.pos <- st.pos + len;
    v
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
            if st.pos + 4 >= String.length st.src then
              fail st "truncated \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail st "bad \\u escape"
            in
            (* The cache only ever stores ASCII; decode the BMP code
               point as UTF-8 without surrogate-pair handling. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end;
            st.pos <- st.pos + 4
        | _ -> fail st "bad escape");
        st.pos <- st.pos + 1;
        go ()
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let len = String.length st.src in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < len && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then begin
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  end
  else begin
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st "bad number")
  end

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let member_exn k v =
  match member k v with
  | Some x -> x
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" k))

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
