open Pc_heap

(* Mesh-style compaction (Powers, Tench, Berger, McGregor, "Mesh:
   Compacting Memory Management for C/C++ Applications", arXiv
   1902.04738), adapted to the paper's single-address-space model.

   The heap is carved into page-aligned pages on a fixed grid, each
   dedicated to one power-of-two size class and sliced into equal
   slots; objects occupy the head of a slot. Compaction never moves an
   object within a page: when a fresh page cannot be sited without
   raising the high-water mark, the manager looks for two pages of the
   same class whose occupancy bitmaps are disjoint and *meshes* them —
   every object of the sparser page moves to the identical slot offset
   in the other page (free exactly because the bitmaps do not
   overlap), and the emptied page's grid cell is reused for the new
   page. Meshing is only legal between pages of one class, where slot
   offsets coincide.

   The moves charge the c-partial budget like any other relocation
   (the merge costs exactly [Evict.window_cost] of the source page);
   when the budget cannot cover any meshable pair the heap simply
   grows, as Mesh itself degrades to plain segregated storage when no
   meshable span exists.

   Empty pages are retired eagerly, which keeps the aligned-grid
   siting argument of [Segregated] valid: a fully-free grid cell never
   belongs to a live page, so siting through an aligned fit query is
   safe. *)

module Int_map = Map.Make (Int)

type page = {
  base : int;
  class_ : int; (* log2 of slot size *)
  slots : Bytes.t; (* slot occupancy bitmap, one byte per slot *)
  mutable used : int;
}

type state = {
  page_words : int;
  pair_window : int; (* sparsest pages considered per class when meshing *)
  mutable pages : page Int_map.t; (* base -> page *)
  mutable by_class : page Int_map.t array; (* class -> base -> page *)
  mutable avail : int Int_map.t array; (* class -> bases with free slots *)
}

let max_class = 48

let create_state ~page_words ~pair_window =
  if not (Word.is_pow2 page_words) then
    invalid_arg "Meshing.make: page size must be a power of two";
  {
    page_words;
    pair_window;
    pages = Int_map.empty;
    by_class = Array.make max_class Int_map.empty;
    avail = Array.make max_class Int_map.empty;
  }

let slot_size class_ = Word.pow2 class_
let slots_per_page state class_ = max 1 (state.page_words / slot_size class_)

let add_avail state p =
  state.avail.(p.class_) <- Int_map.add p.base p.base state.avail.(p.class_)

let remove_avail state p =
  state.avail.(p.class_) <- Int_map.remove p.base state.avail.(p.class_)

let add_page state p =
  state.pages <- Int_map.add p.base p state.pages;
  state.by_class.(p.class_) <- Int_map.add p.base p state.by_class.(p.class_)

let retire state p =
  remove_avail state p;
  state.pages <- Int_map.remove p.base state.pages;
  state.by_class.(p.class_) <- Int_map.remove p.base state.by_class.(p.class_)

let find_free_slot p =
  let n = Bytes.length p.slots in
  let rec loop i =
    if i >= n then invalid_arg "Meshing: no free slot in avail page"
    else if Bytes.get p.slots i = '\000' then i
    else loop (i + 1)
  in
  loop 0

let class_of_size state size =
  let c = Word.log2_ceil (max 1 size) in
  (* Objects at least a page wide get a dedicated span of pages. *)
  if slot_size c >= state.page_words then None else Some c

let bitmaps_disjoint a b =
  let n = Bytes.length a.slots in
  let rec loop i =
    i >= n
    || ((Bytes.get a.slots i = '\000' || Bytes.get b.slots i = '\000')
       && loop (i + 1))
  in
  Bytes.length b.slots = n && loop 0

(* Merge [src] into [dst]: every object keeps its slot offset, the
   destination slots are free by bitmap disjointness. Returns the
   released grid cell. *)
let mesh state ctx src dst =
  let heap = Ctx.heap ctx in
  let objs =
    Heap.objects_in heap ~start:src.base ~stop:(src.base + state.page_words)
  in
  List.iter
    (fun (o : Heap.obj) -> Heap.move heap o.oid ~dst:(dst.base + (o.addr - src.base)))
    objs;
  Bytes.iteri
    (fun i occupied -> if occupied = '\001' then Bytes.set dst.slots i '\001')
    src.slots;
  dst.used <- dst.used + src.used;
  if dst.used = Bytes.length dst.slots then remove_avail state dst;
  retire state src;
  src.base

(* Find the cheapest affordable meshable pair across all classes and
   merge it. Only the [pair_window] sparsest pages per class are
   paired, keeping the search bounded and deterministic. *)
let try_mesh state ctx =
  let heap = Ctx.heap ctx in
  let budget = Ctx.budget ctx in
  let result = ref None in
  let class_ = ref 0 in
  while !result = None && !class_ < max_class do
    let pages =
      Int_map.fold (fun _ p acc -> p :: acc) state.by_class.(!class_) []
    in
    (match pages with
    | [] | [ _ ] -> ()
    | pages ->
        let by_sparsity =
          List.sort
            (fun a b -> compare (a.used, a.base) (b.used, b.base))
            pages
        in
        let cands =
          List.filteri (fun i _ -> i < state.pair_window) by_sparsity
        in
        let rec try_pairs = function
          | [] -> ()
          | src :: rest ->
              let rec against = function
                | [] -> try_pairs rest
                | dst :: rest' ->
                    if
                      bitmaps_disjoint src dst
                      && Budget.can_move budget
                           (Evict.window_cost heap ~start:src.base
                              ~size:state.page_words)
                    then result := Some (mesh state ctx src dst)
                    else against rest'
              in
              against rest
        in
        try_pairs cands);
    incr class_
  done;
  !result

let make ?(page_words = 1 lsl 6) ?(pair_window = 6) () =
  let state = create_state ~page_words ~pair_window in
  let site_span ctx ~span =
    let free = Ctx.free_index ctx in
    let size = span * state.page_words in
    match
      Free_index.first_aligned_fit_gap free ~size ~align:state.page_words
    with
    | Some a -> a
    | None -> Word.align_up (Free_index.frontier free) ~align:state.page_words
  in
  (* Site a fresh single page: an existing grid cell if one is free,
     the tail if it stays under the high-water mark, and otherwise a
     cell released by meshing — growing only as the last resort. *)
  let site_page ctx =
    let free = Ctx.free_index ctx in
    match
      Free_index.first_aligned_fit free ~size:state.page_words
        ~align:state.page_words
    with
    | Free_index.Gap a -> a
    | Free_index.Tail tail ->
        if tail + state.page_words <= Heap.high_water (Ctx.heap ctx) then tail
        else begin
          match try_mesh state ctx with Some cell -> cell | None -> tail
        end
  in
  let alloc ctx ~size =
    match class_of_size state size with
    | None ->
        site_span ctx
          ~span:((size + state.page_words - 1) / state.page_words)
    | Some class_ ->
        let p =
          match Int_map.min_binding_opt state.avail.(class_) with
          | Some (_, base) -> Int_map.find base state.pages
          | None ->
              let base = site_page ctx in
              let p =
                {
                  base;
                  class_;
                  slots = Bytes.make (slots_per_page state class_) '\000';
                  used = 0;
                }
              in
              add_page state p;
              add_avail state p;
              p
        in
        let slot = find_free_slot p in
        Bytes.set p.slots slot '\001';
        p.used <- p.used + 1;
        if p.used = Bytes.length p.slots then remove_avail state p;
        p.base + (slot * slot_size class_)
  in
  let on_free _ctx (o : Heap.obj) =
    let base = Word.align_down o.addr ~align:state.page_words in
    match Int_map.find_opt base state.pages with
    | None -> () (* large object span; nothing to do *)
    | Some p ->
        let slot = (o.addr - p.base) / slot_size p.class_ in
        if Bytes.get p.slots slot = '\001' then begin
          Bytes.set p.slots slot '\000';
          if p.used = Bytes.length p.slots then add_avail state p;
          p.used <- p.used - 1;
          if p.used = 0 then retire state p
        end
  in
  Manager.make ~name:"meshing"
    ~description:
      "c-partial; Mesh-style size-class pages, merged when occupancy bitmaps \
       are disjoint (no intra-page moves)"
    ~on_free alloc
