(* Named manager constructors, for the CLI, benches and examples.
   Constructors, not managers: several managers are stateful and must
   be fresh per execution.

   The registry is extensible: [register] appends an entry and rejects
   duplicate keys loudly — silently shadowing an earlier entry would
   let two sweeps disagree about what a key means. Registration order
   is the presentation order everywhere (CLI listing, test suites,
   benches), so it must stay deterministic: the built-ins below
   register at module initialisation, in the order written. *)

type entry = {
  key : string;
  summary : string;
  moving : bool; (* uses the compaction budget *)
  construct : unit -> Manager.t;
}

let registered : entry list ref = ref []

let register e =
  if List.exists (fun e' -> e'.key = e.key) !registered then
    Fmt.invalid_arg
      "Registry.register: duplicate manager key %S (an entry with this key is \
       already registered)"
      e.key;
  registered := !registered @ [ e ]

let builtins =
  [
    {
      key = "first-fit";
      summary = "lowest-addressed gap that fits";
      moving = false;
      construct = (fun () -> First_fit.manager);
    };
    {
      key = "next-fit";
      summary = "first fit from a roving pointer";
      moving = false;
      construct = (fun () -> Next_fit.make ());
    };
    {
      key = "best-fit";
      summary = "smallest gap that fits";
      moving = false;
      construct = (fun () -> Best_fit.manager);
    };
    {
      key = "worst-fit";
      summary = "largest gap";
      moving = false;
      construct = (fun () -> Worst_fit.manager);
    };
    {
      key = "aligned-fit";
      summary = "Robson's A_o: lowest size-aligned address";
      moving = false;
      construct = (fun () -> Aligned_fit.manager);
    };
    {
      key = "buddy";
      summary = "binary buddy blocks";
      moving = false;
      construct = (fun () -> Buddy.make ());
    };
    {
      key = "segregated";
      summary = "slab-style size-class blocks";
      moving = false;
      construct = (fun () -> Segregated.make ());
    };
    {
      key = "tlsf";
      summary = "TLSF-style two-level good fit";
      moving = false;
      construct = (fun () -> Tlsf.make ());
    };
    {
      key = "compacting";
      summary = "c-partial first fit with window eviction";
      moving = true;
      construct = (fun () -> Compacting.make ());
    };
    {
      key = "bp-simple";
      summary = "Bendersky-Petrank (c+1)M bump-and-compact";
      moving = true;
      construct = (fun () -> Bp_simple.make ());
    };
    {
      key = "improved-ac";
      summary = "Theorem-2-inspired aligned placement with eviction";
      moving = true;
      construct = (fun () -> Improved_ac.make ());
    };
    {
      key = "semispace";
      summary = "two-space copying collector";
      moving = true;
      construct = (fun () -> Semispace.make ());
    };
    {
      key = "sliding";
      summary = "first fit with periodic full sliding compaction";
      moving = true;
      construct = (fun () -> Sliding.make ());
    };
    {
      key = "meshing";
      summary = "Mesh-style pages merged when bitmaps are disjoint";
      moving = true;
      construct = (fun () -> Meshing.make ());
    };
    {
      key = "compact-fit";
      summary = "Compact-fit size-class pages with move-on-free";
      moving = true;
      construct = (fun () -> Compact_fit.make ());
    };
    {
      key = "cost-oblivious";
      summary = "resizing buckets paid for by allocation volume";
      moving = true;
      construct = (fun () -> Cost_oblivious.make ());
    };
    {
      key = "polylog-realloc";
      summary = "aligned placement with power-of-two-epoch repacks";
      moving = true;
      construct = (fun () -> Polylog_realloc.make ());
    };
  ]

let () = List.iter register builtins
let entries () = !registered
let keys () = List.map (fun e -> e.key) !registered
let find key = List.find_opt (fun e -> e.key = key) !registered

let construct_exn key =
  match find key with
  | Some e -> e.construct ()
  | None ->
      Fmt.invalid_arg "unknown manager %S (available: %s)" key
        (String.concat ", " (keys ()))
