open Pc_heap

(* Shared chunk-eviction machinery for compacting managers.

   To reuse an occupied region, a manager must relocate every live
   object intersecting it, paying the objects' sizes out of the
   compaction budget. This is exactly the reuse the paper's program PF
   is engineered to make expensive: PF keeps every chunk at density
   >= 2^-l > 1/c, so each reuse costs more budget than the triggering
   allocation recharges.

   Candidate windows are derived from the largest free gaps rather
   than from a scan of all live objects: a window that is cheap to
   clear is mostly free, so it overlaps one of the big gaps. This
   keeps each eviction attempt at O(max_gaps * log live) instead of
   O(live). *)

let src = Logs.Src.create "pc.evict" ~doc:"window eviction decisions"

module Log = (val Logs.src_log src : Logs.LOG)

type candidate = { window_start : int; cost : int }

(* Telemetry: how much window-scanning the compacting managers do and
   how often it pays off. The window-cost distribution is only
   sampled at the [Full] level. *)
module T = Pc_telemetry

let candidates_c = T.Registry.counter "evict.candidates_scanned"
let attempts_c = T.Registry.counter "evict.attempts"
let cleared_c = T.Registry.counter "evict.windows_cleared"
let evicted_words_c = T.Registry.counter "evict.evicted_words"
let window_cost_h = T.Registry.histogram "evict.window_cost"

(* Cost of clearing the aligned [size]-word window at [start]: total
   size of the live objects intersecting it (straddlers count fully —
   they must be moved whole). *)
let window_cost heap ~start ~size =
  Heap.fold_objects_in heap ~start ~stop:(start + size) ~init:0
    ~f:(fun acc (o : Heap.obj) -> acc + o.size)

(* Candidate [align]-aligned [size]-word windows below the frontier,
   cheapest first, discovered around the [max_gaps] largest gaps.
   Windows costing more than [cost_cap] may report any cost above it.

   This runs on every heap-growing allocation of the compacting
   managers, so it must not allocate per considered window. *)
let candidates_capped ?(max_gaps = 64) ~cost_cap ctx ~size ~align =
  let heap = Ctx.heap ctx in
  let free = Ctx.free_index ctx in
  let frontier = Free_index.frontier free in
  let cands = ref [] in
  (* The same few windows surface from many gaps; an O(1)
     generation-stamped dedup beats rescanning the candidate list on
     every hit. *)
  let gen = ctx.Ctx.scratch_gen + 1 in
  ctx.Ctx.scratch_gen <- gen;
  let need = (frontier / align) + 2 in
  if Array.length ctx.Ctx.scratch < need then
    ctx.Ctx.scratch <- Array.make (max need 1024) 0;
  let seen = ctx.Ctx.scratch in
  let consider w =
    if w >= 0 && Array.unsafe_get seen w <> gen then begin
      Array.unsafe_set seen w gen;
      let start = w * align in
      if start + size <= frontier then begin
        let cost =
          Heap.clear_cost heap ~start ~stop:(start + size) ~cap:cost_cap
        in
        if !T.Sink.active then begin
          T.Counter.incr candidates_c;
          if !T.Sink.full_active then T.Histogram.observe window_cost_h cost
        end;
        cands := { window_start = start; cost } :: !cands
      end
    end
  in
  (* Two divisions per inspected gap add up; managers align windows to
     powers of two, so shift instead when possible. *)
  let ashift =
    if align > 0 && align land (align - 1) = 0 then begin
      let s = ref 0 in
      while 1 lsl !s < align do
        incr s
      done;
      !s
    end
    else -1
  in
  let wof = if ashift >= 0 then fun a -> a lsr ashift else fun a -> a / align in
  Free_index.iter_largest_gaps free ~k:max_gaps (fun gs gl ->
      (* Windows overlapping this gap; a bounded number per gap. *)
      let w0 = wof gs and w1 = wof (gs + gl - 1) in
      let wlimit = min w1 (w0 + 3) in
      for w = w0 to wlimit do
        consider w
      done;
      if w1 > wlimit then consider w1);
  match !cands with
  | ([] | [ _ ]) as l -> l
  | l ->
      List.sort
        (fun a b ->
          match Int.compare a.cost b.cost with
          | 0 -> Int.compare a.window_start b.window_start
          | c -> c)
        l

let window_candidates ?max_gaps ctx ~size ~align =
  candidates_capped ?max_gaps ~cost_cap:max_int ctx ~size ~align

(* Default relocation target: lowest-addressed existing gap that does
   not overlap the window being cleared. *)
let relocate_first_fit ctx ~avoid (o : Heap.obj) =
  let free = Ctx.free_index ctx in
  match Free_index.first_fit_gap free ~size:o.size with
  | Some a when a + o.size <= Interval.start avoid || a >= Interval.stop avoid
    ->
      Some a
  | Some _ ->
      Free_index.first_fit_from free ~from:(Interval.stop avoid) ~size:o.size
  | None -> None

(* Clear one window and return its start address. Objects are moved
   largest-first so that relocation failures surface before most of the
   budget is spent. Returns [None] when no candidate window can be
   cleared within [move_cap] words of budget. *)
let try_evict ?(max_attempts = 3) ?max_gaps ?relocate ctx ~size ~align
    ~move_cap =
  let relocate =
    match relocate with Some f -> f | None -> relocate_first_fit
  in
  let heap = Ctx.heap ctx in
  let budget = Ctx.budget ctx in
  let cap = min move_cap (Budget.available budget) in
  let candidates =
    if Free_index.gap_count (Ctx.free_index ctx) = 0 then []
    else
      candidates_capped ?max_gaps ~cost_cap:cap ctx ~size ~align
      |> List.filter (fun c -> c.cost <= cap)
  in
  let attempt { window_start; _ } =
    T.Counter.incr attempts_c;
    let avoid = Interval.of_extent ~start:window_start ~len:size in
    let objs =
      Heap.objects_in heap ~start:window_start ~stop:(window_start + size)
      |> List.sort (fun (a : Heap.obj) (b : Heap.obj) ->
             Int.compare b.size a.size)
    in
    let ok =
      List.for_all
        (fun (o : Heap.obj) ->
          match relocate ctx ~avoid o with
          | Some dst ->
              Heap.move heap o.oid ~dst;
              T.Counter.add evicted_words_c o.size;
              true
          | None -> false)
        objs
    in
    if ok then Some window_start else None
  in
  let rec first_success attempts = function
    | [] -> None
    | _ when attempts = 0 -> None
    | c :: rest -> (
        match attempt c with
        | Some _ as res -> res
        | None -> first_success (attempts - 1) rest)
  in
  let result = first_success max_attempts candidates in
  (match result with
  | Some a ->
      T.Counter.incr cleared_c;
      Log.debug (fun k ->
          k "cleared window [%d,%d) (budget left %d)" a (a + size)
            (Budget.available budget))
  | None ->
      Log.debug (fun k ->
          k "no evictable %d-word window (%d candidates within cap %d)" size
            (List.length candidates) cap));
  result
