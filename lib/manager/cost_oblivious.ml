open Pc_heap

(* Cost-oblivious storage reallocation (Bender, Farach-Colton, Fekete,
   Fineman, Gilbert, "Cost-oblivious storage reallocation", arXiv
   1404.2019), simplified to the paper's model. Each power-of-two size
   class owns one *bucket*: a contiguous slotted arena. A full bucket
   is resized — an arena of twice the capacity is sited elsewhere and
   the class's objects migrate into it compactly. The scheme is
   cost-oblivious in the paper's sense: resizes happen on a doubling
   schedule driven purely by occupancy, never by inspecting what a
   particular placement will cost; the moves are paid for by the
   allocation volume accumulated since the class last resized, which
   is exactly the s/c recharge of the c-partial budget. When the
   budget has not recharged enough the resize is postponed and the
   allocation overflows to free space outside every bucket, until a
   later resize can afford to restart the class compactly.

   Bucket arenas reserve their free slots (slot padding included), so
   every placement query must skip extents overlapping an owned arena
   — a gap in the free index may still be bucket-reserved. Empty
   buckets are dropped eagerly, shrinking the class back to its
   initial capacity at the next allocation. *)

module Int_map = Map.Make (Int)

type arena = {
  base : int;
  class_ : int; (* log2 of slot size *)
  cap : int; (* slots *)
  slots : Bytes.t; (* slot occupancy bitmap, one byte per slot *)
  mutable used : int;
}

type state = {
  init_slots : int;
  mutable arenas : arena option array; (* class -> current bucket *)
}

let max_class = 62
let slot_size class_ = Word.pow2 class_
let arena_words a = a.cap * slot_size a.class_

let create_state ~init_slots =
  if init_slots < 1 then
    invalid_arg "Cost_oblivious.make: init_slots must be positive";
  { init_slots; arenas = Array.make max_class None }

(* End of the first owned arena overlapping [addr, addr+size), if
   any. Deterministic: arenas are scanned in class order. *)
let overlapping state addr size =
  let stop = addr + size in
  let found = ref None in
  Array.iter
    (function
      | Some a when !found = None ->
          let a_stop = a.base + arena_words a in
          if addr < a_stop && a.base < stop then found := Some a_stop
      | _ -> ())
    state.arenas;
  !found

(* Lowest [align]-divisible address of a [size]-word extent that is
   both free and outside every owned arena. *)
let site state ctx ~size ~align =
  let free = Ctx.free_index ctx in
  let rec in_gaps from =
    match Free_index.first_aligned_fit_from free ~from ~size ~align with
    | None -> None
    | Some a -> (
        match overlapping state a size with
        | None -> Some a
        | Some stop -> in_gaps (Word.align_up stop ~align))
  in
  let rec at_tail a =
    match overlapping state a size with
    | None -> a
    | Some stop -> at_tail (Word.align_up stop ~align)
  in
  match in_gaps 0 with
  | Some a -> a
  | None -> at_tail (Word.align_up (Free_index.frontier free) ~align)

(* Double (or found) the class's bucket and migrate its objects,
   oldest address first; [None] when the budget cannot pay yet. *)
let resize state ctx class_ =
  let heap = Ctx.heap ctx in
  let slot = slot_size class_ in
  let old = state.arenas.(class_) in
  let cost =
    match old with
    | None -> 0
    | Some a -> Evict.window_cost heap ~start:a.base ~size:(arena_words a)
  in
  if not (Budget.can_move (Ctx.budget ctx) cost) then None
  else begin
    let cap =
      match old with None -> state.init_slots | Some a -> a.cap * 2
    in
    let base = site state ctx ~size:(cap * slot) ~align:slot in
    let slots = Bytes.make cap '\000' in
    let migrants =
      match old with
      | None -> []
      | Some a ->
          Heap.objects_in heap ~start:a.base ~stop:(a.base + arena_words a)
    in
    List.iteri
      (fun i (o : Heap.obj) ->
        Heap.move heap o.oid ~dst:(base + (i * slot));
        Bytes.set slots i '\001')
      migrants;
    let a =
      { base; class_; cap; slots; used = List.length migrants }
    in
    state.arenas.(class_) <- Some a;
    Some a
  end

let find_free_slot a =
  let rec loop i =
    if i >= a.cap then invalid_arg "Cost_oblivious: no free slot in bucket"
    else if Bytes.get a.slots i = '\000' then i
    else loop (i + 1)
  in
  loop 0

let make ?(init_slots = 4) () =
  let state = create_state ~init_slots in
  let alloc ctx ~size =
    let class_ = Word.log2_ceil (max 1 size) in
    let arena =
      match state.arenas.(class_) with
      | Some a when a.used < a.cap -> Some a
      | _ -> resize state ctx class_
    in
    match arena with
    | Some a ->
        let slot = find_free_slot a in
        Bytes.set a.slots slot '\001';
        a.used <- a.used + 1;
        a.base + (slot * slot_size class_)
    | None ->
        (* Resize postponed: overflow outside every bucket; no
           bookkeeping — the extent dies with the object. *)
        let free = Ctx.free_index ctx in
        let rec in_gaps from =
          match Free_index.first_fit_from free ~from ~size with
          | None -> None
          | Some a -> (
              match overlapping state a size with
              | None -> Some a
              | Some stop -> in_gaps stop)
        in
        let rec at_tail a =
          match overlapping state a size with
          | None -> a
          | Some stop -> at_tail stop
        in
        (match in_gaps 0 with
        | Some a -> a
        | None -> at_tail (Free_index.frontier free))
  in
  let on_free _ctx (o : Heap.obj) =
    let class_ = Word.log2_ceil (max 1 o.size) in
    match state.arenas.(class_) with
    | Some a
      when o.addr >= a.base
           && o.addr < a.base + arena_words a
           && (o.addr - a.base) mod slot_size class_ = 0 ->
        let slot = (o.addr - a.base) / slot_size class_ in
        if Bytes.get a.slots slot = '\001' then begin
          Bytes.set a.slots slot '\000';
          a.used <- a.used - 1;
          (* Drop empty buckets: the class restarts at init capacity,
             the resizing-down half of the scheme. *)
          if a.used = 0 then state.arenas.(class_) <- None
        end
    | _ -> () (* overflow object; nothing to track *)
  in
  Manager.make ~name:"cost-oblivious"
    ~description:
      "c-partial; cost-oblivious resizing buckets: doubling size-class \
       arenas, migrations paid by allocation volume"
    ~on_free alloc
