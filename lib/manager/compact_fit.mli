(** Compact-fit manager (arXiv 1404.1830): size-class pages keeping at
    most one partial page per class. A free in a full page breaks the
    invariant; the repair moves (one object plugged per hole) run at
    the start of the next allocation, because the interaction model
    reports compaction to the program only while serving an
    allocation. When the c-partial budget cannot pay, the invariant
    lapses gracefully until the budget recharges.

    Stateful — construct one manager per execution. [page_words] must
    be a power of two (default [2{^6}]). *)

val make : ?page_words:int -> unit -> Manager.t
