(** The execution context a memory manager operates in.

    Bundles the heap, the c-partial compaction budget, and the
    program's declared live-space bound [M]. Budget accounting is wired
    automatically: heap [Alloc] events recharge the budget and [Move]
    events drain it, raising [Pc_heap.Budget.Exceeded] when a manager
    compacts beyond its quota. *)

type t = {
  heap : Pc_heap.Heap.t;
  free : Pc_heap.Free_index.t;  (** [Heap.free_index heap], cached *)
  budget : Pc_heap.Budget.t;
  live_bound : int;  (** the paper's [M], in words *)
  mutable scratch : int array;
      (** generation-stamped planner scratch; a slot is marked iff it
          holds [scratch_gen] *)
  mutable scratch_gen : int;
}

val create :
  ?backend:Pc_heap.Backend.t ->
  ?budget:Pc_heap.Budget.t ->
  live_bound:int ->
  unit ->
  t
(** Fresh heap with budget listeners installed. [budget] defaults to
    {!Pc_heap.Budget.unlimited}; [backend] to
    {!Pc_heap.Backend.default}. *)

val heap : t -> Pc_heap.Heap.t
val budget : t -> Pc_heap.Budget.t
val live_bound : t -> int
val free_index : t -> Pc_heap.Free_index.t
