(** Cost-oblivious resizing-bucket manager (arXiv 1404.2019): each
    power-of-two size class owns one slotted arena that doubles when
    full, migrating the class's objects compactly; migrations are paid
    by the allocation volume recharged into the c-partial budget, and
    postponed resizes overflow outside every bucket.

    Stateful — construct one manager per execution. [init_slots] is
    the capacity a class starts (and restarts) with (default 4). *)

val make : ?init_slots:int -> unit -> Manager.t
