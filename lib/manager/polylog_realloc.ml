open Pc_heap

(* Polylogarithmic-overhead reallocation (Jin, "Optimal resizable
   arrays and reallocation-limited allocation", arXiv 2602.15417;
   Farach-Colton and Sheffield, arXiv 2405.12152), simplified to
   power-of-two epochs. The full algorithms maintain a recursive
   partition of the address space and rebuild geometrically larger
   pieces on a binary-counter schedule, paying polylog moved words per
   allocated word. This manager keeps the two load-bearing ingredients
   and drops the recursion:

   - placement is buddy-aligned (Robson's A_o): a size-s object goes
     to the lowest free address divisible by round_up_pow2 s, so
     between rebuilds fragmentation stays within the aligned-fit
     guarantee;

   - rebuilds fire at power-of-two epochs of allocation volume: when
     cumulative allocation crosses the next doubling (starting at the
     live bound M), the heap is repacked bottom-up — each live object
     in address order is re-placed at the lowest aligned position
     strictly below its current address, charging the budget per move
     and stopping as soon as the quota runs dry, which makes every
     rebuild a c-partial compaction.

   Doubling epochs mean O(log(s / M)) rebuilds over a run — the
   polylog schedule — while each rebuild moves at most the live set. *)

let make ?(first_epoch_factor = 1.0) () =
  let next_epoch = ref 0 in
  let repack ctx =
    let heap = Ctx.heap ctx in
    let budget = Ctx.budget ctx in
    let free = Ctx.free_index ctx in
    let dry = ref false in
    List.iter
      (fun (o : Heap.obj) ->
        if not !dry then begin
          let align = Word.round_up_pow2 o.size in
          match Free_index.first_aligned_fit_gap free ~size:o.size ~align with
          | Some a when a < o.addr ->
              if Budget.can_move budget o.size then Heap.move heap o.oid ~dst:a
              else dry := true
          | _ -> ()
        end)
      (Heap.live_list heap)
  in
  let alloc ctx ~size =
    let heap = Ctx.heap ctx in
    if !next_epoch = 0 then
      next_epoch :=
        max 1
          (int_of_float (first_epoch_factor *. float (Ctx.live_bound ctx)));
    if Heap.allocated_total heap >= !next_epoch then begin
      while Heap.allocated_total heap >= !next_epoch do
        next_epoch := !next_epoch * 2
      done;
      repack ctx
    end;
    let align = Word.round_up_pow2 size in
    match Free_index.first_aligned_fit (Ctx.free_index ctx) ~size ~align with
    | Free_index.Gap a | Free_index.Tail a -> a
  in
  Manager.make ~name:"polylog-realloc"
    ~description:
      "c-partial; aligned placement repacked at power-of-two epochs of \
       allocation volume"
    alloc
