(** Mesh-style compacting manager (arXiv 1902.04738): page-aligned
    size-class pages with per-page occupancy bitmaps; when a fresh page
    would raise the high-water mark, two same-class pages with disjoint
    bitmaps are merged slot-for-slot (no intra-page moves) and the
    released grid cell is reused. Merges charge the c-partial budget
    exactly [Evict.window_cost] of the source page.

    Stateful — construct one manager per execution. [page_words] must
    be a power of two (default [2{^6}]); [pair_window] bounds how many
    of the sparsest pages per class are considered when pairing
    (default 6). *)

val make : ?page_words:int -> ?pair_window:int -> unit -> Manager.t
