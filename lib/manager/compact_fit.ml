open Pc_heap

(* Compact-fit (Craciunas, Kirsch, Payer, Röck, Sokolova; the
   allocator is analysed in arXiv 1404.1830): size-class pages with
   the *compact invariant* — each class keeps at most one partial
   (not-full) page; every other page is full. Allocation always goes
   to the class's partial page. A free in a full page breaks the
   invariant; Compact-fit repairs it by moving one object of the
   class's partial page into the hole — the scheme's constant-time
   incremental compaction.

   One adaptation to the paper's interaction model: the driver reports
   compaction moves to the program only while serving an allocation
   request (Section 2.1), so the plug is deferred — a free marks its
   class dirty and the repair moves run at the start of the next
   allocation, draining the class back to at most one partial page.
   The moves charge the c-partial budget like any other relocation;
   when the budget cannot pay, the class simply stays dirty until the
   budget recharges (the invariant lapses instead of the budget rule).

   Pages live on an aligned grid with eager retirement of empty pages
   (the [Segregated] siting argument), so siting a fresh page through
   an aligned fit query is safe. *)

module Int_map = Map.Make (Int)

type page = {
  base : int;
  class_ : int; (* log2 of slot size *)
  slots : Bytes.t; (* slot occupancy bitmap, one byte per slot *)
  mutable used : int;
}

type state = {
  page_words : int;
  mutable pages : page Int_map.t; (* base -> page *)
  mutable partial : int Int_map.t array; (* class -> bases with free slots *)
  dirty : bool array; (* class -> has > 1 partial page *)
}

let max_class = 48

let create_state ~page_words =
  if not (Word.is_pow2 page_words) then
    invalid_arg "Compact_fit.make: page size must be a power of two";
  {
    page_words;
    pages = Int_map.empty;
    partial = Array.make max_class Int_map.empty;
    dirty = Array.make max_class false;
  }

let slot_size class_ = Word.pow2 class_
let slots_per_page state class_ = max 1 (state.page_words / slot_size class_)

let add_partial state p =
  state.partial.(p.class_) <- Int_map.add p.base p.base state.partial.(p.class_)

let remove_partial state p =
  state.partial.(p.class_) <- Int_map.remove p.base state.partial.(p.class_)

let retire state p =
  remove_partial state p;
  state.pages <- Int_map.remove p.base state.pages

let find_free_slot p =
  let n = Bytes.length p.slots in
  let rec loop i =
    if i >= n then invalid_arg "Compact_fit: no free slot in partial page"
    else if Bytes.get p.slots i = '\000' then i
    else loop (i + 1)
  in
  loop 0

let highest_used_slot p =
  let rec loop i =
    if i < 0 then invalid_arg "Compact_fit: no used slot in donor page"
    else if Bytes.get p.slots i = '\001' then i
    else loop (i - 1)
  in
  loop (Bytes.length p.slots - 1)

let class_of_size state size =
  let c = Word.log2_ceil (max 1 size) in
  (* Objects at least a page wide get a dedicated span of pages. *)
  if slot_size c >= state.page_words then None else Some c

(* Restore the compact invariant for one class: while two partial
   pages coexist, move the highest slot of the highest-addressed one
   into the lowest hole of the lowest-addressed one. Stops when the
   budget runs dry, leaving the class dirty for a later attempt. *)
let repair state ctx class_ =
  let heap = Ctx.heap ctx in
  let budget = Ctx.budget ctx in
  let slot_words = slot_size class_ in
  let dry = ref false in
  while (not !dry) && Int_map.cardinal state.partial.(class_) > 1 do
    let _, src_base = Int_map.max_binding state.partial.(class_) in
    let _, dst_base = Int_map.min_binding state.partial.(class_) in
    let src = Int_map.find src_base state.pages in
    let dst = Int_map.find dst_base state.pages in
    let j = highest_used_slot src in
    let migrant =
      match
        Heap.objects_in heap
          ~start:(src.base + (j * slot_words))
          ~stop:(src.base + ((j + 1) * slot_words))
      with
      | [ obj ] -> obj
      | _ -> invalid_arg "Compact_fit: donor slot out of sync"
    in
    if not (Budget.can_move budget migrant.size) then dry := true
    else begin
      let hole = find_free_slot dst in
      Heap.move heap migrant.oid ~dst:(dst.base + (hole * slot_words));
      Bytes.set dst.slots hole '\001';
      dst.used <- dst.used + 1;
      if dst.used = Bytes.length dst.slots then remove_partial state dst;
      Bytes.set src.slots j '\000';
      src.used <- src.used - 1;
      if src.used = 0 then retire state src
    end
  done;
  if Int_map.cardinal state.partial.(class_) <= 1 then
    state.dirty.(class_) <- false

let make ?(page_words = 1 lsl 6) () =
  let state = create_state ~page_words in
  let site_page ctx ~span =
    let free = Ctx.free_index ctx in
    let size = span * state.page_words in
    match
      Free_index.first_aligned_fit_gap free ~size ~align:state.page_words
    with
    | Some a -> a
    | None -> Word.align_up (Free_index.frontier free) ~align:state.page_words
  in
  let alloc ctx ~size =
    Array.iteri
      (fun class_ dirty -> if dirty then repair state ctx class_)
      state.dirty;
    match class_of_size state size with
    | None ->
        (* Large object: dedicated span of whole pages, dying with the
           object — exactly as in [Segregated]. *)
        site_page ctx ~span:((size + state.page_words - 1) / state.page_words)
    | Some class_ ->
        let p =
          match Int_map.min_binding_opt state.partial.(class_) with
          | Some (_, base) -> Int_map.find base state.pages
          | None ->
              let base = site_page ctx ~span:1 in
              let p =
                {
                  base;
                  class_;
                  slots = Bytes.make (slots_per_page state class_) '\000';
                  used = 0;
                }
              in
              state.pages <- Int_map.add base p state.pages;
              add_partial state p;
              p
        in
        let slot = find_free_slot p in
        Bytes.set p.slots slot '\001';
        p.used <- p.used + 1;
        if p.used = Bytes.length p.slots then remove_partial state p;
        p.base + (slot * slot_size class_)
  in
  let on_free _ctx (o : Heap.obj) =
    let base = Word.align_down o.addr ~align:state.page_words in
    match Int_map.find_opt base state.pages with
    | None -> () (* large object span; nothing to do *)
    | Some p ->
        let slot = (o.addr - p.base) / slot_size p.class_ in
        if Bytes.get p.slots slot = '\001' then begin
          Bytes.set p.slots slot '\000';
          if p.used = Bytes.length p.slots then add_partial state p;
          p.used <- p.used - 1;
          if p.used = 0 then retire state p
          else if Int_map.cardinal state.partial.(p.class_) > 1 then
            state.dirty.(p.class_) <- true
        end
  in
  Manager.make ~name:"compact-fit"
    ~description:
      "c-partial; Compact-fit size-class pages: plug moves keep at most one \
       partial page per class"
    ~on_free alloc
