open Pc_heap

(* The execution context a memory manager operates in: the heap, the
   c-partial compaction budget, and the program's declared live-space
   bound M (part of the model — the (c+1)M manager of [4] needs it).

   Budget accounting is wired automatically: every Alloc event
   recharges the budget, every Move event drains it (raising
   Budget.Exceeded when a manager over-compacts). Managers therefore
   never touch the budget except to *query* the remaining quota. *)

type t = {
  heap : Heap.t;
  free : Free_index.t; (* Heap.free_index heap, cached: managers query
                          it on every placement decision and the
                          dispatch wrapper should be built only once *)
  budget : Budget.t;
  live_bound : int;
  (* Generation-stamped scratch for planners (Evict's window dedup):
     a slot is considered marked iff it holds the current generation,
     so clearing between uses is a single counter bump. *)
  mutable scratch : int array;
  mutable scratch_gen : int;
}

(* Telemetry: words flowing through the budget — recharge on alloc,
   drain on move — so snapshots show compaction work against the c·x
   quota the paper grants per x-word allocation. *)
module T = Pc_telemetry

let recharge_words_c = T.Registry.counter "manager.budget_recharge_words"
let compacted_words_c = T.Registry.counter "manager.compacted_words"

let create ?backend ?budget ~live_bound () =
  if live_bound <= 0 then invalid_arg "Ctx.create: non-positive live bound";
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let heap = Heap.create ?backend () in
  Heap.on_event heap (function
    | Heap.Alloc o ->
        Budget.on_alloc budget o.size;
        if !T.Sink.active then T.Counter.add recharge_words_c o.size
    | Heap.Move m ->
        Budget.charge_move budget m.size;
        if !T.Sink.active then T.Counter.add compacted_words_c m.size
    | Heap.Free _ -> ());
  {
    heap;
    free = Heap.free_index heap;
    budget;
    live_bound;
    scratch = [||];
    scratch_gen = 0;
  }

let heap t = t.heap
let budget t = t.budget
let live_bound t = t.live_bound
let free_index t = t.free
