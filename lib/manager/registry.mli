(** Named manager constructors for the CLI, benches and examples.
    Constructors rather than values: several managers are stateful and
    must be fresh per execution. *)

type entry = {
  key : string;
  summary : string;
  moving : bool;  (** whether the manager uses the compaction budget *)
  construct : unit -> Manager.t;
}

val register : entry -> unit
(** Append an entry to the registry. Raises [Invalid_argument] if an
    entry with the same [key] is already registered — keys are looked
    up by name from sweeps and the CLI, so shadowing must fail loudly
    rather than change what a key means mid-run. *)

val entries : unit -> entry list
(** All registered entries, in registration order (built-ins first). *)

val keys : unit -> string list
val find : string -> entry option

val construct_exn : string -> Manager.t
(** Raises [Invalid_argument] on an unknown key. *)
