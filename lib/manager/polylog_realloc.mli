(** Polylog-reallocation manager (arXiv 2602.15417, 2405.12152,
    simplified): Robson-aligned placement plus bottom-up aligned
    repacks at power-of-two epochs of allocation volume, each repack a
    budget-capped c-partial compaction.

    Stateful — construct one manager per execution. The first epoch
    fires at [first_epoch_factor * M] allocated words (default 1.0),
    doubling thereafter. *)

val make : ?first_epoch_factor:float -> unit -> Manager.t
