(* Human-readable rendering of a snapshot: per-phase span breakdown
   with ASCII bars, the top-k hottest per-job spans (the engine names
   them "job:<digest-prefix>..."), then counters, gauges and
   histograms. Powers `pc report`. *)

let bar_width = 28

let bar frac =
  let n =
    int_of_float (Float.round (frac *. float_of_int bar_width))
    |> Int.max 0 |> Int.min bar_width
  in
  String.make n '#' ^ String.make (bar_width - n) ' '

let is_job s = String.length s.Snapshot.s_name >= 4 && String.sub s.s_name 0 4 = "job:"

let pp_duration ppf s =
  if s >= 1.0 then Format.fprintf ppf "%8.3f s " s
  else if s >= 1e-3 then Format.fprintf ppf "%8.3f ms" (s *. 1e3)
  else Format.fprintf ppf "%8.1f us" (s *. 1e6)

let pp_spans ppf title spans =
  if spans <> [] then begin
    let total_of s = s.Snapshot.s_total in
    let sorted = List.sort (fun a b -> compare (total_of b) (total_of a)) spans in
    let max_total = total_of (List.hd sorted) in
    let denom = if max_total > 0.0 then max_total else 1.0 in
    Format.fprintf ppf "@,%s@," title;
    Format.fprintf ppf "  %-32s %10s %10s %10s %10s@," "span" "count" "total"
      "self" "max";
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-32s %10d %a %a %a  %s@," s.Snapshot.s_name
          s.s_count pp_duration s.s_total pp_duration s.s_self pp_duration
          s.s_max
          (bar (s.s_total /. denom)))
      sorted
  end

let pp_histogram ppf h =
  Format.fprintf ppf "  %-32s count %d  zeros %d  sum %d  min %d  max %d@,"
    h.Snapshot.h_name h.h_count h.h_zeros h.h_sum h.h_min h.h_max;
  let max_c =
    List.fold_left (fun acc (_, _, c) -> Int.max acc c) 1 h.h_buckets
  in
  List.iter
    (fun (lo, hi, c) ->
      let hi_s = if hi = max_int then "inf" else string_of_int hi in
      Format.fprintf ppf "    [%10d, %10s) %10d  %s@," lo hi_s c
        (bar (float_of_int c /. float_of_int max_c)))
    h.h_buckets

let pp ?(top = 5) ppf (t : Snapshot.t) =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "telemetry snapshot (%s, level=%s)@," Snapshot.schema
    t.level;
  let jobs, phases = List.partition is_job t.spans in
  pp_spans ppf "phases:" phases;
  (if jobs <> [] then
     let sorted =
       List.sort (fun a b -> compare b.Snapshot.s_total a.Snapshot.s_total) jobs
     in
     let k = Int.min top (List.length sorted) in
     let hottest = List.filteri (fun i _ -> i < k) sorted in
     pp_spans ppf
       (Printf.sprintf "hottest jobs (top %d of %d):" k (List.length jobs))
       hottest);
  if t.counters <> [] then begin
    Format.fprintf ppf "@,counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12d@," name v)
      t.counters
  end;
  if t.gauges <> [] then begin
    Format.fprintf ppf "@,gauges:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12.4f@," name v)
      t.gauges
  end;
  if t.histograms <> [] then begin
    Format.fprintf ppf "@,histograms:@,";
    List.iter (pp_histogram ppf) t.histograms
  end;
  Format.pp_close_box ppf ()

let to_string ?top t = Format.asprintf "%a" (fun ppf -> pp ?top ppf) t
