(** Log2-bucketed histograms over non-negative integer samples —
    no-ops while telemetry is disabled. Bucket [k] counts samples in
    [2^k, 2^(k+1)); samples <= 0 land in a dedicated zero cell. Create
    through {!Registry.histogram} so snapshots see them. *)

type t

val v : string -> t
val name : t -> string

val observe : t -> int -> unit

val count : t -> int
(** Total samples, zeros included. *)

val sum : t -> int
(** Sum of the positive samples. *)

val zeros : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val nbuckets : int

val bucket_index : int -> int
(** [bucket_index v] for [v >= 1] is [floor(log2 v)]. Pure — usable
    regardless of the telemetry level. Raises [Invalid_argument] on
    [v < 1]. *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] with [lo] inclusive, [hi] exclusive. *)

val bucket_count : t -> int -> int
val iter_buckets : t -> (int -> int -> unit) -> unit
(** Iterates non-empty buckets in index order. *)

val reset : t -> unit
