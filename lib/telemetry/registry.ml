(* Process-wide instrument registry. Creation is idempotent by name
   (the same name always returns the same instrument) and serialised
   by a mutex so instruments can be created lazily from any domain;
   the hot path of an instrument itself never touches the registry. *)

let lock = Mutex.create ()
let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 64
let gauges : (string, Gauge.t) Hashtbl.t = Hashtbl.create 32
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32
let spans : (string, Span.t) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let intern tbl make name =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some x -> x
      | None ->
          let x = make name in
          Hashtbl.add tbl name x;
          x)

let counter name = intern counters Counter.v name
let gauge name = intern gauges Gauge.v name
let histogram name = intern histograms Histogram.v name
let span name = intern spans Span.v name

let set_level = Sink.set
let level = Sink.level

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Counter.reset c) counters;
      Hashtbl.iter (fun _ g -> Gauge.reset g) gauges;
      Hashtbl.iter (fun _ h -> Histogram.reset h) histograms;
      Hashtbl.iter (fun _ s -> Span.reset s) spans);
  Span.reset_stack ()

let sorted_values tbl name_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> String.compare (name_of a) (name_of b))

let snapshot () =
  with_lock (fun () ->
      let counters =
        sorted_values counters Counter.name
        |> List.filter_map (fun c ->
               let v = Counter.value c in
               if v = 0 then None else Some (Counter.name c, v))
      in
      let gauges =
        sorted_values gauges Gauge.name
        |> List.filter_map (fun g ->
               if Gauge.is_set g then Some (Gauge.name g, Gauge.value g)
               else None)
      in
      let histograms =
        sorted_values histograms Histogram.name
        |> List.filter_map (fun h ->
               if Histogram.count h = 0 then None
               else
                 let buckets = ref [] in
                 Histogram.iter_buckets h (fun k c ->
                     let lo, hi = Histogram.bucket_bounds k in
                     buckets := (lo, hi, c) :: !buckets);
                 Some
                   {
                     Snapshot.h_name = Histogram.name h;
                     h_count = Histogram.count h;
                     h_zeros = Histogram.zeros h;
                     h_sum = Histogram.sum h;
                     h_min = Histogram.min_value h;
                     h_max = Histogram.max_value h;
                     h_buckets = List.rev !buckets;
                   })
      in
      let spans =
        sorted_values spans Span.name
        |> List.filter_map (fun s ->
               if Span.count s = 0 then None
               else
                 Some
                   {
                     Snapshot.s_name = Span.name s;
                     s_count = Span.count s;
                     s_total = Span.total s;
                     s_self = Span.self s;
                     s_max = Span.max_interval s;
                   })
      in
      {
        Snapshot.level = Sink.to_string (Sink.level ());
        counters;
        gauges;
        histograms;
        spans;
      })
