(* Nestable timed spans, aggregated per span value: count, inclusive
   total, self time (total minus nested spans) and the worst single
   interval. The nesting stack is domain-local (Domain.DLS) so worker
   domains of the sweep pool time their own jobs without interleaving
   frames; the aggregate cells of a span are written by whichever
   domain exits it (single-writer per span by construction — the
   engine pre-creates one span per job on the main domain and hands it
   to exactly one worker).

   Robustness over precision: an [exit_] that does not match the top
   frame (telemetry enabled mid-span, or a caller bug) is dropped
   rather than corrupting the stack. *)

type t = {
  name : string;
  mutable count : int;
  mutable total : float; (* seconds, nested spans included *)
  mutable child : float; (* seconds attributed to nested spans *)
  mutable max : float; (* worst single interval *)
}

type frame = { span : t; start : float; mutable child_acc : float }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let v name = { name; count = 0; total = 0.0; child = 0.0; max = 0.0 }
let name t = t.name
let count t = t.count
let total t = t.total
let self t = Float.max 0.0 (t.total -. t.child)
let max_interval t = t.max

let enter span =
  if !Sink.active then begin
    let st = Domain.DLS.get stack_key in
    st := { span; start = Unix.gettimeofday (); child_acc = 0.0 } :: !st
  end

let exit_ span =
  if !Sink.active then begin
    let st = Domain.DLS.get stack_key in
    match !st with
    | frame :: rest when frame.span == span ->
        st := rest;
        let elapsed = Unix.gettimeofday () -. frame.start in
        span.count <- span.count + 1;
        span.total <- span.total +. elapsed;
        span.child <- span.child +. frame.child_acc;
        if elapsed > span.max then span.max <- elapsed;
        (match rest with
        | parent :: _ -> parent.child_acc <- parent.child_acc +. elapsed
        | [] -> ())
    | _ -> ()
  end

let time span f =
  enter span;
  match f () with
  | x ->
      exit_ span;
      x
  | exception e ->
      exit_ span;
      raise e

let depth () = List.length !(Domain.DLS.get stack_key)

let reset t =
  t.count <- 0;
  t.total <- 0.0;
  t.child <- 0.0;
  t.max <- 0.0

let reset_stack () = Domain.DLS.get stack_key := []
