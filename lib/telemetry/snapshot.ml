(* A point-in-time capture of every active instrument, with a stable
   schema ("pc-telemetry/1") so snapshots written by `pc simulate
   --telemetry-out`, the sweep engine and the bench harness can all be
   fed back to `pc report` or external tooling. *)

module Json = Pc_json.Json

let schema = "pc-telemetry/1"

type histogram = {
  h_name : string;
  h_count : int;
  h_zeros : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int * int) list; (* lo inclusive, hi exclusive, count *)
}

type span = {
  s_name : string;
  s_count : int;
  s_total : float; (* seconds, inclusive *)
  s_self : float; (* seconds, nested spans excluded *)
  s_max : float; (* worst single interval *)
}

type t = {
  level : string;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram list;
  spans : span list;
}

let empty = { level = "off"; counters = []; gauges = []; histograms = []; spans = [] }

(* JSON encoding *)

let histogram_to_json h =
  Json.Obj
    [
      ("name", Json.String h.h_name);
      ("count", Json.Int h.h_count);
      ("zeros", Json.Int h.h_zeros);
      ("sum", Json.Int h.h_sum);
      ("min", Json.Int h.h_min);
      ("max", Json.Int h.h_max);
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int c) ])
             h.h_buckets) );
    ]

let span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.s_name);
      ("count", Json.Int s.s_count);
      ("total_s", Json.Float s.s_total);
      ("self_s", Json.Float s.s_self);
      ("max_s", Json.Float s.s_max);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("level", Json.String t.level);
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) t.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) t.gauges) );
      ("histograms", Json.List (List.map histogram_to_json t.histograms));
      ("spans", Json.List (List.map span_to_json t.spans));
    ]

(* Validating decoder *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected int" name)

let as_float name = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> Error (Printf.sprintf "field %S: expected number" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected string" name)

let int_field name j =
  let* v = field name j in
  as_int name v

let float_field name j =
  let* v = field name j in
  as_float name v

let string_field name j =
  let* v = field name j in
  as_string name v

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let bucket_of_json j =
  let* lo = int_field "lo" j in
  let* hi = int_field "hi" j in
  let* c = int_field "count" j in
  Ok (lo, hi, c)

let histogram_of_json j =
  let* h_name = string_field "name" j in
  let* h_count = int_field "count" j in
  let* h_zeros = int_field "zeros" j in
  let* h_sum = int_field "sum" j in
  let* h_min = int_field "min" j in
  let* h_max = int_field "max" j in
  let* bl = field "buckets" j in
  let* h_buckets =
    match bl with
    | Json.List l -> map_result bucket_of_json l
    | _ -> Error "histogram buckets: expected list"
  in
  Ok { h_name; h_count; h_zeros; h_sum; h_min; h_max; h_buckets }

let span_of_json j =
  let* s_name = string_field "name" j in
  let* s_count = int_field "count" j in
  let* s_total = float_field "total_s" j in
  let* s_self = float_field "self_s" j in
  let* s_max = float_field "max_s" j in
  Ok { s_name; s_count; s_total; s_self; s_max }

let of_json j =
  let* s = string_field "schema" j in
  if s <> schema then Error (Printf.sprintf "unknown snapshot schema %S (want %S)" s schema)
  else
    let* level = string_field "level" j in
    let* counters =
      match Json.member "counters" j with
      | Some (Json.Obj fields) ->
          map_result
            (fun (name, v) ->
              let* i = as_int name v in
              Ok (name, i))
            fields
      | Some _ -> Error "counters: expected object"
      | None -> Error "missing field \"counters\""
    in
    let* gauges =
      match Json.member "gauges" j with
      | Some (Json.Obj fields) ->
          map_result
            (fun (name, v) ->
              let* f = as_float name v in
              Ok (name, f))
            fields
      | Some _ -> Error "gauges: expected object"
      | None -> Error "missing field \"gauges\""
    in
    let* histograms =
      match Json.member "histograms" j with
      | Some (Json.List l) -> map_result histogram_of_json l
      | Some _ -> Error "histograms: expected list"
      | None -> Error "missing field \"histograms\""
    in
    let* spans =
      match Json.member "spans" j with
      | Some (Json.List l) -> map_result span_of_json l
      | Some _ -> Error "spans: expected list"
      | None -> Error "missing field \"spans\""
    in
    Ok { level; counters; gauges; histograms; spans }

let validate = of_json

(* CSV encoding: one wide table, one row per instrument; columns not
   applicable to an instrument kind are left empty. *)

let csv_header = "kind,name,count,value,sum,min,max,total_s,self_s,max_s"

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  let row kind name ~count ~value ~sum ~min ~max ~total ~self ~max_s =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n" kind name count value
         sum min max total self max_s)
  in
  let i = string_of_int in
  let f x = Printf.sprintf "%.9f" x in
  List.iter
    (fun (name, v) ->
      row "counter" name ~count:"" ~value:(i v) ~sum:"" ~min:"" ~max:""
        ~total:"" ~self:"" ~max_s:"")
    t.counters;
  List.iter
    (fun (name, v) ->
      row "gauge" name ~count:"" ~value:(f v) ~sum:"" ~min:"" ~max:"" ~total:""
        ~self:"" ~max_s:"")
    t.gauges;
  List.iter
    (fun h ->
      row "histogram" h.h_name ~count:(i h.h_count) ~value:"" ~sum:(i h.h_sum)
        ~min:(i h.h_min) ~max:(i h.h_max) ~total:"" ~self:"" ~max_s:"")
    t.histograms;
  List.iter
    (fun s ->
      row "span" s.s_name ~count:(i s.s_count) ~value:"" ~sum:"" ~min:""
        ~max:"" ~total:(f s.s_total) ~self:(f s.s_self) ~max_s:(f s.s_max))
    t.spans;
  Buffer.contents buf
