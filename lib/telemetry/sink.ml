(* The process-wide telemetry switch. Instruments are cheap mutable
   cells guarded by [active]: when telemetry is off an instrument
   operation is one ref load and an untaken branch, so instrumented hot
   paths (every heap event, every gap search) stay measurably free —
   the ≤1% budget on sim-lower-point-c16 (EXPERIMENTS.md).

   [Summary] turns on the aggregate instruments (counters, gauges,
   spans, low-rate histograms); [Full] additionally enables the
   per-event instruments (allocation-size histograms, the HS/M
   trajectory sampler) that callers gate on [full_on]. Telemetry never
   influences a simulation's control flow: with any level, results are
   bit-identical to [Off] (pinned by a QCheck property in
   test_telemetry.ml). *)

type level = Off | Summary | Full

(* Exposed refs, not functions: the disabled path of every instrument
   inlines to a single load. Mutate only through [set]. *)
let active = ref false
let full_active = ref false
let current = ref Off

let level () = !current

let set lvl =
  current := lvl;
  active := lvl <> Off;
  full_active := lvl = Full

let on () = !active
let full_on () = !full_active

let to_string = function Off -> "off" | Summary -> "summary" | Full -> "full"

let of_string = function
  | "off" -> Ok Off
  | "summary" -> Ok Summary
  | "full" -> Ok Full
  | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown telemetry level %S (expected off, summary or full)" s))

let of_string_exn s =
  match of_string s with Ok l -> l | Error (`Msg m) -> invalid_arg m

let pp ppf l = Fmt.string ppf (to_string l)
