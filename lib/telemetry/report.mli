(** Human-readable snapshot rendering: per-phase span breakdown with
    ASCII bars, top-k hottest ["job:*"] spans, counters, gauges and
    histograms. Backs the [pc report] subcommand. *)

val pp : ?top:int -> Format.formatter -> Snapshot.t -> unit
(** [top] bounds the hottest-jobs table (default 5). *)

val to_string : ?top:int -> Snapshot.t -> string
