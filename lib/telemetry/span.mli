(** Nestable timed spans aggregated per span value — no-ops while
    telemetry is disabled. The nesting stack is domain-local. Create
    through {!Registry.span} so snapshots see them. *)

type t

val v : string -> t
val name : t -> string
val count : t -> int

val total : t -> float
(** Inclusive seconds (nested spans counted). *)

val self : t -> float
(** [total] minus the time spent in spans nested inside this one. *)

val max_interval : t -> float

val enter : t -> unit

val exit_ : t -> unit
(** Pops the matching frame; a mismatched exit (telemetry enabled
    mid-span) is dropped silently. *)

val time : t -> (unit -> 'a) -> 'a
(** [time span f] runs [f] inside the span, exception-safe. *)

val depth : unit -> int
(** Current nesting depth on this domain's stack (for tests). *)

val reset : t -> unit
val reset_stack : unit -> unit
