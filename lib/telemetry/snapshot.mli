(** Stable, serialisable capture of the registry's instruments.

    The JSON form carries a [schema] tag ({!schema}, currently
    ["pc-telemetry/1"]); {!of_json} validates it so downstream tooling
    fails loudly on a version skew instead of misreading fields. *)

val schema : string

type histogram = {
  h_name : string;
  h_count : int; (* total samples, zeros included *)
  h_zeros : int;
  h_sum : int; (* sum of positive samples *)
  h_min : int;
  h_max : int;
  h_buckets : (int * int * int) list;
      (* (lo, hi, count): lo inclusive, hi exclusive; non-empty only *)
}

type span = {
  s_name : string;
  s_count : int;
  s_total : float; (* seconds, nested spans included *)
  s_self : float; (* seconds, nested spans excluded *)
  s_max : float; (* worst single interval, seconds *)
}

type t = {
  level : string; (* telemetry level the capture ran at *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram list;
  spans : span list;
}

val empty : t
val to_json : t -> Pc_json.Json.t

val of_json : Pc_json.Json.t -> (t, string) result
(** Checks the schema tag and every field shape. *)

val validate : Pc_json.Json.t -> (t, string) result
(** Alias of {!of_json} for intent at call sites that only care that a
    snapshot is well-formed. *)

val csv_header : string

val to_csv : t -> string
(** One wide table, one row per instrument; inapplicable columns are
    empty. Header is {!csv_header}. *)
