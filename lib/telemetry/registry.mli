(** Process-wide instrument registry.

    Instruments are interned by name: the first call creates, later
    calls (from any domain) return the same instrument. Keep the
    returned value in a [let] near the code it instruments — lookup is
    mutex-protected and not meant for hot paths. *)

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : string -> Histogram.t
val span : string -> Span.t

val set_level : Sink.level -> unit
val level : unit -> Sink.level

val reset : unit -> unit
(** Zero every registered instrument (instruments stay registered) and
    clear this domain's span stack. *)

val snapshot : unit -> Snapshot.t
(** Capture every instrument with activity, sorted by name. Zero
    counters, unset gauges, and empty histograms/spans are omitted so
    the snapshot only reflects what actually ran. *)
