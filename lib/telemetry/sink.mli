(** The process-wide telemetry switch (see the implementation notes on
    the zero-cost-when-disabled discipline). *)

type level = Off | Summary | Full

val active : bool ref
(** [true] iff the level is [Summary] or [Full]. Read-only for
    instruments ([if !Sink.active then ...] is the whole disabled-path
    cost); mutate only through {!set}. *)

val full_active : bool ref
(** [true] iff the level is [Full] — gates per-event instruments. *)

val level : unit -> level
val set : level -> unit
val on : unit -> bool
val full_on : unit -> bool
val to_string : level -> string
val of_string : string -> (level, [ `Msg of string ]) result
val of_string_exn : string -> level
val pp : level Fmt.t
