(* Log2-bucketed histograms over non-negative integer samples.

   Bucket [k] counts samples in [2^k, 2^(k+1)) — so bucket 0 holds
   exactly the sample 1, bucket 1 holds {2, 3}, bucket 2 holds [4, 8),
   and a power of two 2^k lands in bucket k (the lower boundary is
   inclusive, the upper exclusive). Samples <= 0 are counted in a
   dedicated [zeros] cell rather than smeared into bucket 0, keeping
   the boundary semantics exact (pinned by unit tests). 63 buckets
   cover every positive OCaml int. *)

type t = {
  name : string;
  buckets : int array;
  mutable zeros : int;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let nbuckets = 63

let v name =
  {
    name;
    buckets = Array.make nbuckets 0;
    zeros = 0;
    count = 0;
    sum = 0;
    min = max_int;
    max = min_int;
  }

let name t = t.name
let count t = t.count
let sum t = t.sum
let zeros t = t.zeros
let min_value t = if t.count = 0 then 0 else t.min
let max_value t = if t.count = 0 then 0 else t.max
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* floor(log2 v) for v >= 1. *)
let bucket_index v =
  if v < 1 then invalid_arg "Histogram.bucket_index: sample < 1";
  let b = ref 0 and x = ref v in
  while !x > 1 do
    incr b;
    x := !x lsr 1
  done;
  !b

(* Inclusive-lo, exclusive-hi bounds of bucket [k]. *)
let bucket_bounds k =
  if k < 0 || k >= nbuckets then invalid_arg "Histogram.bucket_bounds";
  (1 lsl k, if k = nbuckets - 1 then max_int else 1 lsl (k + 1))

let bucket_count t k = t.buckets.(k)

let observe t v =
  if !Sink.active then begin
    if v <= 0 then t.zeros <- t.zeros + 1
    else begin
      let b = bucket_index v in
      t.buckets.(b) <- t.buckets.(b) + 1;
      t.sum <- t.sum + v
    end;
    t.count <- t.count + 1;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v
  end

let iter_buckets t f =
  Array.iteri (fun k c -> if c > 0 then f k c) t.buckets

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.zeros <- 0;
  t.count <- 0;
  t.sum <- 0;
  t.min <- max_int;
  t.max <- min_int
