(* Monotonic counters. Single-writer per domain in practice: the hot
   instruments live in domain-local simulation state, and the engine's
   cross-domain aggregates are folded into counters on the main domain
   after the pool drains — so plain mutable ints suffice, and the
   disabled path is one load and an untaken branch. *)

type t = { name : string; mutable value : int }

let v name = { name; value = 0 }
let name t = t.name
let value t = t.value
let[@inline] incr t = if !Sink.active then t.value <- t.value + 1
let[@inline] add t n = if !Sink.active then t.value <- t.value + n

(* [set] is for folding externally-maintained totals (the engine's
   atomics) into a counter at snapshot time. *)
let set t n = if !Sink.active then t.value <- n
let reset t = t.value <- 0
