(* Last-value-wins float gauges (HS/M, theory floors, ratios). A gauge
   that was never set while telemetry was enabled is omitted from
   snapshots. *)

type t = { name : string; mutable value : float; mutable assigned : bool }

let v name = { name; value = 0.0; assigned = false }
let name t = t.name
let value t = t.value
let is_set t = t.assigned

let[@inline] set t x =
  if !Sink.active then begin
    t.value <- x;
    t.assigned <- true
  end

let reset t =
  t.value <- 0.0;
  t.assigned <- false
