(** Last-value-wins float gauges — no-ops while telemetry is disabled.
    Create through {!Registry.gauge} so snapshots see them. *)

type t

val v : string -> t
val name : t -> string
val value : t -> float

val is_set : t -> bool
(** [false] until {!set} runs with telemetry enabled; unset gauges are
    omitted from snapshots. *)

val set : t -> float -> unit
val reset : t -> unit
