(** Monotonic counters — no-ops while telemetry is disabled. Create
    through {!Registry.counter} so snapshots see them. *)

type t

val v : string -> t
(** Unregistered constructor (used by {!Registry}); prefer
    [Registry.counter]. *)

val name : t -> string
val value : t -> int
val incr : t -> unit
val add : t -> int -> unit
val set : t -> int -> unit
val reset : t -> unit
