(* A supervised worker pool: N worker Domains fed from one shared
   queue, each watched by a monitor thread that restarts it when it
   dies.

   The contract with [exec] mirrors the engine's failure taxonomy:
   [exec] is expected to absorb per-job failures itself (the engine
   captures, retries and degrades them to [Error] results) — any
   exception that *escapes* a worker is therefore a worker death, not
   a job failure. The monitor thread sees it via [Domain.join],
   requeues the job the dead worker held (front of the queue, so a
   crash cannot starve a job behind fresh arrivals), bumps the restart
   counter, and spawns a replacement domain. Exceptions matching
   [fatal] instead abort the whole pool — the simulated kill -9 of
   crash-recovery drills: no requeue, no respawn, [on_fatal] fires
   once, and the queue stops dispensing so the remaining workers wind
   down as soon as they finish (or die on) their current job.

   All shared state lives behind one mutex; [Condition.broadcast]
   wakes both idle workers (new job / shutdown) and drain waiters
   (queue went empty). Monitors are systhreads, not domains — they
   spend their lives blocked in [Domain.join] and never compute. *)

type 'a slot = {
  mutable current : 'a option; (* job held by this worker, under mutex *)
  mutable domain : unit Domain.t option;
}

type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : 'a Queue.t;
  slots : 'a slot array;
  exec : 'a -> unit;
  on_restart : 'a -> unit;
  fatal : exn -> bool;
  on_fatal : exn -> unit;
  mutable in_flight : int;
  mutable restarts : int;
  mutable stopping : bool; (* finish the queue, then exit *)
  mutable aborted : bool; (* fatal: stop dispensing immediately *)
  mutable fatal_exn : exn option;
  monitors : Thread.t list ref;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The worker loop, run on its own Domain. Exceptions from [t.exec]
   deliberately escape — the monitor converts them into a restart. *)
let worker t slot =
  let rec loop () =
    let job =
      locked t (fun () ->
          while Queue.is_empty t.queue && not (t.stopping || t.aborted) do
            Condition.wait t.cond t.mutex
          done;
          if t.aborted || (t.stopping && Queue.is_empty t.queue) then None
          else begin
            let job = Queue.pop t.queue in
            slot.current <- Some job;
            t.in_flight <- t.in_flight + 1;
            Some job
          end)
    in
    match job with
    | None -> ()
    | Some job ->
        t.exec job;
        locked t (fun () ->
            slot.current <- None;
            t.in_flight <- t.in_flight - 1;
            Condition.broadcast t.cond);
        loop ()
  in
  loop ()

(* Requeue at the front: a requeued job was admitted before anything
   currently queued, and front placement keeps a repeatedly-killed job
   from being starved by fresh arrivals. *)
let requeue_front t job =
  let rest = Queue.copy t.queue in
  Queue.clear t.queue;
  Queue.push job t.queue;
  Queue.transfer rest t.queue

let monitor t slot =
  let rec watch () =
    let d =
      locked t (fun () ->
          if t.aborted || (t.stopping && Queue.is_empty t.queue && slot.current = None)
          then None
          else begin
            let d = Domain.spawn (fun () -> worker t slot) in
            slot.domain <- Some d;
            d |> Option.some
          end)
    in
    match d with
    | None -> ()
    | Some d -> (
        match Domain.join d with
        | () ->
            (* Clean exit: the worker saw stop/abort with nothing held. *)
            locked t (fun () -> slot.domain <- None)
        | exception e ->
            let again =
              locked t (fun () ->
                  slot.domain <- None;
                  (* The dead worker held its job past the point of no
                     return only if it journaled it — in which case the
                     requeued copy resolves from the journal and never
                     re-executes. Either way the job lives in exactly
                     one place again: the queue. *)
                  let held = slot.current in
                  slot.current <- None;
                  if Option.is_some held then t.in_flight <- t.in_flight - 1;
                  if t.fatal e then begin
                    if not t.aborted then begin
                      t.aborted <- true;
                      t.fatal_exn <- Some e
                    end;
                    Condition.broadcast t.cond;
                    `Fatal e
                  end
                  else begin
                    (match held with
                    | Some job ->
                        t.on_restart job;
                        requeue_front t job
                    | None -> ());
                    t.restarts <- t.restarts + 1;
                    Condition.broadcast t.cond;
                    `Respawn
                  end)
            in
            (match again with
            | `Fatal e -> t.on_fatal e
            | `Respawn -> watch ()))
  in
  watch ()

let create ?(on_restart = fun _ -> ()) ?(fatal = fun _ -> false)
    ?(on_fatal = fun _ -> ()) ~workers exec =
  let workers = max 1 workers in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      slots = Array.init workers (fun _ -> { current = None; domain = None });
      exec;
      on_restart;
      fatal;
      on_fatal;
      in_flight = 0;
      restarts = 0;
      stopping = false;
      aborted = false;
      fatal_exn = None;
      monitors = ref [];
    }
  in
  t.monitors :=
    Array.to_list
      (Array.map (fun slot -> Thread.create (fun () -> monitor t slot) ()) t.slots);
  t

let push t job =
  locked t (fun () ->
      if t.stopping || t.aborted then
        invalid_arg "Supervisor.push: pool is shutting down";
      Queue.push job t.queue;
      Condition.broadcast t.cond)

let pending t = locked t (fun () -> Queue.length t.queue)
let in_flight t = locked t (fun () -> t.in_flight)
let restarts t = locked t (fun () -> t.restarts)
let aborted t = locked t (fun () -> t.aborted)
let fatal_exn t = locked t (fun () -> t.fatal_exn)

let idle t =
  locked t (fun () -> Queue.is_empty t.queue && t.in_flight = 0)

let drain t =
  locked t (fun () ->
      while
        not (t.aborted || (Queue.is_empty t.queue && t.in_flight = 0))
      do
        Condition.wait t.cond t.mutex
      done)

let shutdown t =
  locked t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.cond);
  List.iter Thread.join !(t.monitors)
