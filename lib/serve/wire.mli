(** Length-prefixed framing: 4-byte big-endian length + payload.

    The framing layer faces arbitrary peers, so it is strict: frames
    above {!max_frame} are refused before any payload is read, and EOF
    mid-frame ({!Closed} from {!recv} after the header) is an error
    while EOF at a frame boundary is a clean close ([None]). *)

val max_frame : int
(** 4 MiB — far above any legitimate request, far below a
    garbage-length allocation. *)

exception Closed
(** Peer closed the connection mid-frame. *)

exception Oversized of int
(** Announced length exceeds {!max_frame} — garbage or a different
    protocol. A printer is registered. *)

val recv : Unix.file_descr -> string option
(** Next frame's payload; [None] on clean EOF at a frame boundary. *)

val send : Unix.file_descr -> string -> unit
