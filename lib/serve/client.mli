(** Client side of the serve protocol: blocking RPC over a Unix-domain
    socket plus the submit/wait/results conveniences the CLI and the
    saturation benchmark are built from. *)

exception Protocol_error of string
(** The server answered something the request cannot interpret, or
    refused it outright. A printer is registered. *)

type conn

val connect : string -> conn
(** Raises [Unix.Unix_error] when the socket is absent or refusing. *)

val close : conn -> unit
val with_conn : string -> (conn -> 'a) -> 'a

val rpc : conn -> Protocol.request -> Protocol.response
(** One framed request, one framed response. *)

val submit :
  ?seed:int ->
  ?max_attempts:int ->
  conn ->
  tenant:string ->
  ?retries:int ->
  ?timeout:float ->
  Pc_exec.Spec.t list ->
  string * int * bool * int
(** Submit with exponential backoff on [Retry_after] — jitter drawn
    from the same seeded coin as the engine's retry backoff
    ({!Pc_exec.Faults.hash01}), so saturation runs reproduce. Returns
    [(id, total, known, backoff_rounds)]. Raises {!Protocol_error}
    on [Refused] or after [max_attempts] (default 50) rounds. *)

val status : conn -> tenant:string -> id:string -> string * Protocol.progress
val wait :
  ?poll:float -> conn -> tenant:string -> id:string -> string * Protocol.progress
(** Poll {!status} until ["completed"] or ["cancelled"]. *)

val results :
  conn ->
  tenant:string ->
  id:string ->
  (string * (Pc_adversary.Runner.outcome, string) result) list

val cancel : conn -> tenant:string -> id:string -> int
val health : conn -> Protocol.health
val drain : conn -> unit

(** {1 The whole lifecycle, restart-transparently} *)

type run = {
  id : string;
  total : int;
  known : bool;  (** the daemon had this submission already *)
  backoff_rounds : int;  (** backpressure rounds absorbed *)
  reconnects : int;  (** times the daemon died under us *)
  state : string;
  progress : Protocol.progress;
  outcomes : (string * (Pc_adversary.Runner.outcome, string) result) list;
}

val submit_and_wait :
  ?seed:int ->
  ?max_attempts:int ->
  ?poll:float ->
  ?reconnect_rounds:int ->
  socket:string ->
  tenant:string ->
  ?retries:int ->
  ?timeout:float ->
  Pc_exec.Spec.t list ->
  run
(** Submit, wait and fetch results; when the daemon dies mid-exchange,
    back off, reconnect and {e resubmit} — safe because submission ids
    are content digests (the daemon answers [known] and serves what
    its journal already holds), complete because the daemon replays
    its manifests on restart. Raises after [reconnect_rounds]
    (default 40) consecutive connection failures. *)

(** {1 Load generation} *)

type load_report = {
  clients : int;
  jobs : int;
  failed : int;
  wall : float;
  latencies : float array;  (** per-submission end-to-end s, sorted *)
  submit_retries : int;  (** backoff rounds across all clients *)
  restarts_seen : int;  (** server worker restarts at end of run *)
}

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [(0, 1]]; [0.] when empty. *)

val load :
  socket:string ->
  clients:int ->
  submissions:(string * Pc_exec.Spec.t list * int) array ->
  load_report
(** Drive [(tenant, specs, retries)] submissions through [clients]
    concurrent client threads (one connection each, round-robin
    assignment), each doing submit → wait → results sequentially. *)
