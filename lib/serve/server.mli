(** The sweep daemon: a Unix-domain-socket front end multiplexing many
    clients' submissions onto one supervised worker pool, with result
    cache and checkpoint journal sharded per tenant under a
    lockfile-guarded state dir.

    Durability contract: a submission is manifested (atomic rename)
    {e before} it is acked, and every outcome is journaled (fsync)
    {e before} it is cached or counted. After a kill at any point,
    {!start} replays manifests, reopens journals (repairing torn
    tails), requeues exactly the unanswered jobs and completes each
    exactly once — outcomes are pure functions of their specs, so the
    restarted run's results are byte-identical.

    Degradation ladder: full service → backpressure ([Retry_after]
    once the admission queue or a tenant quota fills) → draining
    (finish everything, accept no new work) → killed (a fatal fault;
    fds closed, nothing released — restart recovers). *)

type config = private {
  socket : string;
  state_dir : string;
  workers : int;
  queue_cap : int;  (** max admitted-but-unfinished jobs, all tenants *)
  tenant_cap : int;  (** same bound per tenant *)
  backoff : float;  (** engine retry backoff base, seconds *)
  faults : Pc_exec.Faults.t option;
      (** chaos injection shared by all workers; [wkill] exercises the
          supervision tree, [kill_after] the whole-daemon kill *)
}

val config :
  ?workers:int ->
  ?queue_cap:int ->
  ?tenant_cap:int ->
  ?backoff:float ->
  ?faults:Pc_exec.Faults.t ->
  socket:string ->
  state_dir:string ->
  unit ->
  config
(** Defaults: 4 workers, queue cap 256, tenant cap 128, backoff 50ms,
    no faults. *)

type exit_reason =
  | Drained  (** graceful: queue empty, state closed and released *)
  | Killed of string
      (** fatal fault: fds closed, lockfile and socket left behind
          (exactly what SIGKILL leaves) — restart recovers *)

type t

val start : config -> t
(** Acquire the state-dir lockfile (raises {!Pc_exec.Lockfile.Locked}
    if a live daemon holds it; breaks stale locks), bind the socket,
    spawn the worker pool, replay manifested submissions, and begin
    accepting. Returns immediately; {!wait} blocks. *)

val wait : t -> exit_reason
val run : config -> exit_reason
(** [start] + [wait]. *)

val drain : t -> unit
(** Begin graceful shutdown (also reachable over the wire and — in
    the CLI — via SIGTERM): stop admitting, finish every queued and
    in-flight job, then release everything and exit [Drained]. *)

val request_drain : t -> unit
(** Async-signal-safe {!drain} trigger (one atomic store, applied by
    the accept loop's next tick) — for SIGTERM handlers, which must
    not take mutexes. *)

val socket_path : t -> string

val restarts : t -> int
(** Worker domains respawned since boot (the supervision tree's
    restart counter). *)
