open Pc_exec
open Pc_adversary

(* The wire vocabulary of the serve daemon: request/response ADTs and
   their versioned JSON codecs. Every frame is one JSON object with a
   ["v"] field; decoding is total — malformed JSON, a missing/foreign
   version, an unknown op, or ill-typed fields all come back as
   [Error reason], never an exception — because this layer parses
   bytes from arbitrary peers. Spec and outcome payloads reuse the
   exact (de)serialisers of the result cache, so a daemon round-trip
   is bit-identical to a local sweep. *)

let version = 1

(* ------------------------------------------------------------------ *)

type submit = {
  tenant : string;
  specs : Spec.t list;
  retries : int;
  timeout : float option;
}

type request =
  | Submit of submit
  | Status of { tenant : string; id : string }
  | Cancel of { tenant : string; id : string }
  | Results of { tenant : string; id : string }
  | Health
  | Drain

type progress = {
  total : int;
  completed : int;  (* journaled, whether Ok or Error *)
  failed : int;  (* the Error subset of [completed] *)
  skipped : int;  (* queued jobs dropped by a cancel *)
}

type health = {
  pending : int;
  in_flight : int;
  workers : int;
  restarts : int;
  tenants : int;
  submissions : int;
  jobs_done : int;
  cache_hits : int;
  executed : int;
  draining : bool;
}

type response =
  | Accepted of { id : string; total : int; known : bool }
  | Retry_after of { seconds : float; reason : string }
  | Status_of of { id : string; state : string; progress : progress }
  | Results_of of {
      id : string;
      results : (string * (Runner.outcome, string) result) list;
    }
  | Cancelled of { id : string; skipped : int }
  | Health_of of health
  | Draining
  | Refused of { code : string; message : string }

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)

let j_submit { tenant; specs; retries; timeout } =
  [
    ("op", Json.String "submit");
    ("tenant", Json.String tenant);
    ("specs", Json.List (List.map Spec.to_json specs));
    ("retries", Json.Int retries);
  ]
  @ match timeout with None -> [] | Some s -> [ ("timeout", Json.Float s) ]

let j_ref op tenant id =
  [
    ("op", Json.String op);
    ("tenant", Json.String tenant);
    ("id", Json.String id);
  ]

let versioned fields = Json.Obj (("v", Json.Int version) :: fields)

let request_to_string req =
  Json.to_string
    (versioned
       (match req with
       | Submit s -> j_submit s
       | Status { tenant; id } -> j_ref "status" tenant id
       | Cancel { tenant; id } -> j_ref "cancel" tenant id
       | Results { tenant; id } -> j_ref "results" tenant id
       | Health -> [ ("op", Json.String "health") ]
       | Drain -> [ ("op", Json.String "drain") ]))

let j_progress { total; completed; failed; skipped } =
  Json.Obj
    [
      ("total", Json.Int total);
      ("completed", Json.Int completed);
      ("failed", Json.Int failed);
      ("skipped", Json.Int skipped);
    ]

let j_result = function
  | Ok outcome -> [ ("ok", Cache.outcome_to_json outcome) ]
  | Error msg -> [ ("error", Json.String msg) ]

let response_to_string resp =
  Json.to_string
    (versioned
       (match resp with
       | Accepted { id; total; known } ->
           [
             ("type", Json.String "accepted");
             ("id", Json.String id);
             ("total", Json.Int total);
             ("known", Json.Bool known);
           ]
       | Retry_after { seconds; reason } ->
           [
             ("type", Json.String "retry-after");
             ("seconds", Json.Float seconds);
             ("reason", Json.String reason);
           ]
       | Status_of { id; state; progress } ->
           [
             ("type", Json.String "status");
             ("id", Json.String id);
             ("state", Json.String state);
             ("progress", j_progress progress);
           ]
       | Results_of { id; results } ->
           [
             ("type", Json.String "results");
             ("id", Json.String id);
             ( "results",
               Json.List
                 (List.map
                    (fun (key, r) ->
                      Json.Obj (("key", Json.String key) :: j_result r))
                    results) );
           ]
       | Cancelled { id; skipped } ->
           [
             ("type", Json.String "cancelled");
             ("id", Json.String id);
             ("skipped", Json.Int skipped);
           ]
       | Health_of h ->
           [
             ("type", Json.String "health");
             ("pending", Json.Int h.pending);
             ("in_flight", Json.Int h.in_flight);
             ("workers", Json.Int h.workers);
             ("restarts", Json.Int h.restarts);
             ("tenants", Json.Int h.tenants);
             ("submissions", Json.Int h.submissions);
             ("jobs_done", Json.Int h.jobs_done);
             ("cache_hits", Json.Int h.cache_hits);
             ("executed", Json.Int h.executed);
             ("draining", Json.Bool h.draining);
           ]
       | Draining -> [ ("type", Json.String "draining") ]
       | Refused { code; message } ->
           [
             ("type", Json.String "refused");
             ("code", Json.String code);
             ("message", Json.String message);
           ]))

(* ------------------------------------------------------------------ *)
(* Decoding — total: every failure is an [Error reason]               *)

let ( let* ) = Result.bind

let parse s =
  match Json.of_string s with
  | j -> Ok j
  | exception Json.Parse_error msg -> Error ("malformed JSON: " ^ msg)
  | exception _ -> Error "malformed JSON"

let check_version j =
  match Json.member "v" j with
  | Some v when Json.to_int v = Some version -> Ok ()
  | Some v ->
      Error
        (Printf.sprintf "protocol version mismatch: got %s, speak %d"
           (Json.to_string v) version)
  | None -> Error "missing protocol version"

let str field j =
  match Option.bind (Json.member field j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S" field)

let int_or field ~default j =
  match Json.member field j with
  | None -> Ok default
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "non-integer %S" field))

let ref_of j op k =
  let* tenant = str "tenant" j in
  let* id = str "id" j in
  ignore op;
  Ok (k ~tenant ~id)

let specs_of j =
  match Json.member "specs" j with
  | Some (Json.List l) -> (
      try Ok (List.map Spec.of_json l) with
      | Spec.Bad_spec msg -> Error ("bad spec: " ^ msg)
      | Json.Parse_error msg -> Error ("bad spec: " ^ msg))
  | Some _ -> Error "non-list \"specs\""
  | None -> Error "missing \"specs\""

let request_of_string s =
  let* j = parse s in
  let* () = check_version j in
  let* op = str "op" j in
  match op with
  | "submit" ->
      let* tenant = str "tenant" j in
      let* specs = specs_of j in
      let* retries = int_or "retries" ~default:0 j in
      let timeout =
        Option.bind (Json.member "timeout" j) Json.to_float
      in
      if specs = [] then Error "empty spec list"
      else Ok (Submit { tenant; specs; retries; timeout })
  | "status" -> ref_of j op (fun ~tenant ~id -> Status { tenant; id })
  | "cancel" -> ref_of j op (fun ~tenant ~id -> Cancel { tenant; id })
  | "results" -> ref_of j op (fun ~tenant ~id -> Results { tenant; id })
  | "health" -> Ok Health
  | "drain" -> Ok Drain
  | op -> Error (Printf.sprintf "unknown op %S" op)

let progress_of j =
  let* total = int_or "total" ~default:(-1) j in
  let* completed = int_or "completed" ~default:(-1) j in
  let* failed = int_or "failed" ~default:(-1) j in
  let* skipped = int_or "skipped" ~default:(-1) j in
  if total < 0 || completed < 0 || failed < 0 || skipped < 0 then
    Error "malformed progress"
  else Ok { total; completed; failed; skipped }

let result_of j =
  match (Json.member "ok" j, Json.member "error" j) with
  | Some o, None -> (
      match Cache.outcome_of_json o with
      | outcome -> Ok (Ok outcome)
      | exception _ -> Error "malformed outcome")
  | None, Some (Json.String msg) -> Ok (Error msg)
  | _ -> Error "result carries neither \"ok\" nor \"error\""

let response_of_string s =
  let* j = parse s in
  let* () = check_version j in
  let* ty = str "type" j in
  match ty with
  | "accepted" ->
      let* id = str "id" j in
      let* total = int_or "total" ~default:(-1) j in
      let known =
        Option.bind (Json.member "known" j) Json.to_bool
        |> Option.value ~default:false
      in
      if total < 0 then Error "missing \"total\""
      else Ok (Accepted { id; total; known })
  | "retry-after" ->
      let seconds =
        Option.bind (Json.member "seconds" j) Json.to_float
        |> Option.value ~default:0.5
      in
      let reason =
        Option.bind (Json.member "reason" j) Json.to_string_opt
        |> Option.value ~default:"busy"
      in
      Ok (Retry_after { seconds; reason })
  | "status" ->
      let* id = str "id" j in
      let* state = str "state" j in
      let* progress =
        match Json.member "progress" j with
        | Some p -> progress_of p
        | None -> Error "missing \"progress\""
      in
      Ok (Status_of { id; state; progress })
  | "results" ->
      let* id = str "id" j in
      let* items =
        match Json.member "results" j with
        | Some (Json.List l) -> Ok l
        | _ -> Error "missing \"results\""
      in
      let* results =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* key = str "key" item in
            let* r = result_of item in
            Ok ((key, r) :: acc))
          (Ok []) items
      in
      Ok (Results_of { id; results = List.rev results })
  | "cancelled" ->
      let* id = str "id" j in
      let* skipped = int_or "skipped" ~default:0 j in
      Ok (Cancelled { id; skipped })
  | "health" ->
      let* pending = int_or "pending" ~default:(-1) j in
      let* in_flight = int_or "in_flight" ~default:(-1) j in
      let* workers = int_or "workers" ~default:(-1) j in
      let* restarts = int_or "restarts" ~default:0 j in
      let* tenants = int_or "tenants" ~default:0 j in
      let* submissions = int_or "submissions" ~default:0 j in
      let* jobs_done = int_or "jobs_done" ~default:0 j in
      let* cache_hits = int_or "cache_hits" ~default:0 j in
      let* executed = int_or "executed" ~default:0 j in
      let draining =
        Option.bind (Json.member "draining" j) Json.to_bool
        |> Option.value ~default:false
      in
      if pending < 0 || in_flight < 0 || workers < 0 then
        Error "malformed health"
      else
        Ok
          (Health_of
             {
               pending;
               in_flight;
               workers;
               restarts;
               tenants;
               submissions;
               jobs_done;
               cache_hits;
               executed;
               draining;
             })
  | "draining" -> Ok Draining
  | "refused" ->
      let* code = str "code" j in
      let* message = str "message" j in
      Ok (Refused { code; message })
  | ty -> Error (Printf.sprintf "unknown response type %S" ty)

(* ------------------------------------------------------------------ *)

let tenant_ok name =
  name <> "" && name <> "." && name <> ".."
  && String.length name <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       name
