(** The serve daemon's wire vocabulary (one JSON object per
    {!Wire} frame) and its versioned codecs.

    Decoding is {e total}: malformed JSON, a missing or foreign
    version, an unknown op and ill-typed fields all come back as
    [Error reason] — this layer parses bytes from arbitrary peers and
    must never raise on them. Spec and outcome payloads reuse the
    result cache's bit-exact (de)serialisers, so an outcome fetched
    over the socket is byte-identical to one computed locally. *)

val version : int
(** Bumped on incompatible wire changes; both sides refuse frames
    carrying any other version. *)

type submit = {
  tenant : string;
  specs : Pc_exec.Spec.t list;
  retries : int;  (** transient-failure retry budget per job *)
  timeout : float option;  (** per-attempt wall-clock budget, seconds *)
}

type request =
  | Submit of submit
  | Status of { tenant : string; id : string }
  | Cancel of { tenant : string; id : string }
      (** queued jobs of the submission are skipped; in-flight jobs
          finish (a domain cannot be safely preempted) *)
  | Results of { tenant : string; id : string }
  | Health
  | Drain

type progress = {
  total : int;
  completed : int;  (** journaled, whether [Ok] or [Error] *)
  failed : int;  (** the [Error] subset of [completed] *)
  skipped : int;  (** queued jobs dropped by a cancel *)
}

type health = {
  pending : int;  (** admitted jobs not yet picked up by a worker *)
  in_flight : int;
  workers : int;
  restarts : int;  (** worker domains respawned since boot *)
  tenants : int;
  submissions : int;  (** accepted (incl. replayed) since boot *)
  jobs_done : int;
  cache_hits : int;
  executed : int;
  draining : bool;
}

type response =
  | Accepted of { id : string; total : int; known : bool }
      (** [known]: the submission id was already registered —
          resubmission is idempotent *)
  | Retry_after of { seconds : float; reason : string }
      (** backpressure: the admission queue or the tenant quota is
          full, or the daemon is draining; retry after [seconds] *)
  | Status_of of { id : string; state : string; progress : progress }
      (** [state] is ["queued"], ["running"], ["completed"] or
          ["cancelled"] *)
  | Results_of of {
      id : string;
      results :
        (string * (Pc_adversary.Runner.outcome, string) result) list;
          (** canonical spec key → journaled outcome, submission
              order; only completed jobs appear *)
    }
  | Cancelled of { id : string; skipped : int }
  | Health_of of health
  | Draining
  | Refused of { code : string; message : string }
      (** a well-formed request the daemon will not honour (bad
          tenant, unknown id, submit while draining) *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result
val response_to_string : response -> string
val response_of_string : string -> (response, string) result

val tenant_ok : string -> bool
(** Tenant names become directory components; restricted to
    [\[A-Za-z0-9._-\]], at most 64 chars, not ["."] or [".."]. *)
