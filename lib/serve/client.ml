open Pc_exec

(* Client side of the serve protocol: blocking RPC over a Unix-domain
   socket, plus the submit-with-backoff / wait / results conveniences
   the CLI and the saturation benchmark are built from.

   Backoff is exponential with deterministic jitter drawn from the
   same seeded coin as the engine's retry backoff ([Faults.hash01]),
   so a saturation run — many clients hammering one daemon — is
   reproducible end to end: the k-th retry of the k-th client sleeps
   the same everywhere. *)

exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error msg -> Some ("serve protocol error: " ^ msg)
    | _ -> None)

type conn = { fd : Unix.file_descr }

let connect path =
  (* A daemon dying mid-RPC must surface as EPIPE/Closed (which the
     reconnect path absorbs), not kill the client process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX path) with
  | () -> { fd }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let with_conn path f =
  let conn = connect path in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

let rpc conn request =
  Wire.send conn.fd (Protocol.request_to_string request);
  match Wire.recv conn.fd with
  | None -> raise Wire.Closed (* died mid-RPC; reconnectable *)
  | Some payload -> (
      match Protocol.response_of_string payload with
      | Ok resp -> resp
      | Error reason -> raise (Protocol_error reason))

(* ------------------------------------------------------------------ *)

let backoff_sleep ~seed ~site ~attempt ~hint =
  (* The server's hint is a floor; exponential growth with seeded
     jitter spreads retries out so backed-off clients do not
     re-converge on the same instant. *)
  let base = Float.max hint 0.02 in
  let expo = base *. (2. ** float_of_int (min attempt 6)) in
  let jitter = Faults.hash01 ~seed ~site ~digest:"backoff" attempt in
  Unix.sleepf (Float.min (expo *. (0.5 +. jitter)) 5.0)

let submit ?(seed = 0) ?(max_attempts = 50) conn ~tenant ?(retries = 0)
    ?timeout specs =
  let request = Protocol.Submit { tenant; specs; retries; timeout } in
  let rec go attempt =
    if attempt >= max_attempts then
      raise
        (Protocol_error
           (Printf.sprintf "submission still refused after %d attempts"
              max_attempts))
    else
      match rpc conn request with
      | Protocol.Accepted { id; total; known } -> (id, total, known, attempt)
      | Protocol.Retry_after { seconds; reason = _ } ->
          backoff_sleep ~seed ~site:(tenant ^ ".submit") ~attempt
            ~hint:seconds;
          go (attempt + 1)
      | Protocol.Refused { code; message } ->
          raise (Protocol_error (Printf.sprintf "%s: %s" code message))
      | _ -> raise (Protocol_error "unexpected response to submit")
  in
  go 0

let status conn ~tenant ~id =
  match rpc conn (Protocol.Status { tenant; id }) with
  | Protocol.Status_of { state; progress; _ } -> (state, progress)
  | Protocol.Refused { code; message } ->
      raise (Protocol_error (Printf.sprintf "%s: %s" code message))
  | _ -> raise (Protocol_error "unexpected response to status")

let wait ?(poll = 0.02) conn ~tenant ~id =
  let rec go () =
    let state, progress = status conn ~tenant ~id in
    if state = "completed" || state = "cancelled" then (state, progress)
    else begin
      Unix.sleepf poll;
      go ()
    end
  in
  go ()

let results conn ~tenant ~id =
  match rpc conn (Protocol.Results { tenant; id }) with
  | Protocol.Results_of { results; _ } -> results
  | Protocol.Refused { code; message } ->
      raise (Protocol_error (Printf.sprintf "%s: %s" code message))
  | _ -> raise (Protocol_error "unexpected response to results")

let cancel conn ~tenant ~id =
  match rpc conn (Protocol.Cancel { tenant; id }) with
  | Protocol.Cancelled { skipped; _ } -> skipped
  | Protocol.Refused { code; message } ->
      raise (Protocol_error (Printf.sprintf "%s: %s" code message))
  | _ -> raise (Protocol_error "unexpected response to cancel")

let health conn =
  match rpc conn Protocol.Health with
  | Protocol.Health_of h -> h
  | _ -> raise (Protocol_error "unexpected response to health")

let drain conn =
  match rpc conn Protocol.Drain with
  | Protocol.Draining -> ()
  | _ -> raise (Protocol_error "unexpected response to drain")

(* ------------------------------------------------------------------ *)
(* The whole client lifecycle, restart-transparently                  *)

type run = {
  id : string;
  total : int;
  known : bool;
  backoff_rounds : int;
  reconnects : int;
  state : string;
  progress : Protocol.progress;
  outcomes : (string * (Pc_adversary.Runner.outcome, string) result) list;
}

(* Submission ids are content digests and the daemon replays its
   manifests on restart, so "reconnect and resubmit from scratch" is
   both safe (idempotent: the daemon answers [known = true] and serves
   whatever the journal already holds) and complete (jobs admitted
   before the crash finish after it). That one property makes clients
   of a crashing daemon trivial: this is the whole recovery logic. *)
let submit_and_wait ?(seed = 0) ?max_attempts ?poll ?(reconnect_rounds = 40)
    ~socket ~tenant ?(retries = 0) ?timeout specs =
  let rec go round rounds_acc =
    match
      with_conn socket (fun conn ->
          let id, total, known, backoff_rounds =
            submit ~seed ?max_attempts conn ~tenant ~retries ?timeout specs
          in
          let state, progress = wait ?poll conn ~tenant ~id in
          let outcomes = results conn ~tenant ~id in
          {
            id;
            total;
            known;
            backoff_rounds = backoff_rounds + rounds_acc;
            reconnects = round;
            state;
            progress;
            outcomes;
          })
    with
    | run -> run
    | exception (Wire.Closed | Unix.Unix_error _)
      when round < reconnect_rounds ->
        backoff_sleep ~seed ~site:(tenant ^ ".reconnect") ~attempt:round
          ~hint:0.05;
        go (round + 1) rounds_acc
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Load generation (CLI `pc load` and the saturation benchmark)       *)

type load_report = {
  clients : int;
  jobs : int;
  failed : int;
  wall : float;
  latencies : float array; (* per-submission end-to-end seconds, sorted *)
  submit_retries : int;
  restarts_seen : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Each client thread runs its share of submissions sequentially
   through the restart-transparent lifecycle (submit with backoff →
   wait → results, reconnecting if the daemon dies under it). *)
let load ~socket ~clients ~submissions =
  let n = Array.length submissions in
  let latencies = Array.make n 0. in
  let failures = Array.make n 0 in
  let retries = Array.make (max clients 1) 0 in
  let t0 = Unix.gettimeofday () in
  let worker c =
    let i = ref c in
    while !i < n do
      let tenant, specs, job_retries = submissions.(!i) in
      let s0 = Unix.gettimeofday () in
      let run =
        submit_and_wait ~seed:c ~socket ~tenant ~retries:job_retries specs
      in
      retries.(c) <- retries.(c) + run.backoff_rounds;
      latencies.(!i) <- Unix.gettimeofday () -. s0;
      failures.(!i) <- run.progress.Protocol.failed;
      i := !i + clients
    done
  in
  let threads =
    List.init (max clients 1) (fun c -> Thread.create worker c)
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let restarts_seen =
    try with_conn socket (fun conn -> (health conn).Protocol.restarts)
    with _ -> 0
  in
  Array.sort compare latencies;
  {
    clients;
    jobs =
      Array.fold_left (fun acc (_, specs, _) -> acc + List.length specs) 0
        submissions;
    failed = Array.fold_left ( + ) 0 failures;
    wall;
    latencies;
    submit_retries = Array.fold_left ( + ) 0 retries;
    restarts_seen;
  }
