(** A supervised worker pool: N worker [Domain]s fed from one shared
    queue, each watched by a monitor thread that restarts it when it
    dies.

    [exec] is expected to absorb per-job failures itself (the engine
    captures, retries and degrades them to [Error] results); any
    exception that {e escapes} a worker is a worker death. The monitor
    requeues the job the dead worker held at the {e front} of the
    queue (a repeatedly-killed job is never starved by fresh
    arrivals), calls [on_restart job], bumps {!restarts}, and spawns a
    replacement domain. Exceptions matching [fatal] instead abort the
    pool — the simulated kill -9 of crash-recovery drills: no requeue,
    no respawn, [on_fatal] fires once, the queue stops dispensing.

    Exactly-once interplay: a worker dies either before journaling its
    job (the requeued copy re-executes from scratch) or after (the
    requeued copy resolves from the journal without re-executing) — in
    both cases the job lives in exactly one place, so a completed job
    is journaled exactly once. *)

type 'a t

val create :
  ?on_restart:('a -> unit) ->
  ?fatal:(exn -> bool) ->
  ?on_fatal:(exn -> unit) ->
  workers:int ->
  ('a -> unit) ->
  'a t
(** Spawn [max 1 workers] worker domains (plus one monitor systhread
    each) running the given [exec]. [on_restart] observes each
    requeued job (the daemon bumps the job's kill count there, which
    caps injected kills via [Faults.max_transient]). *)

val push : 'a t -> 'a -> unit
(** Enqueue a job. Raises [Invalid_argument] after {!shutdown} or a
    fatal abort. *)

val pending : 'a t -> int
val in_flight : 'a t -> int
val restarts : 'a t -> int

val aborted : 'a t -> bool
val fatal_exn : 'a t -> exn option

val idle : 'a t -> bool
(** Queue empty and nothing in flight. *)

val drain : 'a t -> unit
(** Block until {!idle} (or a fatal abort). Does not stop workers —
    more jobs may be pushed afterwards. *)

val shutdown : 'a t -> unit
(** Finish the queue, stop the workers, join every monitor. After a
    fatal abort this returns once in-flight jobs have wound down. *)
