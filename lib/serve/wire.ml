(* Length-prefixed framing over a stream socket.

   Each frame is a 4-byte big-endian payload length followed by the
   payload bytes. Framing is deliberately dumb — all structure lives
   one layer up in {!Protocol} — but it is the layer that faces
   arbitrary peers, so it is strict: a length above [max_frame] is
   rejected before any payload is read (a 4-byte garbage prefix cannot
   make the server allocate gigabytes), and EOF mid-frame is
   distinguished from EOF at a frame boundary (only the latter is a
   clean close). *)

let max_frame = 4 * 1024 * 1024

exception Closed
exception Oversized of int

let () =
  Printexc.register_printer (function
    | Oversized n ->
        Some
          (Printf.sprintf
             "wire: refused a %d-byte frame (max %d) — peer is speaking \
              garbage or a different protocol"
             n max_frame)
    | _ -> None)

let read_exactly fd buf off len =
  let got = ref 0 in
  while !got < len do
    match Unix.read fd buf (off + !got) (len - !got) with
    | 0 -> raise Closed
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_fully fd buf =
  let len = Bytes.length buf in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd buf !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let rec read_some fd buf =
  match Unix.read fd buf 0 4 with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd buf

let recv fd =
  let hdr = Bytes.create 4 in
  match read_some fd hdr with
  | 0 -> None (* EOF at a frame boundary: clean close *)
  | n ->
      read_exactly fd hdr n (4 - n);
      let len =
        (Char.code (Bytes.get hdr 0) lsl 24)
        lor (Char.code (Bytes.get hdr 1) lsl 16)
        lor (Char.code (Bytes.get hdr 2) lsl 8)
        lor Char.code (Bytes.get hdr 3)
      in
      if len < 0 || len > max_frame then raise (Oversized len);
      let payload = Bytes.create len in
      read_exactly fd payload 0 len;
      (* EOF here IS an error: the peer died mid-frame *)
      Some (Bytes.unsafe_to_string payload)

let send fd s =
  let len = String.length s in
  if len > max_frame then raise (Oversized len);
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string s 0 buf 4 len;
  write_fully fd buf
