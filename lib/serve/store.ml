open Pc_exec

(* On-disk layout of a serve daemon's state dir, sharded per tenant:

     <state_dir>/
       serve.lock                        (Lockfile — single daemon)
       tenants/<name>/cache/             (result cache, Cache.t)
       tenants/<name>/sweeps/            (checkpoint journals)
       tenants/<name>/submissions/<id>.json   (durable manifests)

   A manifest pins down one accepted submission — tenant, ordered
   spec list, retry budget — and is written atomically (tmp + rename)
   *before* the daemon acks, so an Accepted response is a durable
   promise: a daemon killed right after the ack finds the manifest on
   restart, reopens the tenant's journal, and requeues exactly the
   jobs the journal does not already answer for. The submission id is
   the checkpoint sweep digest of the ordered spec list, so manifest,
   journal and resubmission dedup all share one identity. *)

let src = Logs.Src.create "pc.serve.store" ~doc:"serve state dir"

module Log = (val Logs.src_log src : Logs.LOG)

type manifest = {
  id : string;
  tenant : string;
  specs : Spec.t list;
  retries : int;
  timeout : float option;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let lock_path ~state_dir = Filename.concat state_dir "serve.lock"
let tenants_dir ~state_dir = Filename.concat state_dir "tenants"

let tenant_dir ~state_dir tenant =
  Filename.concat (tenants_dir ~state_dir) tenant

let cache_dir ~state_dir tenant =
  Filename.concat (tenant_dir ~state_dir tenant) "cache"

let journal_dir ~state_dir tenant =
  Filename.concat (tenant_dir ~state_dir tenant) "sweeps"

let submissions_dir ~state_dir tenant =
  Filename.concat (tenant_dir ~state_dir tenant) "submissions"

let manifest_path ~state_dir m =
  Filename.concat (submissions_dir ~state_dir m.tenant) (m.id ^ ".json")

let submission_id specs = Checkpoint.sweep_digest specs

let make ~tenant ~specs ~retries ~timeout =
  { id = submission_id specs; tenant; specs; retries; timeout }

(* ------------------------------------------------------------------ *)

let manifest_to_json m =
  Json.Obj
    ([
       ("id", Json.String m.id);
       ("tenant", Json.String m.tenant);
       ("retries", Json.Int m.retries);
       ("specs", Json.List (List.map Spec.to_json m.specs));
     ]
    @ match m.timeout with None -> [] | Some s -> [ ("timeout", Json.Float s) ]
    )

let manifest_of_json j =
  match
    ( Option.bind (Json.member "id" j) Json.to_string_opt,
      Option.bind (Json.member "tenant" j) Json.to_string_opt,
      Json.member "specs" j )
  with
  | Some id, Some tenant, Some (Json.List specs) ->
      let retries =
        Option.bind (Json.member "retries" j) Json.to_int
        |> Option.value ~default:0
      in
      let timeout = Option.bind (Json.member "timeout" j) Json.to_float in
      let specs = List.map Spec.of_json specs in
      let m = { id; tenant; specs; retries; timeout } in
      (* The id is derived, not trusted: a manifest whose id does not
         match its spec list was tampered with or torn. *)
      if submission_id specs <> id then failwith "manifest id mismatch";
      m
  | _ -> failwith "malformed manifest"

let save ~state_dir m =
  let dir = submissions_dir ~state_dir m.tenant in
  mkdir_p dir;
  let path = manifest_path ~state_dir m in
  let tmp = path ^ ".tmp" in
  let content = Json.to_string ~indent:true (manifest_to_json m) ^ "\n" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc content;
      Out_channel.flush oc);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)

let list_dirs path =
  match Sys.readdir path with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             try Sys.is_directory (Filename.concat path n)
             with Sys_error _ -> false)
      |> List.sort String.compare

let load_all ~state_dir =
  let tenants = list_dirs (tenants_dir ~state_dir) in
  List.concat_map
    (fun tenant ->
      let dir = submissions_dir ~state_dir tenant in
      match Sys.readdir dir with
      | exception Sys_error _ -> []
      | names ->
          Array.to_list names
          |> List.filter (fun n -> Filename.check_suffix n ".json")
          |> List.sort String.compare
          |> List.filter_map (fun name ->
                 let path = Filename.concat dir name in
                 match
                   Json.of_string
                     (In_channel.with_open_bin path In_channel.input_all)
                   |> manifest_of_json
                 with
                 | m when m.tenant = tenant -> Some m
                 | _ ->
                     Log.warn (fun k ->
                         k "manifest %s: tenant mismatch; ignored" path);
                     None
                 | exception e ->
                     (* A torn manifest (daemon killed mid-save before
                        the rename can only leave a .tmp, but a partial
                        byte-level copy can exist after fs damage):
                        skipping it loses only an un-acked submission. *)
                     Log.warn (fun k ->
                         k "manifest %s: unreadable (%s); ignored" path
                           (Printexc.to_string e));
                     None))
    tenants
