open Pc_exec

(* The serve daemon: a Unix-domain-socket front end that multiplexes
   many clients' sweep submissions onto one supervised worker pool,
   sharding result cache and checkpoint journal per tenant under a
   lockfile-guarded state dir.

   Threading model: one accept loop (select with a 0.25s tick, so it
   notices stop/drain without signals racing fd closes), one short
   systhread per client connection, one supervised Domain per worker
   slot, one monitor systhread per slot (see Supervisor). All daemon
   state — submissions, counters, quotas — lives behind [t.mutex];
   nothing blocking is done while holding it.

   Durability contract: a submission is manifested (atomic rename)
   before it is acked, and every job outcome is journaled (fsync)
   before it is cached or counted — so after a kill at ANY point,
   restart replays manifests, reopens journals (repairing torn
   tails), requeues exactly the unanswered jobs, and completes each
   exactly once. The killed-daemon exit path closes fds but releases
   nothing else — faithfully what SIGKILL leaves behind: a stale
   lockfile (PID-checked and broken on restart) and a stale socket
   file (unlinked on restart). *)

let src = Logs.Src.create "pc.serve" ~doc:"sweep daemon"

module Log = (val Logs.src_log src : Logs.LOG)
module T = Pc_telemetry

let queue_g = T.Registry.gauge "serve.queue_depth"
let in_flight_g = T.Registry.gauge "serve.in_flight"
let restarts_g = T.Registry.gauge "serve.restarts"
let hit_rate_g = T.Registry.gauge "serve.cache_hit_rate"
let submissions_c = T.Registry.counter "serve.submissions"
let refused_c = T.Registry.counter "serve.refused"
let retry_after_c = T.Registry.counter "serve.retry_after"

type config = {
  socket : string;
  state_dir : string;
  workers : int;
  queue_cap : int;  (* max admitted-but-unfinished jobs, all tenants *)
  tenant_cap : int;  (* max admitted-but-unfinished jobs per tenant *)
  backoff : float;  (* engine retry backoff base, seconds *)
  faults : Faults.t option;  (* chaos injection, shared by all workers *)
}

let config ?(workers = 4) ?(queue_cap = 256) ?(tenant_cap = 128)
    ?(backoff = 0.05) ?faults ~socket ~state_dir () =
  { socket; state_dir; workers; queue_cap; tenant_cap; backoff; faults }

type exit_reason = Drained | Killed of string

type sub = {
  manifest : Store.manifest;
  checkpoint : Checkpoint.t;
  cache : Cache.t;
  mutable completed : int;
  mutable failed : int;
  mutable skipped : int;
  mutable cancelled : bool;
}

type job = { sub : sub; spec : Spec.t; mutable kills : int }

type t = {
  cfg : config;
  lock : Lockfile.t;
  listen : Unix.file_descr;
  mutex : Mutex.t;
  subs : (string * string, sub) Hashtbl.t; (* (tenant, id) *)
  caches : (string, Cache.t) Hashtbl.t; (* tenant -> shared cache *)
  mutable submissions : int;
  mutable jobs_done : int;
  mutable cache_hits : int;
  mutable executed : int;
  mutable draining : bool;
  stop : bool Atomic.t; (* fatal abort: exit without cleanup *)
  drain_flag : bool Atomic.t; (* async-signal-safe drain request *)
  mutable pool : job Supervisor.t option; (* set once, before any push *)
  exit_mutex : Mutex.t;
  exit_cond : Condition.t;
  mutable exit_reason : exit_reason option;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let pool t = Option.get t.pool

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Job execution (worker domain)                                      *)

let exec_job t job =
  let skip =
    locked t (fun () ->
        if job.sub.cancelled then begin
          job.sub.skipped <- job.sub.skipped + 1;
          true
        end
        else false)
  in
  if not skip then begin
    (* The injected SIGKILL-a-worker drill: raised OUT of this domain,
       so the supervision tree (not the engine's retry loop) has to
       requeue the job and respawn the worker. *)
    (match t.cfg.faults with
    | Some f ->
        Faults.worker_kill f ~digest:(Spec.digest job.spec) ~kills:job.kills
    | None -> ());
    let r =
      Engine.resolve ~cache:job.sub.cache ~checkpoint:job.sub.checkpoint
        ?faults:t.cfg.faults ~retries:job.sub.manifest.retries
        ?timeout:job.sub.manifest.timeout ~backoff:t.cfg.backoff job.spec
    in
    locked t (fun () ->
        job.sub.completed <- job.sub.completed + 1;
        if Result.is_error r.result then job.sub.failed <- job.sub.failed + 1;
        t.jobs_done <- t.jobs_done + 1;
        if r.from_cache then t.cache_hits <- t.cache_hits + 1;
        if (not r.from_cache) && not r.from_journal then
          t.executed <- t.executed + 1)
  end

(* ------------------------------------------------------------------ *)
(* Request handling (client threads)                                  *)

let outstanding_locked t tenant =
  Hashtbl.fold
    (fun (tn, _) sub acc ->
      if tn = tenant && not sub.cancelled then
        acc
        + max 0
            (List.length sub.manifest.specs - sub.completed - sub.skipped)
      else acc)
    t.subs 0

let register_locked t (m : Store.manifest) =
  let cache =
    match Hashtbl.find_opt t.caches m.tenant with
    | Some c -> c
    | None ->
        let c =
          Cache.create ~dir:(Store.cache_dir ~state_dir:t.cfg.state_dir m.tenant) ()
        in
        Hashtbl.add t.caches m.tenant c;
        c
  in
  let checkpoint =
    Checkpoint.open_ ~resume:true
      ~dir:(Store.journal_dir ~state_dir:t.cfg.state_dir m.tenant)
      m.specs
  in
  let sub =
    {
      manifest = m;
      checkpoint;
      cache;
      completed = 0;
      failed = 0;
      skipped = 0;
      cancelled = false;
    }
  in
  Hashtbl.add t.subs (m.tenant, m.id) sub;
  t.submissions <- t.submissions + 1;
  T.Counter.incr submissions_c;
  sub

let enqueue t sub =
  List.iter
    (fun spec -> Supervisor.push (pool t) { sub; spec; kills = 0 })
    sub.manifest.specs

let handle_submit t (s : Protocol.submit) =
  if not (Protocol.tenant_ok s.tenant) then
    Protocol.Refused
      {
        code = "bad-tenant";
        message =
          Printf.sprintf
            "tenant %S: use 1-64 chars from [A-Za-z0-9._-], not \".\"/\"..\""
            s.tenant;
      }
  else begin
    let id = Store.submission_id s.specs in
    let n = List.length s.specs in
    let decision =
      locked t (fun () ->
          match Hashtbl.find_opt t.subs (s.tenant, id) with
          | Some _ -> `Known
          | None ->
              if t.draining then `Busy "draining"
              else begin
                let load =
                  Supervisor.pending (pool t) + Supervisor.in_flight (pool t)
                in
                if load + n > t.cfg.queue_cap then `Busy "queue full"
                else if outstanding_locked t s.tenant + n > t.cfg.tenant_cap
                then `Busy "tenant quota"
                else begin
                  let m =
                    Store.make ~tenant:s.tenant ~specs:s.specs
                      ~retries:s.retries ~timeout:s.timeout
                  in
                  (* Durable before acked: the manifest hits disk
                     (atomic rename) before the Accepted goes out. *)
                  Store.save ~state_dir:t.cfg.state_dir m;
                  `Fresh (register_locked t m)
                end
              end)
    in
    match decision with
    | `Known -> Protocol.Accepted { id; total = n; known = true }
    | `Busy reason ->
        T.Counter.incr retry_after_c;
        (* Hint scales with queue depth: a deeper backlog asks clients
           to stay away longer, shedding load earliest where it is
           cheapest — at admission. *)
        let seconds =
          0.05 +. (0.01 *. float_of_int (Supervisor.pending (pool t)))
        in
        Protocol.Retry_after { seconds = Float.min seconds 2.0; reason }
    | `Fresh sub ->
        enqueue t sub;
        Protocol.Accepted { id; total = n; known = false }
  end

let find_sub t ~tenant ~id k =
  match locked t (fun () -> Hashtbl.find_opt t.subs (tenant, id)) with
  | None ->
      T.Counter.incr refused_c;
      Protocol.Refused
        {
          code = "unknown-id";
          message = Printf.sprintf "no submission %s for tenant %s" id tenant;
        }
  | Some sub -> k sub

let progress_locked sub =
  {
    Protocol.total = List.length sub.manifest.specs;
    completed = sub.completed;
    failed = sub.failed;
    skipped = sub.skipped;
  }

let handle_status t ~tenant ~id =
  find_sub t ~tenant ~id (fun sub ->
      locked t (fun () ->
          let p = progress_locked sub in
          let state =
            if sub.cancelled then "cancelled"
            else if p.completed + p.skipped >= p.total then "completed"
            else if p.completed > 0 then "running"
            else "queued"
          in
          Protocol.Status_of { id; state; progress = p }))

let handle_cancel t ~tenant ~id =
  find_sub t ~tenant ~id (fun sub ->
      locked t (fun () ->
          sub.cancelled <- true;
          Protocol.Cancelled { id; skipped = sub.skipped }))

let handle_results t ~tenant ~id =
  find_sub t ~tenant ~id (fun sub ->
      (* Served straight from the journal — the same bytes a resume
         would replay, so daemon results ≡ local sweep results. *)
      let results =
        List.filter_map
          (fun spec ->
            Checkpoint.find sub.checkpoint spec
            |> Option.map (fun r -> (Spec.key spec, r)))
          sub.manifest.specs
      in
      Protocol.Results_of { id; results })

let health t =
  let p = pool t in
  let pending = Supervisor.pending p in
  let in_flight = Supervisor.in_flight p in
  let restarts = Supervisor.restarts p in
  let h =
    locked t (fun () ->
        {
          Protocol.pending;
          in_flight;
          workers = t.cfg.workers;
          restarts;
          tenants = Hashtbl.length t.caches;
          submissions = t.submissions;
          jobs_done = t.jobs_done;
          cache_hits = t.cache_hits;
          executed = t.executed;
          draining = t.draining;
        })
  in
  T.Gauge.set queue_g (float_of_int h.pending);
  T.Gauge.set in_flight_g (float_of_int h.in_flight);
  T.Gauge.set restarts_g (float_of_int h.restarts);
  if h.jobs_done > 0 then
    T.Gauge.set hit_rate_g
      (float_of_int h.cache_hits /. float_of_int h.jobs_done);
  h

let drain t =
  locked t (fun () ->
      if not t.draining then begin
        t.draining <- true;
        Log.info (fun k -> k "draining: no new submissions; finishing %d job(s)"
          (Supervisor.pending (pool t) + Supervisor.in_flight (pool t)))
      end)

let dispatch t = function
  | Protocol.Submit s -> handle_submit t s
  | Protocol.Status { tenant; id } -> handle_status t ~tenant ~id
  | Protocol.Cancel { tenant; id } -> handle_cancel t ~tenant ~id
  | Protocol.Results { tenant; id } -> handle_results t ~tenant ~id
  | Protocol.Health -> Protocol.Health_of (health t)
  | Protocol.Drain ->
      drain t;
      Protocol.Draining

let client_thread t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rec loop () =
        match Wire.recv fd with
        | None -> ()
        | Some payload ->
            let resp =
              match Protocol.request_of_string payload with
              | Ok req -> dispatch t req
              | Error reason ->
                  T.Counter.incr refused_c;
                  Protocol.Refused { code = "bad-request"; message = reason }
            in
            Wire.send fd (Protocol.response_to_string resp);
            loop ()
      in
      try loop () with
      | Wire.Closed | Unix.Unix_error _ -> ()
      | Wire.Oversized _ as e ->
          (* The stream is desynced past a garbage length; answer once
             and hang up. *)
          (try
             Wire.send fd
               (Protocol.response_to_string
                  (Protocol.Refused
                     { code = "bad-frame"; message = Printexc.to_string e }))
           with _ -> ());
          ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)

let record_exit t reason =
  Mutex.lock t.exit_mutex;
  if t.exit_reason = None then t.exit_reason <- Some reason;
  Condition.broadcast t.exit_cond;
  Mutex.unlock t.exit_mutex

let close_journals t =
  locked t (fun () ->
      Hashtbl.iter (fun _ sub -> Checkpoint.close sub.checkpoint) t.subs)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop || Supervisor.aborted (pool t) then begin
      (* Simulated kill -9: wind the pool down, close fds (process
         death would), release NOTHING else — the stale lockfile and
         socket are the next incarnation's problem, by design. *)
      Log.warn (fun k -> k "killed: exiting without cleanup");
      Supervisor.shutdown (pool t);
      (try Unix.close t.listen with Unix.Unix_error _ -> ());
      close_journals t;
      let why =
        match Supervisor.fatal_exn (pool t) with
        | Some e -> Printexc.to_string e
        | None -> "stopped"
      in
      record_exit t (Killed why)
    end
    else if locked t (fun () -> t.draining) && Supervisor.idle (pool t)
    then begin
      Supervisor.shutdown (pool t);
      (try Unix.close t.listen with Unix.Unix_error _ -> ());
      (try Sys.remove t.cfg.socket with Sys_error _ -> ());
      close_journals t;
      Lockfile.release t.lock;
      Log.info (fun k -> k "drained: all jobs finished, state released");
      record_exit t Drained
    end
    else begin
      if Atomic.get t.drain_flag then drain t;
      (match Unix.select [ t.listen ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen with
          | fd, _ -> ignore (Thread.create (client_thread t) fd)
          | exception
              Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _)
            -> ())
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let start cfg =
  (* A peer hanging up mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  mkdir_p cfg.state_dir;
  let lock = Lockfile.acquire (Store.lock_path ~state_dir:cfg.state_dir) in
  (* We hold the state lock, so a pre-existing socket file is a dead
     daemon's leavings: unlink and rebind. *)
  mkdir_p (Filename.dirname cfg.socket);
  if Sys.file_exists cfg.socket then (
    try Sys.remove cfg.socket with Sys_error _ -> ());
  let listen = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen (ADDR_UNIX cfg.socket);
     Unix.listen listen 64;
     Unix.set_nonblock listen
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     Lockfile.release lock;
     raise e);
  let t =
    {
      cfg;
      lock;
      listen;
      mutex = Mutex.create ();
      subs = Hashtbl.create 16;
      caches = Hashtbl.create 8;
      submissions = 0;
      jobs_done = 0;
      cache_hits = 0;
      executed = 0;
      draining = false;
      stop = Atomic.make false;
      drain_flag = Atomic.make false;
      pool = None;
      exit_mutex = Mutex.create ();
      exit_cond = Condition.create ();
      exit_reason = None;
      accept_thread = None;
    }
  in
  let fatal = function Faults.Sweep_killed _ -> true | _ -> false in
  let on_restart job =
    job.kills <- job.kills + 1;
    Log.warn (fun k ->
        k "worker died holding %s (kill #%d); job requeued, worker respawned"
          (Spec.digest job.spec) job.kills)
  in
  let on_fatal e =
    Log.err (fun k -> k "fatal: %s — aborting daemon" (Printexc.to_string e));
    Atomic.set t.stop true
  in
  t.pool <-
    Some
      (Supervisor.create ~on_restart ~fatal ~on_fatal ~workers:cfg.workers
         (fun job -> exec_job t job));
  (* Crash recovery: every manifested submission is re-registered and
     fully re-enqueued; jobs the journal already answers for resolve
     as journal hits without re-executing. *)
  let replayed = Store.load_all ~state_dir:cfg.state_dir in
  List.iter
    (fun m ->
      let sub = locked t (fun () -> register_locked t m) in
      enqueue t sub;
      Log.info (fun k ->
          k "replayed submission %s/%s (%d job(s), %d already journaled)"
            m.Store.tenant m.Store.id (List.length m.Store.specs)
            (Checkpoint.loaded sub.checkpoint)))
    replayed;
  Log.info (fun k ->
      k "listening on %s (state %s, %d worker(s), %d replayed submission(s))"
        cfg.socket cfg.state_dir cfg.workers (List.length replayed));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  Mutex.lock t.exit_mutex;
  while t.exit_reason = None do
    Condition.wait t.exit_cond t.exit_mutex
  done;
  let r = Option.get t.exit_reason in
  Mutex.unlock t.exit_mutex;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  r

let run cfg = wait (start cfg)

(* Async-signal-safe (one atomic store): the SIGTERM handler calls
   this; the accept loop's 0.25s tick picks it up and starts the
   actual (mutex-taking) drain outside signal context. *)
let request_drain t = Atomic.set t.drain_flag true
let socket_path t = t.cfg.socket
let restarts t = Supervisor.restarts (pool t)
