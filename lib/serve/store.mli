(** On-disk layout of a serve daemon's state dir, sharded per tenant.

    {v
    <state_dir>/
      serve.lock                           single-daemon lockfile
      tenants/<name>/cache/                result cache
      tenants/<name>/sweeps/               checkpoint journals
      tenants/<name>/submissions/<id>.json durable manifests
    v}

    A manifest is written atomically (tmp + rename) {e before} the
    daemon acks a submission, making [Accepted] a durable promise: a
    daemon killed right after the ack finds the manifest on restart
    and requeues exactly the jobs its journal does not answer for.
    The submission id is {!Pc_exec.Checkpoint.sweep_digest} of the
    ordered spec list — manifest, journal and resubmission dedup share
    one identity. *)

type manifest = {
  id : string;
  tenant : string;
  specs : Pc_exec.Spec.t list;
  retries : int;
  timeout : float option;
}

val submission_id : Pc_exec.Spec.t list -> string

val make :
  tenant:string ->
  specs:Pc_exec.Spec.t list ->
  retries:int ->
  timeout:float option ->
  manifest

val lock_path : state_dir:string -> string
val cache_dir : state_dir:string -> string -> string
val journal_dir : state_dir:string -> string -> string

val save : state_dir:string -> manifest -> unit
(** Atomic write; fsync-free (the ack path's durability bar is the
    rename — a torn [.tmp] is ignored by {!load_all}). *)

val load_all : state_dir:string -> manifest list
(** Every readable manifest under every tenant, sorted (tenant, id).
    Unreadable or tampered manifests are logged and skipped. *)
