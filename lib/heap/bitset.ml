(* A growable hierarchical bitset over [0, cap): a 32-ary radix tree of
   bitmask words. Level 0 packs the members 32 per word; each higher
   level has one bit per word below, set iff that word is non-empty.
   Membership updates and ordered neighbour queries (succ/pred) run in
   O(levels) = O(log32 cap) word operations with no allocation, which
   is what makes the imperative heap substrate allocation-free on its
   hot paths. *)

type t = {
  mutable nlevels : int;
  mutable cap : int; (* always 32^nlevels *)
  mutable levels : int array array;
      (* levels.(k) has cap / 32^(k+1) words; levels.(nlevels-1) has 1 *)
}

let level_len cap k = cap lsr (5 * (k + 1))

let create () =
  let nlevels = 2 in
  let cap = 1 lsl (5 * nlevels) in
  {
    nlevels;
    cap;
    levels = Array.init nlevels (fun k -> Array.make (level_len cap k) 0);
  }

let capacity t = t.cap

(* Grow so that [n] is an addressable index. Existing level arrays are
   prefixes of their grown versions; each new top level gets bit 0 set
   iff the old top word was non-empty. *)
let ensure t n =
  if n >= t.cap then begin
    let nlevels = ref t.nlevels in
    while n >= 1 lsl (5 * !nlevels) do
      incr nlevels
    done;
    let nlevels = !nlevels in
    let cap = 1 lsl (5 * nlevels) in
    let levels =
      Array.init nlevels (fun k ->
          let a = Array.make (level_len cap k) 0 in
          if k < t.nlevels then
            Array.blit t.levels.(k) 0 a 0 (Array.length t.levels.(k))
          else if k >= t.nlevels && t.levels.(t.nlevels - 1).(0) <> 0 then
            (* the old top word sits at index 0 of every new level *)
            a.(0) <- 1;
          a)
    in
    t.nlevels <- nlevels;
    t.cap <- cap;
    t.levels <- levels
  end

let mem t i =
  i >= 0 && i < t.cap
  && t.levels.(0).(i lsr 5) land (1 lsl (i land 31)) <> 0

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative index";
  ensure t i;
  let rec go k idx =
    if k < t.nlevels then begin
      let w = idx lsr 5 and b = idx land 31 in
      let a = t.levels.(k) in
      let old = a.(w) in
      a.(w) <- old lor (1 lsl b);
      if old = 0 then go (k + 1) w
    end
  in
  go 0 i

let remove t i =
  if i >= 0 && i < t.cap then begin
    let rec go k idx =
      if k < t.nlevels then begin
        let w = idx lsr 5 and b = idx land 31 in
        let a = t.levels.(k) in
        let nw = a.(w) land lnot (1 lsl b) in
        a.(w) <- nw;
        if nw = 0 then go (k + 1) w
      end
    in
    go 0 i
  end

(* Leftmost member under node [w] of level [k] (which must be
   non-empty). *)
let rec descend_min t k w =
  let c = (w lsl 5) lor Bits.ntz32 t.levels.(k).(w) in
  if k = 0 then c else descend_min t (k - 1) c

let rec descend_max t k w =
  let c = (w lsl 5) lor Bits.msb32 t.levels.(k).(w) in
  if k = 0 then c else descend_max t (k - 1) c

(* Least member >= i, or -1. *)
let succ t i =
  let i = max i 0 in
  if i >= t.cap then -1
  else begin
    let rec up k idx =
      if k >= t.nlevels then -1
      else if idx >= t.cap lsr (5 * k) then -1
      else begin
        let w = idx lsr 5 and b = idx land 31 in
        let rest = t.levels.(k).(w) lsr b in
        if rest <> 0 then begin
          let c = (w lsl 5) lor (b + Bits.ntz32 rest) in
          if k = 0 then c else descend_min t (k - 1) c
        end
        else up (k + 1) (w + 1)
      end
    in
    up 0 i
  end

(* Greatest member <= i, or -1. *)
let pred t i =
  let i = min i (t.cap - 1) in
  if i < 0 then -1
  else begin
    let rec up k idx =
      if k >= t.nlevels || idx < 0 then -1
      else begin
        let w = idx lsr 5 and b = idx land 31 in
        let below = t.levels.(k).(w) land ((1 lsl (b + 1)) - 1) in
        if below <> 0 then begin
          let c = (w lsl 5) lor Bits.msb32 below in
          if k = 0 then c else descend_max t (k - 1) c
        end
        else if w = 0 then -1
        else up (k + 1) (w - 1)
      end
    in
    up 0 i
  end

(* Descending traversal with early exit: visit members [<= from] in
   decreasing order while [f] keeps returning [true]. One pruned radix
   walk, unlike a [pred] loop which restarts from the root per member. *)
let rev_iter_while t ~from f =
  let hi = min from (t.cap - 1) in
  if hi >= 0 then begin
    let rec scan k w =
      let base = w lsl 5 in
      let chi = hi lsr (5 * k) in
      let bhi = if chi >= base + 31 then 31 else chi - base in
      if bhi < 0 then true
      else bits k base (t.levels.(k).(w) land ((1 lsl (bhi + 1)) - 1))
    and bits k base rest =
      if rest = 0 then true
      else begin
        let b = Bits.msb32 rest in
        let c = base lor b in
        let cont = if k = 0 then f c else scan (k - 1) c in
        if cont then bits k base (rest land lnot (1 lsl b)) else false
      end
    in
    ignore (scan (t.nlevels - 1) 0 : bool)
  end

let is_empty t = t.levels.(t.nlevels - 1).(0) = 0

(* Ascending iteration via repeated [succ]: amortised O(1) per member
   within a word, O(levels) across word boundaries. *)
let iter_from t i f =
  let rec go i =
    let j = succ t i in
    if j >= 0 then begin
      f j;
      go (j + 1)
    end
  in
  go i

let iter t f = iter_from t 0 f
