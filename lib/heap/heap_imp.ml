(* Imperative heap backend. Live objects live in flat parallel arrays
   indexed by slot; a growable int array maps oids to slots (oids are
   dense sequential ints, so an array beats a hashtable), a second one
   maps start addresses back to slots, and a hierarchical bitset over
   start addresses supplies address-ordered iteration and the
   straddler lookup for range queries. alloc/free/move are O(1) plus
   the free-index update; [fold_objects_in] is O(k log32 range) for k
   intersecting objects. Observationally identical to [Heap_ref]
   (pinned by the differential suite).

   Memory note: [slot_of_oid] grows with the total number of
   allocations ever made (8 bytes each) and [slot_at] with the highest
   address touched — both linear in work already done by the
   simulation, and both far below the persistent backend's GC churn in
   practice. *)

type obj = Heap_types.obj = { oid : Oid.t; addr : int; size : int }

type event = Heap_types.event =
  | Alloc of obj
  | Free of obj
  | Move of { oid : Oid.t; size : int; src : int; dst : int }

type t = {
  free : Free_index_imp.t;
  mutable slot_of_oid : int array; (* oid -> slot, -1 unknown/dead *)
  mutable oid_of : int array; (* slot -> oid; next-free link when dead *)
  mutable addr_of : int array; (* slot -> start address *)
  mutable size_of : int array; (* slot -> size *)
  mutable slots_used : int;
  mutable free_head : int; (* head of the dead-slot freelist, -1 none *)
  mutable slot_at : int array; (* start address -> slot, -1 none *)
  (* Fenwick tree over [size_of] keyed by start address (1-indexed,
     length = length slot_at + 1), so window-occupancy sums are
     O(log m) instead of a per-object walk. *)
  mutable fen : int array;
  starts : Bitset.t; (* live-object start addresses *)
  mutable nlive : int;
  mutable next_oid : int;
  mutable live_words : int;
  mutable allocated_total : int;
  mutable moved_total : int;
  mutable freed_total : int;
  mutable high_water : int;
  mutable listeners : (event -> unit) list;
}

let create () =
  {
    free = Free_index_imp.create ();
    slot_of_oid = Array.make 1024 (-1);
    oid_of = Array.make 1024 (-1);
    addr_of = Array.make 1024 (-1);
    size_of = Array.make 1024 0;
    slots_used = 0;
    free_head = -1;
    slot_at = Array.make 1024 (-1);
    fen = Array.make 1025 0;
    starts = Bitset.create ();
    nlive = 0;
    next_oid = 0;
    live_words = 0;
    allocated_total = 0;
    moved_total = 0;
    freed_total = 0;
    high_water = 0;
    listeners = [];
  }

let on_event t f = t.listeners <- f :: t.listeners
let[@inline] has_listeners t = t.listeners != []

let emit t ev =
  match t.listeners with
  | [] -> ()
  | [ f ] -> f ev
  | fs -> List.iter (fun f -> f ev) fs

let live_words t = t.live_words
let live_objects t = t.nlive
let allocated_total t = t.allocated_total
let moved_total t = t.moved_total
let freed_total t = t.freed_total
let high_water t = t.high_water
let free_index t = t.free
let is_free t ~addr ~size = Free_index_imp.is_free t.free ~addr ~len:size

let grown_copy a n ~fill =
  let cap = ref (2 * Array.length a) in
  while n >= !cap do
    cap := !cap * 2
  done;
  let a' = Array.make !cap fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let ensure_oid t oid =
  if oid >= Array.length t.slot_of_oid then
    t.slot_of_oid <- grown_copy t.slot_of_oid oid ~fill:(-1)

let fen_add t a delta =
  let n = Array.length t.fen in
  let i = ref (a + 1) in
  while !i < n do
    t.fen.(!i) <- t.fen.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Sum of [size_of] over live start addresses < [x]. *)
let fen_prefix t x =
  let rec go s i =
    if i <= 0 then s
    else go (s + Array.unsafe_get t.fen i) (i land (i - 1))
  in
  go 0 (min x (Array.length t.fen - 1))

let ensure_addr t addr =
  if addr >= Array.length t.slot_at then begin
    t.slot_at <- grown_copy t.slot_at addr ~fill:(-1);
    (* A Fenwick tree of one size does not embed in a larger one;
       rebuild it from the live-start bitset. *)
    t.fen <- Array.make (Array.length t.slot_at + 1) 0;
    Bitset.iter t.starts (fun a -> fen_add t a t.size_of.(t.slot_at.(a)))
  end

let new_slot t =
  if t.free_head >= 0 then begin
    let s = t.free_head in
    t.free_head <- t.oid_of.(s);
    s
  end
  else begin
    let s = t.slots_used in
    if s >= Array.length t.oid_of then begin
      t.oid_of <- grown_copy t.oid_of s ~fill:(-1);
      t.addr_of <- grown_copy t.addr_of s ~fill:(-1);
      t.size_of <- grown_copy t.size_of s ~fill:0
    end;
    t.slots_used <- s + 1;
    s
  end

let release_slot t s =
  t.oid_of.(s) <- t.free_head;
  t.free_head <- s

(* Only valid on live slots (a dead slot's [oid_of] holds the freelist
   link). *)
let[@inline] obj_of_slot t s =
  { oid = Oid.of_int t.oid_of.(s); addr = t.addr_of.(s); size = t.size_of.(s) }

let slot_of_opt t oid =
  let i = Oid.to_int oid in
  if i >= 0 && i < Array.length t.slot_of_oid then t.slot_of_oid.(i) else -1

let slot_of t oid =
  let s = slot_of_opt t oid in
  if s < 0 then invalid_arg "Heap.get: unknown or dead object";
  s

let find t oid =
  let s = slot_of_opt t oid in
  if s < 0 then None else Some (obj_of_slot t s)

let get t oid = obj_of_slot t (slot_of t oid)
let addr t oid = t.addr_of.(slot_of t oid)
let size t oid = t.size_of.(slot_of t oid)
let[@inline] bump_high_water t stop = if stop > t.high_water then t.high_water <- stop

let alloc t ~addr ~size =
  if size <= 0 then invalid_arg "Heap.alloc: non-positive size";
  if addr < 0 then invalid_arg "Heap.alloc: negative address";
  Free_index_imp.occupy t.free ~addr ~len:size;
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  let s = new_slot t in
  ensure_oid t oid;
  t.slot_of_oid.(oid) <- s;
  t.oid_of.(s) <- oid;
  t.addr_of.(s) <- addr;
  t.size_of.(s) <- size;
  ensure_addr t addr;
  t.slot_at.(addr) <- s;
  fen_add t addr size;
  Bitset.add t.starts addr;
  t.nlive <- t.nlive + 1;
  t.live_words <- t.live_words + size;
  t.allocated_total <- t.allocated_total + size;
  bump_high_water t (addr + size);
  let oid = Oid.of_int oid in
  if has_listeners t then emit t (Alloc { oid; addr; size });
  oid

let free t oid =
  let s = slot_of t oid in
  let addr = t.addr_of.(s) and size = t.size_of.(s) in
  Free_index_imp.release t.free ~addr ~len:size;
  t.slot_of_oid.(Oid.to_int oid) <- -1;
  release_slot t s;
  t.slot_at.(addr) <- -1;
  fen_add t addr (-size);
  Bitset.remove t.starts addr;
  t.nlive <- t.nlive - 1;
  t.live_words <- t.live_words - size;
  t.freed_total <- t.freed_total + size;
  if has_listeners t then emit t (Free { oid; addr; size })

let move t oid ~dst =
  let s = slot_of t oid in
  let src = t.addr_of.(s) in
  if dst <> src then begin
    let size = t.size_of.(s) in
    (* Free the source first so that a move into space overlapping the
       object's own old extent (a sliding move) is legal. *)
    Free_index_imp.release t.free ~addr:src ~len:size;
    begin
      try Free_index_imp.occupy t.free ~addr:dst ~len:size
      with Invalid_argument _ as e ->
        (* Roll back so the heap stays consistent for the caller. *)
        Free_index_imp.occupy t.free ~addr:src ~len:size;
        raise e
    end;
    t.slot_at.(src) <- -1;
    fen_add t src (-size);
    Bitset.remove t.starts src;
    t.addr_of.(s) <- dst;
    ensure_addr t dst;
    t.slot_at.(dst) <- s;
    fen_add t dst size;
    Bitset.add t.starts dst;
    t.moved_total <- t.moved_total + size;
    bump_high_water t (dst + size);
    if has_listeners t then emit t (Move { oid; size; src; dst })
  end

(* [iter_live]/[fold_live] visit a snapshot taken up front, so the
   callback may freely alloc/free/move (the semispace flip moves every
   object mid-iteration) — mirroring the reference backend, whose
   persistent address map is immune to mutation during iteration. *)
let snapshot_live t =
  if t.nlive = 0 then [||]
  else begin
    let objs =
      Array.make t.nlive { oid = Oid.of_int 0; addr = -1; size = 0 }
    in
    let i = ref 0 in
    Bitset.iter t.starts (fun a ->
        objs.(!i) <- obj_of_slot t t.slot_at.(a);
        incr i);
    objs
  end

let iter_live t f = Array.iter f (snapshot_live t)
let fold_live t ~init ~f = Array.fold_left f init (snapshot_live t)

let live_list t = List.rev (fold_live t ~init:[] ~f:(fun acc o -> o :: acc))

(* Fold over the live objects intersecting [start, stop) in address
   order: the possible straddler from just below [start], then a bitset
   walk of starts in [start, stop). This is the hot query behind
   eviction cost estimates. *)
let fold_objects_in t ~start ~stop ~init ~f =
  let acc = ref init in
  let p = Bitset.pred t.starts (start - 1) in
  (if p >= 0 then begin
     let s = t.slot_at.(p) in
     if p + t.size_of.(s) > start then acc := f !acc (obj_of_slot t s)
   end);
  let rec go a =
    if a >= 0 && a < stop then begin
      acc := f !acc (obj_of_slot t t.slot_at.(a));
      go (Bitset.succ t.starts (a + 1))
    end
  in
  go (Bitset.succ t.starts start);
  !acc

let objects_in t ~start ~stop =
  List.rev (fold_objects_in t ~start ~stop ~init:[] ~f:(fun acc o -> o :: acc))

(* Total size of the live objects intersecting [start, stop) —
   straddlers count fully — walking in address order straight over the
   slot arrays and giving up as soon as the total exceeds [cap]: the
   eviction planner discards such windows, so the first over-cap
   prefix sum is as good as the exact answer (and, being determined by
   the address order alone, backend-independent). *)
let clear_cost t ~start ~stop ~cap:_ =
  let straddler =
    let p = Bitset.pred t.starts (start - 1) in
    if p < 0 then 0
    else
      let s = t.slot_at.(p) in
      if p + t.size_of.(s) > start then t.size_of.(s) else 0
  in
  straddler + fen_prefix t stop - fen_prefix t (max start 0)

(* Like [fold_objects_in] but summing clipped extents straight from the
   slot arrays, without materialising object records. *)
let occupied_words_in t ~start ~stop =
  let total = ref 0 in
  let clip a s = min stop (a + t.size_of.(s)) - max start a in
  let p = Bitset.pred t.starts (start - 1) in
  (if p >= 0 then begin
     let s = t.slot_at.(p) in
     if p + t.size_of.(s) > start then total := !total + clip p s
   end);
  let rec go a =
    if a >= 0 && a < stop then begin
      total := !total + clip a t.slot_at.(a);
      go (Bitset.succ t.starts (a + 1))
    end
  in
  go (Bitset.succ t.starts start);
  !total

let check_invariants t =
  Free_index_imp.check_invariants t.free;
  let total = ref 0 and prev_stop = ref 0 and count = ref 0 in
  iter_live t (fun o ->
      if o.addr < !prev_stop then failwith "Heap: overlapping objects";
      if Free_index_imp.is_free t.free ~addr:o.addr ~len:o.size then
        failwith "Heap: live object marked free";
      let s = slot_of_opt t o.oid in
      if s < 0 || t.addr_of.(s) <> o.addr || t.slot_at.(o.addr) <> s then
        failwith "Heap: slot-table drift";
      prev_stop := o.addr + o.size;
      total := !total + o.size;
      incr count);
  if !total <> t.live_words then failwith "Heap: live_words drift";
  if !count <> t.nlive then failwith "Heap: object-table drift";
  if !prev_stop > t.high_water then failwith "Heap: high_water too low";
  (* Every word below the frontier is either free or covered by an
     object; check by comparing word counts. *)
  let frontier = Free_index_imp.frontier t.free in
  let occupied_below =
    fold_live t ~init:0 ~f:(fun acc o ->
        acc + max 0 (min frontier (o.addr + o.size) - min frontier o.addr))
  in
  if occupied_below + Free_index_imp.free_below_frontier t.free <> frontier
  then failwith "Heap: free/occupied words do not tile the frontier"
