(** Reference (persistent) heap backend: hashtable object store plus a
    persistent address map, over [Free_index_ref]. Kept as the semantic
    oracle for [Heap_imp]; see the dispatching [Heap] for the full
    interface documentation.

    A set of live objects placed at disjoint word extents of [\[0, ∞)],
    with the bookkeeping the paper's model needs: cumulative allocated
    words (which recharge the compaction budget), cumulative moved
    words, and the high-water mark — the heap size [HS] of the paper
    ("the smallest consecutive space the memory manager may use",
    anchored at address 0).

    The heap is policy-free: {i where} objects go is decided by a
    memory manager (see [Pc_manager]); {i which} objects exist is
    decided by a program (see [Pc_adversary]). *)

type obj = Heap_types.obj = { oid : Oid.t; addr : int; size : int }

type event = Heap_types.event =
  | Alloc of obj
  | Free of obj
  | Move of { oid : Oid.t; size : int; src : int; dst : int }

type t

val create : unit -> t

val on_event : t -> (event -> unit) -> unit
(** Subscribe to heap events; listeners fire synchronously, most
    recently added first. *)

val alloc : t -> addr:int -> size:int -> Oid.t
(** Place a fresh object. Raises [Invalid_argument] if the extent is
    not entirely free or [size <= 0]. *)

val free : t -> Oid.t -> unit
(** Raises [Invalid_argument] on an unknown or dead object. *)

val move : t -> Oid.t -> dst:int -> unit
(** Relocate a live object; sliding moves overlapping the old extent
    are allowed. Counts the object's size towards {!moved_total}.
    Raises [Invalid_argument] if the destination is not free. *)

val find : t -> Oid.t -> obj option
val get : t -> Oid.t -> obj
val addr : t -> Oid.t -> int
val size : t -> Oid.t -> int
val live_words : t -> int
val live_objects : t -> int

val allocated_total : t -> int
(** Cumulative words allocated over the whole execution (the paper's
    [s]). *)

val moved_total : t -> int
(** Cumulative words moved by compaction. *)

val freed_total : t -> int

val high_water : t -> int
(** The heap size [HS] so far. *)

val free_index : t -> Free_index_ref.t
(** The free-space index (shared, read-only by convention: managers
    must mutate the heap only through {!alloc}/{!free}/{!move}). *)

val is_free : t -> addr:int -> size:int -> bool
val iter_live : t -> (obj -> unit) -> unit
(** In address order. *)

val fold_live : t -> init:'a -> f:('a -> obj -> 'a) -> 'a
val live_list : t -> obj list

val objects_in : t -> start:int -> stop:int -> obj list
(** Live objects intersecting [\[start, stop)], in address order. *)

val fold_objects_in :
  t -> start:int -> stop:int -> init:'a -> f:('a -> obj -> 'a) -> 'a
(** Fold over the live objects intersecting [\[start, stop)] in address
    order without materialising a list — the allocation-free core of
    {!objects_in} and {!occupied_words_in}. *)

val occupied_words_in : t -> start:int -> stop:int -> int
val clear_cost : t -> start:int -> stop:int -> cap:int -> int
(** Number of live words inside [\[start, stop)]. *)

val check_invariants : t -> unit
(** Full [O(n)] consistency check; raises [Failure] on drift. *)

val pp_obj : Format.formatter -> obj -> unit
val pp_event : Format.formatter -> event -> unit
