(** Reference (persistent) free-space index: AVL gap tree plus a
    by-length set. Kept as the semantic oracle for the imperative
    backend; see [Free_index] for the dispatching front-end and the
    full interface documentation. All fit queries are exact and run in
    time logarithmic in the number of gaps. *)

type t

type fit = Heap_types.fit =
  | Gap of int  (** address inside an existing gap *)
  | Tail of int  (** address at (or aligned just above) the frontier *)

val create : unit -> t

val frontier : t -> int
(** All addresses at or above the frontier are free. *)

val gap_count : t -> int
val free_below_frontier : t -> int
val largest_gap : t -> int
val is_free : t -> addr:int -> len:int -> bool

val occupy : t -> addr:int -> len:int -> unit
(** Mark an entirely-free extent occupied. Raises [Invalid_argument]
    otherwise. *)

val release : t -> addr:int -> len:int -> unit
(** Mark an occupied extent free, coalescing with neighbours and the
    tail. Raises [Invalid_argument] if any part is already free or the
    extent reaches beyond the frontier. *)

val first_fit : t -> size:int -> fit
(** Lowest address where [size] words fit (always succeeds thanks to
    the tail). *)

val first_fit_gap : t -> size:int -> int option
(** Like {!first_fit} but only considers existing gaps. *)

val first_fit_from : t -> from:int -> size:int -> int option
(** Lowest address [>= from] inside an existing gap where [size] words
    fit. *)

val best_fit_gap : t -> size:int -> int option
(** Address of a smallest gap of length [>= size] (ties: lowest
    address). *)

val worst_fit_gap : t -> size:int -> int option
(** Address of the largest gap if it can hold [size] words. *)

val first_aligned_fit : t -> size:int -> align:int -> fit
(** Lowest [align]-divisible address where [size] words fit. *)

val first_aligned_fit_gap : t -> size:int -> align:int -> int option

val first_aligned_fit_from :
  t -> from:int -> size:int -> align:int -> int option
(** Lowest [align]-divisible address [>= from] where [size] words fit
    inside an existing gap. *)

val iter_gaps : t -> (int -> int -> unit) -> unit
val gaps : t -> (int * int) list
(** [(start, len)] pairs in address order. *)

val largest_gaps : t -> k:int -> (int * int) list
(** The [k] largest gaps as [(start, len)], longest first. *)

val iter_largest_gaps : t -> k:int -> (int -> int -> unit) -> unit
(** [iter_largest_gaps t ~k f] calls [f start len] on the [k] largest
    gaps, longest first, without materialising a list. *)

val check_invariants : t -> unit
(** Raises [Failure] on a broken structural invariant; for tests. *)
