(** Recording and replaying heap event traces.

    Replaying a recorded trace onto a fresh heap reproduces the same
    final state and high-water mark — an end-to-end determinism check
    and an offline debugging aid. *)

type entry = { seq : int; event : Heap.event }
type t

val create : unit -> t

val record : t -> Heap.t -> unit
(** Start appending [heap]'s events to the trace. The heap should be
    fresh if the trace is meant to be replayable. *)

val of_events : Heap.event list -> t
(** A trace from a bare event list, numbered from 0 — how the shrinker
    builds candidate sub-traces. *)

val length : t -> int
val entries : t -> entry list
(** In execution order. *)

val iter : t -> (entry -> unit) -> unit

val replay : ?backend:Backend.t -> t -> (Heap.t, string) result
(** Re-execute the trace on a fresh heap of the chosen substrate
    (default {!Backend.default}). Trace-side oids are remapped to the
    replay heap's oids, so the trace need not be oid-dense: dropping
    events from a recorded trace leaves it replayable as long as no
    surviving event refers to a dropped allocation. [Error] reports
    the first event the heap rejects (unknown or duplicate oid,
    non-free extent) — for a shrinker this is a candidate rejection,
    not a crash. Exceptions raised by heap-event listeners attached to
    the replay heap (oracles, budgets) propagate unchanged. *)

val replay_onto : t -> Heap.t -> (unit, string) result
(** {!replay} onto a caller-supplied (fresh) heap — the caller can
    attach listeners (e.g. an audit oracle) before replaying. *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

type stats = {
  events : int;
  allocs : int;
  frees : int;
  moves : int;
  allocated_words : int;
  freed_words : int;
  moved_words : int;
  size_histogram : int array;
      (** index [k] counts allocations with size in
          [\[2{^k}, 2{^k+1})] *)
  mean_lifetime : float;  (** events between alloc and free *)
  immortal : int;  (** allocated but never freed within the trace *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
