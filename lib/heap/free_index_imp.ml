(* Imperative free-space index: a flat 32-ary radix bitmap over gap
   start addresses, augmented per node with the maximum gap length
   underneath. Observationally identical to [Free_index_ref] (pinned by
   the differential suite in test/test_backend_diff.ml) but mutable and
   cache-friendly: occupy/release and the fit queries touch a handful
   of int-array words per level — O(log32 address-range) — with no
   allocation on the hot paths, where the persistent backend rebuilds
   O(log n) AVL spine nodes per operation.

   Representation. [gap_len.(a) = l > 0] iff a maximal gap [a, a + l)
   starts at address [a]. [masks] is the hierarchical bitmap of the
   set of gap starts (level 0 packs addresses 32 per word; bit [b] of
   [masks.(k).(w)] says child [w*32 + b] of level [k-1] is non-empty),
   and [maxl.(k).(w)] is the largest gap length anywhere under that
   node ([0] for an empty node). The capacity is a power of two and
   grows geometrically, so the top level always has exactly one word
   and [maxl.(nlevels-1).(0)] is the global largest gap.

   For best-fit parity with the reference (smallest sufficient length,
   ties by lowest address) we also index which gap lengths are present:
   [len_small]/[len_big] count gaps per exact length and [lens] is the
   bitset of lengths with non-zero count. *)

(* Reusable scratch for [iter_largest_gaps]: a binary max-heap of
   (level, word, mask of unconsumed children) entries in parallel int
   arrays, each keyed by the exact key of its best child. *)
type topk = {
  mutable tk_len : int array; (* key: gap length (exact or node max) *)
  mutable tk_start : int array; (* key: gap start / highest address *)
  mutable tk_lvl : int array;
  mutable tk_w : int array;
  mutable tk_mask : int array;
  mutable tk_n : int;
}

type t = {
  mutable frontier : int;
  mutable nlevels : int;
  mutable cap : int; (* power of two; 32^nlevels >= cap *)
  mutable masks : int array array;
  mutable maxl : int array array;
  mutable gap_len : int array; (* length [cap] *)
  mutable gap_count : int;
  mutable free_total : int;
  lens : Bitset.t; (* distinct gap lengths present *)
  len_small : int array; (* count of gaps per length < small_len_limit *)
  len_big : (int, int) Hashtbl.t; (* likewise for longer gaps *)
  tk : topk; (* scratch for iter_largest_gaps *)
  mutable tk_busy : bool; (* reentrant calls fall back to fresh scratch *)
}

type fit = Heap_types.fit = Gap of int | Tail of int

let small_len_limit = 4096

let level_len cap k =
  let shift = 5 * (k + 1) in
  (cap + (1 lsl shift) - 1) lsr shift

let nlevels_for cap =
  let rec go n = if 1 lsl (5 * n) >= cap then n else go (n + 1) in
  go 1

let topk_make () =
  {
    tk_len = Array.make 64 0;
    tk_start = Array.make 64 0;
    tk_lvl = Array.make 64 0;
    tk_w = Array.make 64 0;
    tk_mask = Array.make 64 0;
    tk_n = 0;
  }

let create () =
  let nlevels = 2 in
  let cap = 1 lsl (5 * nlevels) in
  {
    frontier = 0;
    nlevels;
    cap;
    masks = Array.init nlevels (fun k -> Array.make (level_len cap k) 0);
    maxl = Array.init nlevels (fun k -> Array.make (level_len cap k) 0);
    gap_len = Array.make cap 0;
    gap_count = 0;
    free_total = 0;
    lens = Bitset.create ();
    len_small = Array.make small_len_limit 0;
    len_big = Hashtbl.create 16;
    tk = topk_make ();
    tk_busy = false;
  }

let frontier t = t.frontier
let gap_count t = t.gap_count
let free_below_frontier t = t.free_total
let[@inline] root_max t = t.maxl.(t.nlevels - 1).(0)
let largest_gap t = root_max t

(* Grow the capacity (by doubling) so that address [n] is addressable.
   Existing level arrays are prefixes of their grown versions. A fresh
   top level covers all old content under child 0, so it gets bit 0 and
   the old root max iff the structure is non-empty. *)
let ensure t n =
  if n >= t.cap then begin
    let cap = ref (t.cap * 2) in
    while n >= !cap do
      cap := !cap * 2
    done;
    let cap = !cap in
    let nlevels = nlevels_for cap in
    let gap_len = Array.make cap 0 in
    Array.blit t.gap_len 0 gap_len 0 t.cap;
    let masks = Array.make nlevels [||] and maxl = Array.make nlevels [||] in
    for k = 0 to nlevels - 1 do
      let len = level_len cap k in
      let m = Array.make len 0 and x = Array.make len 0 in
      if k < t.nlevels then begin
        Array.blit t.masks.(k) 0 m 0 (Array.length t.masks.(k));
        Array.blit t.maxl.(k) 0 x 0 (Array.length t.maxl.(k))
      end
      else if masks.(k - 1).(0) <> 0 then begin
        m.(0) <- 1;
        x.(0) <- maxl.(k - 1).(0)
      end;
      masks.(k) <- m;
      maxl.(k) <- x
    done;
    t.cap <- cap;
    t.nlevels <- nlevels;
    t.masks <- masks;
    t.maxl <- maxl;
    t.gap_len <- gap_len
  end

let incr_len_count t len =
  let c =
    if len < small_len_limit then begin
      let c = t.len_small.(len) in
      t.len_small.(len) <- c + 1;
      c
    end
    else begin
      let c =
        match Hashtbl.find_opt t.len_big len with Some c -> c | None -> 0
      in
      Hashtbl.replace t.len_big len (c + 1);
      c
    end
  in
  if c = 0 then Bitset.add t.lens len

let decr_len_count t len =
  let c =
    if len < small_len_limit then begin
      let c = t.len_small.(len) - 1 in
      t.len_small.(len) <- c;
      c
    end
    else begin
      let c = Hashtbl.find t.len_big len - 1 in
      if c = 0 then Hashtbl.remove t.len_big len
      else Hashtbl.replace t.len_big len c;
      c
    end
  in
  if c = 0 then Bitset.remove t.lens len

let add_gap t start len =
  ensure t start;
  t.gap_len.(start) <- len;
  t.gap_count <- t.gap_count + 1;
  t.free_total <- t.free_total + len;
  incr_len_count t len;
  (* Set the bit at each level; keep climbing only while this gap
     raises the node max (an empty word has max 0 < len, so a fresh
     bit always climbs). *)
  let rec go k idx =
    if k < t.nlevels then begin
      let w = idx lsr 5 and b = idx land 31 in
      t.masks.(k).(w) <- t.masks.(k).(w) lor (1 lsl b);
      if len > t.maxl.(k).(w) then begin
        t.maxl.(k).(w) <- len;
        go (k + 1) w
      end
    end
  in
  go 0 start

let remove_gap t start =
  let len = t.gap_len.(start) in
  t.gap_len.(start) <- 0;
  t.gap_count <- t.gap_count - 1;
  t.free_total <- t.free_total - len;
  decr_len_count t len;
  (* Clear the bit where the child emptied and recompute the node max
     where the removed child may have held it; stop as soon as neither
     the emptiness nor the max of the current word changed. *)
  let rec go k idx ~child_empty ~old_child_max ~new_child_max =
    if k < t.nlevels then begin
      let w = idx lsr 5 and b = idx land 31 in
      let word =
        if child_empty then begin
          let word = t.masks.(k).(w) land lnot (1 lsl b) in
          t.masks.(k).(w) <- word;
          word
        end
        else t.masks.(k).(w)
      in
      let old_max = t.maxl.(k).(w) in
      if old_child_max >= old_max then begin
        let rec remax nm rest =
          if rest = 0 then nm
          else begin
            let bb = Bits.ntz32 rest in
            let c = (w lsl 5) lor bb in
            let v = if k = 0 then t.gap_len.(c) else t.maxl.(k - 1).(c) in
            remax (if v > nm then v else nm) (rest land (rest - 1))
          end
        in
        let nm = remax new_child_max (word land lnot (1 lsl b)) in
        t.maxl.(k).(w) <- nm;
        if word = 0 || nm < old_max then
          go (k + 1) w ~child_empty:(word = 0) ~old_child_max:old_max
            ~new_child_max:nm
      end
      (* else the max came from another child, so the word is still
         non-empty and nothing changes further up *)
    end
  in
  go 0 start ~child_empty:true ~old_child_max:len ~new_child_max:0

(* Greatest gap start <= i, or -1. *)
let pred_start t i =
  let i = min i (t.cap - 1) in
  if i < 0 then -1
  else begin
    let rec descend_max k w =
      let c = (w lsl 5) lor Bits.msb32 t.masks.(k).(w) in
      if k = 0 then c else descend_max (k - 1) c
    in
    let rec up k idx =
      if k >= t.nlevels || idx < 0 then -1
      else begin
        let w = idx lsr 5 and b = idx land 31 in
        let below = t.masks.(k).(w) land ((1 lsl (b + 1)) - 1) in
        if below <> 0 then begin
          let c = (w lsl 5) lor Bits.msb32 below in
          if k = 0 then c else descend_max (k - 1) c
        end
        else if w = 0 then -1
        else up (k + 1) (w - 1)
      end
    in
    up 0 i
  end

(* Least gap start >= i, or -1. *)
let succ_start t i =
  let i = max i 0 in
  if i >= t.cap then -1
  else begin
    let rec descend_min k w =
      let c = (w lsl 5) lor Bits.ntz32 t.masks.(k).(w) in
      if k = 0 then c else descend_min (k - 1) c
    in
    let rec up k idx =
      if k >= t.nlevels then -1
      else begin
        let w = idx lsr 5 and b = idx land 31 in
        if w >= Array.length t.masks.(k) then -1
        else begin
          let rest = t.masks.(k).(w) lsr b in
          if rest <> 0 then begin
            let c = (w lsl 5) lor (b + Bits.ntz32 rest) in
            if k = 0 then c else descend_min (k - 1) c
          end
          else up (k + 1) (w + 1)
        end
      end
    in
    up 0 i
  end

(* Visit the gaps of length >= size with start >= lo in ascending start
   order, pruning whole subtrees on the max-length augmentation.
   [test start len] returns -1 to continue, any other value to stop the
   scan with that result; the scan returns -1 when exhausted. *)
let search_up t ~lo ~size test =
  let lo = max lo 0 in
  if lo >= t.cap || root_max t < size then -1
  else begin
    (* [bits] walks one word's set bits ascending; tail recursion keeps
       the state in registers — a [ref]-based loop would allocate per
       node visited, and this runs on every allocation. *)
    let rec scan k w =
      let base = w lsl 5 in
      let c0 = lo lsr (5 * k) in
      let b0 = if c0 <= base then 0 else c0 - base in
      if b0 > 31 then -1 else bits k base (t.masks.(k).(w) lsr b0) b0
    and bits k base rest b =
      if rest = 0 then -1
      else begin
        let skip = Bits.ntz32 rest in
        let bb = b + skip in
        let c = base lor bb in
        let r =
          if k = 0 then begin
            let gl = t.gap_len.(c) in
            if gl >= size then test c gl else -1
          end
          else if t.maxl.(k - 1).(c) >= size then scan (k - 1) c
          else -1
        in
        if r <> -1 then r else bits k base (rest lsr (skip + 1)) (bb + 1)
      end
    in
    scan (t.nlevels - 1) 0
  end

(* Same, descending start order over gaps with start <= hi. *)
let search_down t ~hi ~size test =
  let hi = min hi (t.cap - 1) in
  if hi < 0 || root_max t < size then -1
  else begin
    (* Allocation-free like [search_up]: this is the top-k enumeration
       workhorse behind every eviction. *)
    let rec scan k w =
      let base = w lsl 5 in
      let chi = hi lsr (5 * k) in
      let bhi = if chi >= base + 31 then 31 else chi - base in
      if bhi < 0 then -1
      else bits k base (t.masks.(k).(w) land ((1 lsl (bhi + 1)) - 1))
    and bits k base rest =
      if rest = 0 then -1
      else begin
        let bb = Bits.msb32 rest in
        let c = base lor bb in
        let r =
          if k = 0 then begin
            let gl = t.gap_len.(c) in
            if gl >= size then test c gl else -1
          end
          else if t.maxl.(k - 1).(c) >= size then scan (k - 1) c
          else -1
        in
        if r <> -1 then r else bits k base (rest land lnot (1 lsl bb))
      end
    in
    scan (t.nlevels - 1) 0
  end

(* The gap [(start, len)] below the frontier containing
   [addr, addr + len) entirely, if any; returns the start, with the
   length one O(1) array read away. *)
let containing_gap t ~addr ~len =
  if addr >= t.frontier then -1
  else begin
    let s = pred_start t addr in
    if s >= 0 && addr + len <= s + t.gap_len.(s) then s else -1
  end

let is_free t ~addr ~len =
  if len = 0 then true
  else if addr + len > t.frontier then addr >= t.frontier
  else containing_gap t ~addr ~len >= 0

let occupy t ~addr ~len =
  if len <= 0 then invalid_arg "Free_index.occupy: non-positive length";
  if addr >= t.frontier then begin
    (* Carve from the tail, leaving a gap between the old frontier and
       the new allocation when they are not adjacent. *)
    if addr > t.frontier then add_gap t t.frontier (addr - t.frontier);
    t.frontier <- addr + len
  end
  else begin
    match containing_gap t ~addr ~len with
    | -1 -> invalid_arg "Free_index.occupy: extent not free"
    | s ->
        let l = t.gap_len.(s) in
        remove_gap t s;
        if addr > s then add_gap t s (addr - s);
        if addr + len < s + l then add_gap t (addr + len) (s + l - addr - len)
  end

(* Mark [addr, addr + len) free again, coalescing with neighbouring
   gaps and with the tail. Both overlap checks run before any mutation
   so a rejected release leaves the index untouched; the predecessor
   check covers a gap starting exactly at [addr] (s = addr gives
   s + l > addr), which must be rejected, not coalesced. *)
let release t ~addr ~len =
  if len <= 0 then invalid_arg "Free_index.release: non-positive length";
  if addr + len > t.frontier then
    invalid_arg "Free_index.release: extent beyond frontier";
  let coalesce_left =
    let p = pred_start t addr in
    if p < 0 then -1
    else begin
      let stop = p + t.gap_len.(p) in
      if stop > addr then invalid_arg "Free_index.release: extent already free"
      else if stop = addr then p
      else -1
    end
  in
  let coalesce_right =
    (* Any gap starting inside the extent means part of it is already
       free; a gap starting exactly at its end coalesces. *)
    let s = succ_start t (addr + 1) in
    if s < 0 then -1
    else if s < addr + len then
      invalid_arg "Free_index.release: extent already free"
    else if s = addr + len then s
    else -1
  in
  let start, length =
    if coalesce_left >= 0 then begin
      let l = t.gap_len.(coalesce_left) in
      remove_gap t coalesce_left;
      (coalesce_left, l + len)
    end
    else (addr, len)
  in
  let start, length =
    if coalesce_right >= 0 then begin
      let l = t.gap_len.(coalesce_right) in
      remove_gap t coalesce_right;
      (start, length + l)
    end
    else (start, length)
  in
  if start + length = t.frontier then t.frontier <- start
  else add_gap t start length

let first_fit t ~size =
  match search_up t ~lo:0 ~size (fun s _ -> s) with
  | -1 -> Tail t.frontier
  | s -> Gap s

let first_fit_gap t ~size =
  match search_up t ~lo:0 ~size (fun s _ -> s) with -1 -> None | s -> Some s

let first_fit_from t ~from ~size =
  (* A gap starting before [from] may still contain [from, from+size):
     check the predecessor explicitly, then search starts >= from. *)
  let p = pred_start t from in
  if p >= 0 && p < from && p + t.gap_len.(p) >= from + size then Some from
  else begin
    match search_up t ~lo:from ~size (fun s _ -> s) with
    | -1 -> None
    | s -> Some s
  end

(* Reference best fit is the lexicographically least (len, start) with
   len >= size: first the smallest sufficient length present (from the
   length bitset), then the leftmost gap of exactly that length. The
   left-to-right scan may pass longer gaps — it prunes on max length,
   not exact length — so this is O(gaps) worst case, but best-fit
   placement is only exercised by the niche best-fit/TLSF managers at
   small scales. *)
let best_fit_gap t ~size =
  let l = Bitset.succ t.lens (max size 0) in
  if l < 0 then None
  else begin
    match search_up t ~lo:0 ~size:l (fun s gl -> if gl = l then s else -1) with
    | -1 -> None
    | s -> Some s
  end

(* Largest length, ties by largest start: every gap the descending scan
   visits already has the maximal length, so the first hit wins. *)
let worst_fit_gap t ~size =
  let lmax = root_max t in
  if lmax = 0 || lmax < size then None
  else begin
    match
      search_down t ~hi:(t.cap - 1) ~size:lmax (fun s gl ->
          if gl = lmax then s else -1)
    with
    | -1 -> None
    | s -> Some s
  end

let aligned_test ~size ~align s l =
  let a = Word.align_up s ~align in
  if a + size <= s + l then a else -1

let first_aligned_fit t ~size ~align =
  match search_up t ~lo:0 ~size (aligned_test ~size ~align) with
  | -1 -> Tail (Word.align_up t.frontier ~align)
  | a -> Gap a

let first_aligned_fit_gap t ~size ~align =
  match search_up t ~lo:0 ~size (aligned_test ~size ~align) with
  | -1 -> None
  | a -> Some a

(* Lowest aligned address >= from where [size] words fit inside an
   existing gap; the gap containing [from] itself is also considered. *)
let first_aligned_fit_from t ~from ~size ~align =
  let in_pred =
    let p = pred_start t from in
    if p >= 0 && p < from then begin
      let a = Word.align_up from ~align in
      if a + size <= p + t.gap_len.(p) then a else -1
    end
    else -1
  in
  if in_pred >= 0 then Some in_pred
  else begin
    match search_up t ~lo:from ~size (aligned_test ~size ~align) with
    | -1 -> None
    | a -> Some a
  end

let iter_gaps t f =
  ignore
    (search_up t ~lo:0 ~size:1 (fun s l ->
         f s l;
         -1))

let gaps t =
  let acc = ref [] in
  iter_gaps t (fun s l -> acc := (s, l) :: !acc);
  List.rev !acc

(* The k largest gaps as (len, start) lexicographically descending,
   enumerated best-first: a small binary max-heap holds radix subtrees
   keyed by (max length under the node, highest address under the
   node) — an upper bound on the key of every gap inside — plus
   already-resolved gaps keyed exactly. Popping a subtree pushes its
   children; popping a gap emits it, and the bound property guarantees
   no unexpanded gap can beat it. Each emission expands at most one
   root-to-leaf path, so a call is O(k * 32 log32 cap) no matter how
   many gaps or distinct lengths exist. (The eviction machinery calls
   this on every heap-growing allocation, so it must not degrade into
   a full-tree rescan.) *)
(* --- top-k gap enumeration ---------------------------------------

   The k largest gaps as (len, start) lexicographically descending,
   enumerated best-first. The scratch heap holds (level, word, mask of
   unconssumed children) entries keyed by the exact key of the word's
   best child under that order: for a level-0 word that is a concrete
   gap key (len, start); for higher words it is the child's
   (max-length, highest-address) upper bound, which dominates every
   gap key inside the child. Popping the root either emits its best
   gap (level 0: keys are exact) or descends one level into the best
   child; in both cases the remainder of the word re-enters the heap
   under its next-best key, so each emission costs O(32 log32 cap)
   word scans and the heap stays O(k + levels) small. The eviction
   machinery calls this on every heap-growing allocation, so it is
   written allocation-free in direct style: reused scratch arrays on
   [t], no closures, unsafe accesses on heap-internal indices. *)

let[@inline] tk_less h i j =
  let li = Array.unsafe_get h.tk_len i and lj = Array.unsafe_get h.tk_len j in
  li < lj
  || (li = lj && Array.unsafe_get h.tk_start i < Array.unsafe_get h.tk_start j)

let[@inline] tk_swap h i j =
  let sl = Array.unsafe_get h.tk_len i
  and ss = Array.unsafe_get h.tk_start i
  and sv = Array.unsafe_get h.tk_lvl i
  and sw = Array.unsafe_get h.tk_w i
  and sm = Array.unsafe_get h.tk_mask i in
  Array.unsafe_set h.tk_len i (Array.unsafe_get h.tk_len j);
  Array.unsafe_set h.tk_start i (Array.unsafe_get h.tk_start j);
  Array.unsafe_set h.tk_lvl i (Array.unsafe_get h.tk_lvl j);
  Array.unsafe_set h.tk_w i (Array.unsafe_get h.tk_w j);
  Array.unsafe_set h.tk_mask i (Array.unsafe_get h.tk_mask j);
  Array.unsafe_set h.tk_len j sl;
  Array.unsafe_set h.tk_start j ss;
  Array.unsafe_set h.tk_lvl j sv;
  Array.unsafe_set h.tk_w j sw;
  Array.unsafe_set h.tk_mask j sm

(* Insert the word (lvl, w) with unconsumed children [m], keyed by its
   best child; an empty mask is simply dropped. *)
let tk_push t h lvl w m =
  if m <> 0 then begin
    let best_len = ref (-1) and best_start = ref (-1) in
    let mm = ref m in
    if lvl = 0 then begin
      let base = w lsl 5 in
      while !mm <> 0 do
        let b = Bits.ntz32 !mm in
        mm := !mm land (!mm - 1);
        let c = base lor b in
        let len = Array.unsafe_get t.gap_len c in
        if len > !best_len || (len = !best_len && c > !best_start) then begin
          best_len := len;
          best_start := c
        end
      done
    end
    else begin
      let child_maxl = t.maxl.(lvl - 1) in
      let shift = 5 * lvl in
      let base = w lsl 5 in
      while !mm <> 0 do
        let b = Bits.ntz32 !mm in
        mm := !mm land (!mm - 1);
        let c = base lor b in
        let len = Array.unsafe_get child_maxl c in
        (* [best_start] holds the child index until the loop ends;
           children have disjoint address ranges, so on equal lengths
           the higher index always has the higher address bound. *)
        if len > !best_len || (len = !best_len && c > !best_start) then begin
          best_len := len;
          best_start := c
        end
      done;
      best_start := ((!best_start + 1) lsl shift) - 1
    end;
    if h.tk_n = Array.length h.tk_len then begin
      let grow a =
        let a' = Array.make (2 * Array.length a) 0 in
        Array.blit a 0 a' 0 (Array.length a);
        a'
      in
      h.tk_len <- grow h.tk_len;
      h.tk_start <- grow h.tk_start;
      h.tk_lvl <- grow h.tk_lvl;
      h.tk_w <- grow h.tk_w;
      h.tk_mask <- grow h.tk_mask
    end;
    let i = ref h.tk_n in
    h.tk_n <- h.tk_n + 1;
    Array.unsafe_set h.tk_len !i !best_len;
    Array.unsafe_set h.tk_start !i !best_start;
    Array.unsafe_set h.tk_lvl !i lvl;
    Array.unsafe_set h.tk_w !i w;
    Array.unsafe_set h.tk_mask !i m;
    while !i > 0 && tk_less h ((!i - 1) / 2) !i do
      tk_swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  end

let tk_pop_root h =
  h.tk_n <- h.tk_n - 1;
  if h.tk_n > 0 then begin
    tk_swap h 0 h.tk_n;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let m = ref !i in
      if l < h.tk_n && tk_less h !m l then m := l;
      if r < h.tk_n && tk_less h !m r then m := r;
      if !m <> !i then begin
        tk_swap h !i !m;
        i := !m
      end
      else continue := false
    done
  end

(* Best-first enumeration, exact (len, start) descending — see the
   comment block above. Used when the gap population is large: cost is
   O(k * 32 log32 cap) independent of the number of gaps. *)
let tk_run_heap t h k f =
  let top = t.nlevels - 1 in
  tk_push t h top 0 t.masks.(top).(0);
  let remaining = ref k in
  while !remaining > 0 && h.tk_n > 0 do
    let len = Array.unsafe_get h.tk_len 0
    and start = Array.unsafe_get h.tk_start 0
    and lvl = Array.unsafe_get h.tk_lvl 0
    and w = Array.unsafe_get h.tk_w 0
    and m = Array.unsafe_get h.tk_mask 0 in
    tk_pop_root h;
    if lvl = 0 then begin
      (* Level-0 keys are exact: the root is the next gap. *)
      f start len;
      decr remaining;
      tk_push t h 0 w (m land lnot (1 lsl (start land 31)))
    end
    else begin
      let b = (start lsr (5 * lvl)) land 31 in
      let c = (w lsl 5) lor b in
      tk_push t h (lvl - 1) c t.masks.(lvl - 1).(c);
      tk_push t h lvl w (m land lnot (1 lsl b))
    end
  done

(* Count of gaps of exactly length [l]. *)
let[@inline] len_count t l =
  if l < small_len_limit then t.len_small.(l)
  else match Hashtbl.find_opt t.len_big l with Some c -> c | None -> 0

(* Enumerate via the per-length index: find the k-th largest present
   gap length L* by walking the distinct lengths downward through
   [lens], collect the (fewer than k) gaps strictly longer than L* in
   one maxl-pruned descending address sweep and insertion-sort them —
   keys are (len, start) packed into single ints so the sort compare is
   one integer compare — then stream gaps of length exactly L* in
   descending start order until k gaps are out. Cost is O(distinct
   lengths + k · log32 cap). The packing needs [2 * 5 * nlevels <= 62];
   the best-first walk below covers larger capacities. *)
let tk_run_bylen t h k f =
  let shift = 5 * t.nlevels in
  let kk = min k t.gap_count in
  let lstar = ref (root_max t) and krem = ref kk in
  Bitset.rev_iter_while t.lens ~from:(root_max t) (fun l ->
      let c = len_count t l in
      if c >= !krem then begin
        lstar := l;
        false
      end
      else begin
        krem := !krem - c;
        true
      end);
  let lstar = !lstar and krem = !krem in
  let n_above = kk - krem in
  if Array.length h.tk_len < n_above then
    h.tk_len <- Array.make (max 64 n_above) 0;
  let a = h.tk_len in
  let n = ref 0 in
  if n_above > 0 then
    ignore
      (search_down t ~hi:(t.cap - 1) ~size:(lstar + 1) (fun s gl ->
           let key = (gl lsl shift) lor s in
           let i = ref !n in
           while !i > 0 && Array.unsafe_get a (!i - 1) < key do
             Array.unsafe_set a !i (Array.unsafe_get a (!i - 1));
             decr i
           done;
           Array.unsafe_set a !i key;
           incr n;
           -1));
  let low = (1 lsl shift) - 1 in
  for i = 0 to !n - 1 do
    let key = Array.unsafe_get a i in
    f (key land low) (key lsr shift)
  done;
  if krem > 0 then begin
    let left = ref krem in
    ignore
      (search_down t ~hi:(t.cap - 1) ~size:lstar (fun s gl ->
           if gl = lstar then begin
             f s lstar;
             decr left;
             if !left = 0 then s else -1
           end
           else -1))
  end

(* The eviction machinery calls this on every heap-growing allocation,
   so the common case must be cheap. *)
let iter_largest_gaps t ~k f =
  if k > 0 && t.gap_count > 0 then begin
    (* Reuse the scratch unless a callback re-enters on the same
       index, in which case the inner call gets fresh arrays. *)
    let reused = not t.tk_busy in
    let h = if reused then t.tk else topk_make () in
    if reused then t.tk_busy <- true;
    h.tk_n <- 0;
    let use_bylen = 2 * 5 * t.nlevels <= 62 in
    match if use_bylen then tk_run_bylen t h k f else tk_run_heap t h k f with
    | () -> if reused then t.tk_busy <- false
    | exception e ->
        if reused then t.tk_busy <- false;
        raise e
  end

let largest_gaps t ~k =
  let acc = ref [] in
  iter_largest_gaps t ~k (fun start len -> acc := (start, len) :: !acc);
  List.rev !acc

let check_invariants t =
  let prev_stop = ref (-1) and n = ref 0 and tot = ref 0 in
  let counts = Hashtbl.create 16 in
  iter_gaps t (fun s l ->
      if l <= 0 then failwith "Free_index: empty gap";
      if s <= !prev_stop then failwith "Free_index: touching/overlapping gaps";
      prev_stop := s + l;
      if s + l >= t.frontier then failwith "Free_index: gap touches frontier";
      incr n;
      tot := !tot + l;
      Hashtbl.replace counts l
        (1 + Option.value (Hashtbl.find_opt counts l) ~default:0));
  if !n <> t.gap_count then failwith "Free_index: index cardinality mismatch";
  if !tot <> t.free_total then failwith "Free_index: free total drift";
  (* the per-length counts and the length bitset agree with the gaps *)
  Hashtbl.iter
    (fun l c ->
      let stored =
        if l < small_len_limit then t.len_small.(l)
        else Option.value (Hashtbl.find_opt t.len_big l) ~default:0
      in
      if stored <> c then failwith "Free_index: length count drift";
      if not (Bitset.mem t.lens l) then
        failwith "Free_index: length missing from length set")
    counts;
  Bitset.iter t.lens (fun l ->
      if not (Hashtbl.mem counts l) then failwith "Free_index: stale length bit");
  (* every mask bit reflects a non-empty child and every max matches *)
  for k = 0 to t.nlevels - 1 do
    for w = 0 to Array.length t.masks.(k) - 1 do
      let m = ref 0 in
      for b = 0 to 31 do
        let c = (w lsl 5) lor b in
        let bit = t.masks.(k).(w) land (1 lsl b) <> 0 in
        let present, v =
          if k = 0 then
            if c < t.cap then (t.gap_len.(c) > 0, t.gap_len.(c)) else (false, 0)
          else if c < Array.length t.masks.(k - 1) then
            (t.masks.(k - 1).(c) <> 0, t.maxl.(k - 1).(c))
          else (false, 0)
        in
        if bit <> present then failwith "Free_index: radix bitmap drift";
        if present && v > !m then m := v
      done;
      if t.maxl.(k).(w) <> !m then
        failwith "Free_index: max-length augmentation drift"
    done
  done
