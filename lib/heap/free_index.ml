(* Dispatching front-end over the two free-index backends. Every
   operation is a single tag match away from the concrete
   implementation; both backends share [Heap_types.fit] so results pass
   through without re-wrapping. *)

type t = Ref of Free_index_ref.t | Imp of Free_index_imp.t
type fit = Heap_types.fit = Gap of int | Tail of int

let create ?backend () =
  match
    match backend with Some b -> b | None -> Backend.default ()
  with
  | Backend.Imperative -> Imp (Free_index_imp.create ())
  | Backend.Reference -> Ref (Free_index_ref.create ())

let backend = function Ref _ -> Backend.Reference | Imp _ -> Backend.Imperative
let of_ref r = Ref r
let of_imp i = Imp i

let frontier = function
  | Ref t -> Free_index_ref.frontier t
  | Imp t -> Free_index_imp.frontier t

let gap_count = function
  | Ref t -> Free_index_ref.gap_count t
  | Imp t -> Free_index_imp.gap_count t

let free_below_frontier = function
  | Ref t -> Free_index_ref.free_below_frontier t
  | Imp t -> Free_index_imp.free_below_frontier t

let largest_gap = function
  | Ref t -> Free_index_ref.largest_gap t
  | Imp t -> Free_index_imp.largest_gap t

(* Telemetry: every placement query is one "search"; the number of
   gaps alive when it runs bounds the probe work (exact for best/worst
   fit, which scan all gaps; an upper bound for the first-fit family).
   The per-gap distribution is only sampled at the [Full] level. *)
module T = Pc_telemetry

let searches_c = T.Registry.counter "free_index.searches"
let gaps_h = T.Registry.histogram "free_index.gaps_at_search"

let observe_search t =
  if !T.Sink.active then begin
    T.Counter.incr searches_c;
    if !T.Sink.full_active then T.Histogram.observe gaps_h (gap_count t)
  end

let is_free t ~addr ~len =
  match t with
  | Ref t -> Free_index_ref.is_free t ~addr ~len
  | Imp t -> Free_index_imp.is_free t ~addr ~len

let occupy t ~addr ~len =
  match t with
  | Ref t -> Free_index_ref.occupy t ~addr ~len
  | Imp t -> Free_index_imp.occupy t ~addr ~len

let release t ~addr ~len =
  match t with
  | Ref t -> Free_index_ref.release t ~addr ~len
  | Imp t -> Free_index_imp.release t ~addr ~len

let first_fit t ~size =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.first_fit t ~size
  | Imp t -> Free_index_imp.first_fit t ~size

let first_fit_gap t ~size =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.first_fit_gap t ~size
  | Imp t -> Free_index_imp.first_fit_gap t ~size

let first_fit_from t ~from ~size =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.first_fit_from t ~from ~size
  | Imp t -> Free_index_imp.first_fit_from t ~from ~size

let best_fit_gap t ~size =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.best_fit_gap t ~size
  | Imp t -> Free_index_imp.best_fit_gap t ~size

let worst_fit_gap t ~size =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.worst_fit_gap t ~size
  | Imp t -> Free_index_imp.worst_fit_gap t ~size

let first_aligned_fit t ~size ~align =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.first_aligned_fit t ~size ~align
  | Imp t -> Free_index_imp.first_aligned_fit t ~size ~align

let first_aligned_fit_gap t ~size ~align =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.first_aligned_fit_gap t ~size ~align
  | Imp t -> Free_index_imp.first_aligned_fit_gap t ~size ~align

let first_aligned_fit_from t ~from ~size ~align =
  observe_search t;
  match t with
  | Ref t -> Free_index_ref.first_aligned_fit_from t ~from ~size ~align
  | Imp t -> Free_index_imp.first_aligned_fit_from t ~from ~size ~align

let iter_gaps t f =
  match t with
  | Ref t -> Free_index_ref.iter_gaps t f
  | Imp t -> Free_index_imp.iter_gaps t f

let gaps = function
  | Ref t -> Free_index_ref.gaps t
  | Imp t -> Free_index_imp.gaps t

let largest_gaps t ~k =
  match t with
  | Ref t -> Free_index_ref.largest_gaps t ~k
  | Imp t -> Free_index_imp.largest_gaps t ~k

let iter_largest_gaps t ~k f =
  match t with
  | Ref t -> Free_index_ref.iter_largest_gaps t ~k f
  | Imp t -> Free_index_imp.iter_largest_gaps t ~k f

let check_invariants = function
  | Ref t -> Free_index_ref.check_invariants t
  | Imp t -> Free_index_imp.check_invariants t
