(** Imperative free-space index: a mutable 32-ary radix bitmap over gap
    start addresses with per-node max-gap-length augmentation.
    Observationally identical to [Free_index_ref] (pinned by the
    differential test suite) with O(log32 address-range) occupy,
    release and fit queries that allocate nothing on the hot path. See
    [Free_index] for the dispatching front-end and the full interface
    documentation. *)

type t

type fit = Heap_types.fit =
  | Gap of int  (** address inside an existing gap *)
  | Tail of int  (** address at (or aligned just above) the frontier *)

val create : unit -> t
val frontier : t -> int
val gap_count : t -> int
val free_below_frontier : t -> int
val largest_gap : t -> int
val is_free : t -> addr:int -> len:int -> bool
val occupy : t -> addr:int -> len:int -> unit
val release : t -> addr:int -> len:int -> unit
val first_fit : t -> size:int -> fit
val first_fit_gap : t -> size:int -> int option
val first_fit_from : t -> from:int -> size:int -> int option
val best_fit_gap : t -> size:int -> int option
val worst_fit_gap : t -> size:int -> int option
val first_aligned_fit : t -> size:int -> align:int -> fit
val first_aligned_fit_gap : t -> size:int -> align:int -> int option

val first_aligned_fit_from :
  t -> from:int -> size:int -> align:int -> int option

val iter_gaps : t -> (int -> int -> unit) -> unit
val gaps : t -> (int * int) list
val largest_gaps : t -> k:int -> (int * int) list
val iter_largest_gaps : t -> k:int -> (int -> int -> unit) -> unit
val check_invariants : t -> unit
