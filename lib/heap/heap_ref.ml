(* The simulated heap: a set of live objects placed at disjoint word
   extents of [0, ∞), plus the bookkeeping the paper's model needs —
   cumulative allocation (the budget recharge), cumulative moved words,
   and the high-water mark HS (the "smallest consecutive space" of
   Section 4, with the heap anchored at address 0). *)

type obj = Heap_types.obj = { oid : Oid.t; addr : int; size : int }

type event = Heap_types.event =
  | Alloc of obj
  | Free of obj
  | Move of { oid : Oid.t; size : int; src : int; dst : int }

type t = {
  objects : obj Oid.Table.t;
  mutable by_addr : obj Stdlib.Map.Make(Int).t;
  free : Free_index_ref.t;
  mutable next_oid : int;
  mutable live_words : int;
  mutable allocated_total : int;
  mutable moved_total : int;
  mutable freed_total : int;
  mutable high_water : int;
  mutable listeners : (event -> unit) list;
}

module Addr_map = Stdlib.Map.Make (Int)

let create () =
  {
    objects = Oid.Table.create 1024;
    by_addr = Addr_map.empty;
    free = Free_index_ref.create ();
    next_oid = 0;
    live_words = 0;
    allocated_total = 0;
    moved_total = 0;
    freed_total = 0;
    high_water = 0;
    listeners = [];
  }

let on_event t f = t.listeners <- f :: t.listeners

(* Call sites guard on [has_listeners] so that with no subscribers the
   event constructor itself is never allocated — alloc/free/move are
   the simulator's innermost loop. *)
let[@inline] has_listeners t = t.listeners != []

let emit t ev =
  match t.listeners with
  | [] -> ()
  | [ f ] -> f ev
  | fs -> List.iter (fun f -> f ev) fs
let live_words t = t.live_words
let live_objects t = Oid.Table.length t.objects
let allocated_total t = t.allocated_total
let moved_total t = t.moved_total
let freed_total t = t.freed_total
let high_water t = t.high_water
let free_index t = t.free
let is_free t ~addr ~size = Free_index_ref.is_free t.free ~addr ~len:size

let find t oid = Oid.Table.find_opt t.objects oid

let get t oid =
  match find t oid with
  | Some o -> o
  | None -> invalid_arg "Heap.get: unknown or dead object"

let addr t oid = (get t oid).addr
let size t oid = (get t oid).size

let bump_high_water t stop = if stop > t.high_water then t.high_water <- stop

let alloc t ~addr ~size =
  if size <= 0 then invalid_arg "Heap.alloc: non-positive size";
  if addr < 0 then invalid_arg "Heap.alloc: negative address";
  Free_index_ref.occupy t.free ~addr ~len:size;
  let oid = Oid.of_int t.next_oid in
  t.next_oid <- t.next_oid + 1;
  let o = { oid; addr; size } in
  Oid.Table.replace t.objects oid o;
  t.by_addr <- Addr_map.add addr o t.by_addr;
  t.live_words <- t.live_words + size;
  t.allocated_total <- t.allocated_total + size;
  bump_high_water t (addr + size);
  if has_listeners t then emit t (Alloc o);
  oid

let free t oid =
  let o = get t oid in
  Free_index_ref.release t.free ~addr:o.addr ~len:o.size;
  Oid.Table.remove t.objects oid;
  t.by_addr <- Addr_map.remove o.addr t.by_addr;
  t.live_words <- t.live_words - o.size;
  t.freed_total <- t.freed_total + o.size;
  if has_listeners t then emit t (Free o)

let move t oid ~dst =
  let o = get t oid in
  if dst = o.addr then ()
  else begin
    (* Free the source first so that a move into space overlapping the
       object's own old extent (a sliding move) is legal. *)
    Free_index_ref.release t.free ~addr:o.addr ~len:o.size;
    begin
      try Free_index_ref.occupy t.free ~addr:dst ~len:o.size
      with Invalid_argument _ as e ->
        (* Roll back so the heap stays consistent for the caller. *)
        Free_index_ref.occupy t.free ~addr:o.addr ~len:o.size;
        raise e
    end;
    let o' = { o with addr = dst } in
    Oid.Table.replace t.objects oid o';
    t.by_addr <- Addr_map.add dst o' (Addr_map.remove o.addr t.by_addr);
    t.moved_total <- t.moved_total + o.size;
    bump_high_water t (dst + o.size);
    if has_listeners t then
      emit t (Move { oid; size = o.size; src = o.addr; dst })
  end

let iter_live t f = Addr_map.iter (fun _ o -> f o) t.by_addr
let fold_live t ~init ~f = Addr_map.fold (fun _ o acc -> f acc o) t.by_addr init
let live_list t = List.rev (fold_live t ~init:[] ~f:(fun acc o -> o :: acc))

(* Fold over the live objects intersecting [start, stop) in address
   order, straight off the address map — no intermediate list. This is
   the hot query behind eviction cost estimates. *)
let fold_objects_in t ~start ~stop ~init ~f =
  let acc =
    match Addr_map.find_last_opt (fun a -> a < start) t.by_addr with
    | Some (_, o) when o.addr + o.size > start -> f init o
    | Some _ | None -> init
  in
  let rec go acc seq =
    match seq () with
    | Seq.Cons ((a, o), rest) when a < stop -> go (f acc o) rest
    | Seq.Cons _ | Seq.Nil -> acc
  in
  go acc (Addr_map.to_seq_from start t.by_addr)

let objects_in t ~start ~stop =
  List.rev (fold_objects_in t ~start ~stop ~init:[] ~f:(fun acc o -> o :: acc))

(* Exact total, matching the imperative backend's Fenwick-tree sum
   bit for bit; [cap] is accepted for interface parity but unused
   here. *)
let clear_cost t ~start ~stop ~cap:_ =
  let total =
    match Addr_map.find_last_opt (fun a -> a < start) t.by_addr with
    | Some (_, o) when o.addr + o.size > start -> o.size
    | Some _ | None -> 0
  in
  let rec go total seq =
    match seq () with
    | Seq.Cons ((a, o), rest) when a < stop -> go (total + o.size) rest
    | Seq.Cons _ | Seq.Nil -> total
  in
  go total (Addr_map.to_seq_from start t.by_addr)

let occupied_words_in t ~start ~stop =
  fold_objects_in t ~start ~stop ~init:0 ~f:(fun acc o ->
      acc + (min stop (o.addr + o.size) - max start o.addr))

let check_invariants t =
  Free_index_ref.check_invariants t.free;
  let total = ref 0 in
  let prev_stop = ref 0 in
  Addr_map.iter
    (fun a o ->
      if a <> o.addr then failwith "Heap: by_addr key mismatch";
      if a < !prev_stop then failwith "Heap: overlapping objects";
      if Free_index_ref.is_free t.free ~addr:a ~len:o.size then
        failwith "Heap: live object marked free";
      prev_stop := a + o.size;
      total := !total + o.size)
    t.by_addr;
  if !total <> t.live_words then failwith "Heap: live_words drift";
  if Addr_map.cardinal t.by_addr <> Oid.Table.length t.objects then
    failwith "Heap: object-table drift";
  if !prev_stop > t.high_water then failwith "Heap: high_water too low";
  (* Every word below the frontier is either free or covered by an
     object; check by comparing word counts. *)
  let frontier = Free_index_ref.frontier t.free in
  let occupied_below =
    fold_live t ~init:0 ~f:(fun acc o ->
        acc + max 0 (min frontier (o.addr + o.size) - min frontier o.addr))
  in
  if occupied_below + Free_index_ref.free_below_frontier t.free <> frontier then
    failwith "Heap: free/occupied words do not tile the frontier"

let pp_obj ppf (o : obj) =
  Fmt.pf ppf "%a@[%d,%d)" Oid.pp o.oid o.addr (o.addr + o.size)

let pp_event ppf = function
  | Alloc o -> Fmt.pf ppf "alloc %a" pp_obj o
  | Free o -> Fmt.pf ppf "free %a" pp_obj o
  | Move m ->
      Fmt.pf ppf "move %a %d -> %d (%d words)" Oid.pp m.oid m.src m.dst m.size
