(** Growable hierarchical (32-ary radix) bitset over [\[0, cap)].

    Membership updates and ordered neighbour queries run in
    O(log32 cap) word operations without allocating, which is what the
    imperative heap substrate leans on for its hot paths. Capacity
    grows on demand in [add]/[ensure]. *)

type t

val create : unit -> t
val capacity : t -> int

val ensure : t -> int -> unit
(** [ensure t n] grows the capacity so that index [n] is addressable. *)

val mem : t -> int -> bool

val add : t -> int -> unit
(** Idempotent; grows the set as needed. Raises [Invalid_argument] on a
    negative index. *)

val remove : t -> int -> unit
(** Idempotent; out-of-range indices are ignored. *)

val succ : t -> int -> int
(** Least member [>= i], or [-1]. *)

val pred : t -> int -> int
(** Greatest member [<= i], or [-1]. *)

val rev_iter_while : t -> from:int -> (int -> bool) -> unit
(** Visit members [<= from] in decreasing order while the callback
    returns [true]. A single pruned radix walk. *)

val is_empty : t -> bool
val iter : t -> (int -> unit) -> unit
val iter_from : t -> int -> (int -> unit) -> unit
(** Ascending order. *)
