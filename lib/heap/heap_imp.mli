(** Imperative heap backend: flat slot arrays plus an address bitset,
    over [Free_index_imp]. O(1) alloc/free/move (plus the free-index
    update) and allocation-free range accounting. Observationally
    identical to [Heap_ref]; see the dispatching [Heap] for the full
    interface documentation. *)

type obj = Heap_types.obj = { oid : Oid.t; addr : int; size : int }

type event = Heap_types.event =
  | Alloc of obj
  | Free of obj
  | Move of { oid : Oid.t; size : int; src : int; dst : int }

type t

val create : unit -> t
val on_event : t -> (event -> unit) -> unit
val alloc : t -> addr:int -> size:int -> Oid.t
val free : t -> Oid.t -> unit
val move : t -> Oid.t -> dst:int -> unit
val find : t -> Oid.t -> obj option
val get : t -> Oid.t -> obj
val addr : t -> Oid.t -> int
val size : t -> Oid.t -> int
val live_words : t -> int
val live_objects : t -> int
val allocated_total : t -> int
val moved_total : t -> int
val freed_total : t -> int
val high_water : t -> int
val free_index : t -> Free_index_imp.t
val is_free : t -> addr:int -> size:int -> bool
val iter_live : t -> (obj -> unit) -> unit
val fold_live : t -> init:'a -> f:('a -> obj -> 'a) -> 'a
val live_list : t -> obj list
val objects_in : t -> start:int -> stop:int -> obj list

val fold_objects_in :
  t -> start:int -> stop:int -> init:'a -> f:('a -> obj -> 'a) -> 'a

val occupied_words_in : t -> start:int -> stop:int -> int
val clear_cost : t -> start:int -> stop:int -> cap:int -> int
val check_invariants : t -> unit
