(** Selection of the heap substrate backend.

    Both backends are observably identical (pinned by the differential
    test suite); [Imperative] is the fast flat/radix substrate and the
    default, [Reference] is the original persistent substrate kept as
    the semantic oracle and for A/B timing.

    The process-wide default is [Imperative] unless the
    [PC_HEAP_BACKEND] environment variable says otherwise; it can also
    be set programmatically. [Heap.create] and [Free_index.create]
    consult it when no explicit backend is passed. *)

type t = Imperative | Reference

val default : unit -> t
val set_default : t -> unit

val of_string : string -> (t, [ `Msg of string ]) result
(** Accepts "imperative"/"imp" and "reference"/"ref". *)

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
