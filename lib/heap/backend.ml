(* Which heap substrate newly created heaps and free indexes use.

   Both backends implement the same observable semantics (the
   differential suite in test/test_backend_diff.ml pins placements,
   frontier, gap lists and metrics to be identical); they differ only
   in data representation and speed:

   - [Imperative]: flat object store + radix-bitmap free index, O(1)
     amortised alloc/free/move, allocation-free fit queries. The
     default.
   - [Reference]: the original persistent substrate (AVL gap tree +
     by-length set + address map). Kept as the semantic oracle and for
     A/B timing.

   The process-wide default is [Imperative], overridable with the
   PC_HEAP_BACKEND environment variable ("imperative"/"reference") or
   programmatically with [set_default]. The default is read atomically
   so Domain-based sweep workers observe a coherent value. *)

type t = Imperative | Reference

let to_string = function Imperative -> "imperative" | Reference -> "reference"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "imperative" | "imp" -> Ok Imperative
  | "reference" | "ref" -> Ok Reference
  | _ ->
      Error
        (`Msg
          (Fmt.str "unknown heap backend %S (expected imperative|reference)" s))

let of_string_exn s =
  match of_string s with Ok t -> t | Error (`Msg m) -> invalid_arg m

let state =
  Atomic.make
    (match Sys.getenv_opt "PC_HEAP_BACKEND" with
    | None | Some "" -> Imperative
    | Some s -> of_string_exn s)

let default () = Atomic.get state
let set_default b = Atomic.set state b
let pp ppf t = Fmt.string ppf (to_string t)
