(* Index of the free space of a conceptually unbounded heap [0, ∞).
   The space splits into a finite set of maximal gaps below the
   [frontier] plus an infinite free tail at [frontier, ∞). Invariant:
   no gap touches the frontier (such a gap is merged into the tail by
   retracting the frontier), and no two gaps touch each other. *)

module Len_order = struct
  type t = int * int (* len, start *)

  let compare (l1, s1) (l2, s2) =
    match Int.compare l1 l2 with 0 -> Int.compare s1 s2 | c -> c
end

module Len_set = Set.Make (Len_order)

type t = {
  mutable gaps : Gap_tree.t;
  mutable by_len : Len_set.t;
  mutable frontier : int;
}

type fit = Heap_types.fit = Gap of int | Tail of int

let create () = { gaps = Gap_tree.empty; by_len = Len_set.empty; frontier = 0 }
let frontier t = t.frontier
let gap_count t = Gap_tree.count t.gaps
let free_below_frontier t = Gap_tree.total t.gaps
let largest_gap t = Gap_tree.max_len t.gaps

let add_gap t start len =
  t.gaps <- Gap_tree.add t.gaps ~start ~len;
  t.by_len <- Len_set.add (len, start) t.by_len

let remove_gap t start len =
  t.gaps <- Gap_tree.remove t.gaps ~start;
  t.by_len <- Len_set.remove (len, start) t.by_len

(* The gap [(start, len)] below the frontier containing
   [addr, addr + len) entirely, if any. Returning the extent (not just
   the start) saves callers a second tree lookup. *)
let containing_gap t ~addr ~len =
  if addr >= t.frontier then None
  else begin
    match Gap_tree.pred t.gaps ~addr with
    | Some (s, l) when addr + len <= s + l -> Some (s, l)
    | Some _ | None -> None
  end

(* The gap (or tail) containing [addr, addr + len), if entirely free. *)
let containing t ~addr ~len =
  if addr >= t.frontier then Some (Tail t.frontier)
  else begin
    match containing_gap t ~addr ~len with
    | Some (s, _) -> Some (Gap s)
    | None -> None
  end

let is_free t ~addr ~len =
  if len = 0 then true
  else if addr + len > t.frontier then addr >= t.frontier
  else Option.is_some (containing t ~addr ~len)

(* Mark [addr, addr + len) occupied. The extent must be entirely free. *)
let occupy t ~addr ~len =
  if len <= 0 then invalid_arg "Free_index.occupy: non-positive length";
  if addr >= t.frontier then begin
    (* Carve from the tail, leaving a gap between the old frontier and
       the new allocation when they are not adjacent. *)
    if addr > t.frontier then add_gap t t.frontier (addr - t.frontier);
    t.frontier <- addr + len
  end
  else begin
    match containing_gap t ~addr ~len with
    | None -> invalid_arg "Free_index.occupy: extent not free"
    | Some (s, l) ->
        remove_gap t s l;
        if addr > s then add_gap t s (addr - s);
        if addr + len < s + l then add_gap t (addr + len) (s + l - addr - len)
  end

(* Mark [addr, addr + len) free again, coalescing with neighbouring
   gaps and with the tail. Both overlap checks run before any mutation
   so a rejected release leaves the index untouched. Note the
   predecessor check covers a gap starting exactly at [addr]
   (s = addr gives s + l > addr), which must be rejected, not
   coalesced. *)
let release t ~addr ~len =
  if len <= 0 then invalid_arg "Free_index.release: non-positive length";
  if addr + len > t.frontier then
    invalid_arg "Free_index.release: extent beyond frontier";
  let coalesce_left =
    match Gap_tree.pred t.gaps ~addr with
    | Some (s, l) when s + l > addr ->
        invalid_arg "Free_index.release: extent already free"
    | Some (s, l) when s + l = addr -> Some (s, l)
    | Some _ | None -> None
  in
  let coalesce_right =
    (* Any gap starting inside the extent means part of it is already
       free; a gap starting exactly at its end coalesces. *)
    match Gap_tree.succ t.gaps ~addr:(addr + 1) with
    | Some (s, _) when s < addr + len ->
        invalid_arg "Free_index.release: extent already free"
    | Some (s, l) when s = addr + len -> Some (s, l)
    | Some _ | None -> None
  in
  let start, length =
    match coalesce_left with
    | Some (s, l) ->
        remove_gap t s l;
        (s, l + len)
    | None -> (addr, len)
  in
  let start, length =
    match coalesce_right with
    | Some (s, l) ->
        remove_gap t s l;
        (start, length + l)
    | None -> (start, length)
  in
  if start + length = t.frontier then t.frontier <- start
  else add_gap t start length

let first_fit t ~size =
  match Gap_tree.first_fit t.gaps ~size with
  | Some (s, _) -> Gap s
  | None -> Tail t.frontier

let first_fit_gap t ~size =
  match Gap_tree.first_fit t.gaps ~size with
  | Some (s, _) -> Some s
  | None -> None

let first_fit_from t ~from ~size =
  (* A gap starting before [from] may still contain [from, from+size):
     check the predecessor explicitly, then search starts >= from. *)
  let from_pred =
    match Gap_tree.pred t.gaps ~addr:from with
    | Some (s, l) when s < from && s + l >= from + size -> Some from
    | Some _ | None -> None
  in
  match from_pred with
  | Some _ as res -> res
  | None -> (
      match Gap_tree.first_fit_from t.gaps ~from ~size with
      | Some (s, _) -> Some s
      | None -> None)

let best_fit_gap t ~size =
  match Len_set.find_first_opt (fun (l, _) -> l >= size) t.by_len with
  | Some (_, s) -> Some s
  | None -> None

let worst_fit_gap t ~size =
  match Len_set.max_elt_opt t.by_len with
  | Some (l, s) when l >= size -> Some s
  | Some _ | None -> None

let first_aligned_fit t ~size ~align =
  match Gap_tree.first_aligned_fit t.gaps ~size ~align with
  | Some a -> Gap a
  | None -> Tail (Word.align_up t.frontier ~align)

let first_aligned_fit_gap t ~size ~align =
  Gap_tree.first_aligned_fit t.gaps ~size ~align

(* Lowest aligned address >= from where [size] words fit inside an
   existing gap; the gap containing [from] itself is also considered. *)
let first_aligned_fit_from t ~from ~size ~align =
  let in_pred =
    match Gap_tree.pred t.gaps ~addr:from with
    | Some (s, l) when s < from ->
        let a = Word.align_up from ~align in
        if a + size <= s + l then Some a else None
    | Some _ | None -> None
  in
  match in_pred with
  | Some _ as res -> res
  | None -> Gap_tree.first_aligned_fit_from t.gaps ~from ~size ~align

let iter_gaps t f = Gap_tree.iter t.gaps f
let gaps t = Gap_tree.to_list t.gaps

(* The k largest gaps, longest first, straight off the by-length index
   — no per-gap tree lookups and, for [iter], no list. *)
let iter_largest_gaps t ~k f =
  let rec go n seq =
    if n > 0 then begin
      match Seq.uncons seq with
      | Some ((len, start), rest) ->
          f start len;
          go (n - 1) rest
      | None -> ()
    end
  in
  go k (Len_set.to_rev_seq t.by_len)

let largest_gaps t ~k =
  let acc = ref [] in
  iter_largest_gaps t ~k (fun start len -> acc := (start, len) :: !acc);
  List.rev !acc

let check_invariants t =
  if not (Gap_tree.check_balanced t.gaps) then
    failwith "Free_index: unbalanced gap tree";
  let prev_stop = ref (-1) in
  iter_gaps t (fun s l ->
      if l <= 0 then failwith "Free_index: empty gap";
      if s <= !prev_stop then failwith "Free_index: touching/overlapping gaps";
      prev_stop := s + l;
      if s + l >= t.frontier then failwith "Free_index: gap touches frontier");
  let by_len_count = Len_set.cardinal t.by_len in
  if by_len_count <> Gap_tree.count t.gaps then
    failwith "Free_index: index cardinality mismatch"
