(* Single-word bit tricks for the 32-bit masks of the radix structures
   ([Bitset], [Free_index_imp]). Masks are stored in OCaml [int]s with
   only the low 32 bits used, so all intermediates stay well inside the
   63-bit native range. *)

let debruijn32 = 0x077CB531

(* ntz_table.((((pow2 i) * debruijn32) lsr 27) land 31) = i. The
   multiply may carry past bit 31, but the table index reads bits
   27..31 only, which agree with the 32-bit-truncated product. *)
let ntz_table =
  let t = Array.make 32 0 in
  for i = 0 to 31 do
    t.((((1 lsl i) * debruijn32) lsr 27) land 31) <- i
  done;
  t

(* Index of the lowest set bit. [v] must be non-zero and fit in 32
   bits. *)
let[@inline] ntz32 v =
  Array.unsafe_get ntz_table ((((v land -v) * debruijn32) lsr 27) land 31)

(* Index of the highest set bit. [v] must be non-zero and fit in 32
   bits. *)
let[@inline] msb32 v =
  let r = ref 0 and v = ref v in
  if !v land 0xFFFF0000 <> 0 then begin
    r := 16;
    v := !v lsr 16
  end;
  if !v land 0xFF00 <> 0 then begin
    r := !r + 8;
    v := !v lsr 8
  end;
  if !v land 0xF0 <> 0 then begin
    r := !r + 4;
    v := !v lsr 4
  end;
  if !v land 0xC <> 0 then begin
    r := !r + 2;
    v := !v lsr 2
  end;
  if !v land 0x2 <> 0 then incr r;
  !r
