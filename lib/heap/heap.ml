(* Dispatching front-end over the two heap backends ([Heap_imp], the
   default, and [Heap_ref], the persistent oracle). Every operation is
   a single tag match away from the concrete implementation; the
   object/event types are shared via [Heap_types], so no values are
   converted at the boundary. *)

type obj = Heap_types.obj = { oid : Oid.t; addr : int; size : int }

type event = Heap_types.event =
  | Alloc of obj
  | Free of obj
  | Move of { oid : Oid.t; size : int; src : int; dst : int }

type t = Ref of Heap_ref.t | Imp of Heap_imp.t

(* Telemetry: mutation counts and word volumes, shared by both
   backends because every mutation flows through this front-end. Off
   costs one load+branch per operation; the [Full] level additionally
   buckets allocation sizes. *)
module T = Pc_telemetry

let allocs_c = T.Registry.counter "heap.allocs"
let alloc_words_c = T.Registry.counter "heap.alloc_words"
let frees_c = T.Registry.counter "heap.frees"
let freed_words_c = T.Registry.counter "heap.freed_words"
let moves_c = T.Registry.counter "heap.moves"
let moved_words_c = T.Registry.counter "heap.moved_words"
let alloc_size_h = T.Registry.histogram "heap.alloc_size"

let create ?backend () =
  match
    match backend with Some b -> b | None -> Backend.default ()
  with
  | Backend.Imperative -> Imp (Heap_imp.create ())
  | Backend.Reference -> Ref (Heap_ref.create ())

let backend = function Ref _ -> Backend.Reference | Imp _ -> Backend.Imperative

let on_event t f =
  match t with Ref h -> Heap_ref.on_event h f | Imp h -> Heap_imp.on_event h f

let alloc t ~addr ~size =
  let oid =
    match t with
    | Ref h -> Heap_ref.alloc h ~addr ~size
    | Imp h -> Heap_imp.alloc h ~addr ~size
  in
  if !T.Sink.active then begin
    T.Counter.incr allocs_c;
    T.Counter.add alloc_words_c size;
    if !T.Sink.full_active then T.Histogram.observe alloc_size_h size
  end;
  oid

let size t oid =
  match t with Ref h -> Heap_ref.size h oid | Imp h -> Heap_imp.size h oid

let free t oid =
  if !T.Sink.active then begin
    T.Counter.incr frees_c;
    T.Counter.add freed_words_c (size t oid)
  end;
  match t with Ref h -> Heap_ref.free h oid | Imp h -> Heap_imp.free h oid

let move t oid ~dst =
  if !T.Sink.active then begin
    T.Counter.incr moves_c;
    T.Counter.add moved_words_c (size t oid)
  end;
  match t with
  | Ref h -> Heap_ref.move h oid ~dst
  | Imp h -> Heap_imp.move h oid ~dst

let find t oid =
  match t with Ref h -> Heap_ref.find h oid | Imp h -> Heap_imp.find h oid

let get t oid =
  match t with Ref h -> Heap_ref.get h oid | Imp h -> Heap_imp.get h oid

let addr t oid =
  match t with Ref h -> Heap_ref.addr h oid | Imp h -> Heap_imp.addr h oid

let live_words = function
  | Ref h -> Heap_ref.live_words h
  | Imp h -> Heap_imp.live_words h

let live_objects = function
  | Ref h -> Heap_ref.live_objects h
  | Imp h -> Heap_imp.live_objects h

let allocated_total = function
  | Ref h -> Heap_ref.allocated_total h
  | Imp h -> Heap_imp.allocated_total h

let moved_total = function
  | Ref h -> Heap_ref.moved_total h
  | Imp h -> Heap_imp.moved_total h

let freed_total = function
  | Ref h -> Heap_ref.freed_total h
  | Imp h -> Heap_imp.freed_total h

let high_water = function
  | Ref h -> Heap_ref.high_water h
  | Imp h -> Heap_imp.high_water h

let free_index = function
  | Ref h -> Free_index.of_ref (Heap_ref.free_index h)
  | Imp h -> Free_index.of_imp (Heap_imp.free_index h)

let is_free t ~addr ~size =
  match t with
  | Ref h -> Heap_ref.is_free h ~addr ~size
  | Imp h -> Heap_imp.is_free h ~addr ~size

let iter_live t f =
  match t with
  | Ref h -> Heap_ref.iter_live h f
  | Imp h -> Heap_imp.iter_live h f

let fold_live t ~init ~f =
  match t with
  | Ref h -> Heap_ref.fold_live h ~init ~f
  | Imp h -> Heap_imp.fold_live h ~init ~f

let live_list = function
  | Ref h -> Heap_ref.live_list h
  | Imp h -> Heap_imp.live_list h

let objects_in t ~start ~stop =
  match t with
  | Ref h -> Heap_ref.objects_in h ~start ~stop
  | Imp h -> Heap_imp.objects_in h ~start ~stop

let fold_objects_in t ~start ~stop ~init ~f =
  match t with
  | Ref h -> Heap_ref.fold_objects_in h ~start ~stop ~init ~f
  | Imp h -> Heap_imp.fold_objects_in h ~start ~stop ~init ~f

let clear_cost t ~start ~stop ~cap =
  match t with
  | Ref h -> Heap_ref.clear_cost h ~start ~stop ~cap
  | Imp h -> Heap_imp.clear_cost h ~start ~stop ~cap

let occupied_words_in t ~start ~stop =
  match t with
  | Ref h -> Heap_ref.occupied_words_in h ~start ~stop
  | Imp h -> Heap_imp.occupied_words_in h ~start ~stop

let check_invariants = function
  | Ref h -> Heap_ref.check_invariants h
  | Imp h -> Heap_imp.check_invariants h

let pp_obj = Heap_types.pp_obj
let pp_event = Heap_types.pp_event
