(* Recording and replaying heap event traces.

   A trace is a sequence of heap events in execution order. Replaying a
   trace onto a fresh heap reproduces the same final state and the same
   high-water mark, which gives tests a strong end-to-end check and
   makes adversarial executions inspectable offline. *)

type entry = { seq : int; event : Heap.event }

(* Recording rides on the heap's hot path, so events are stored
   unboxed: five ints per event ([tag; oid; addr/src; dst; size]) in a
   flat doubling int array. Retaining the event values themselves (in
   a list or pointer array) makes every event a minor-heap survivor
   the GC must promote, which costs an order of magnitude more than
   these plain int stores. *)
type t = { mutable buf : int array; mutable length : int }

let stride = 5
let tag_alloc = 0
let tag_free = 1
let tag_move = 2

let create () = { buf = [||]; length = 0 }

let push t event =
  let cap = Array.length t.buf in
  if stride * t.length = cap then begin
    let grown = Array.make (max (256 * stride) (2 * cap)) 0 in
    Array.blit t.buf 0 grown 0 cap;
    t.buf <- grown
  end;
  let base = stride * t.length in
  (match event with
  | Heap.Alloc o ->
      t.buf.(base) <- tag_alloc;
      t.buf.(base + 1) <- Oid.to_int o.oid;
      t.buf.(base + 2) <- o.addr;
      t.buf.(base + 4) <- o.size
  | Heap.Free o ->
      t.buf.(base) <- tag_free;
      t.buf.(base + 1) <- Oid.to_int o.oid;
      t.buf.(base + 2) <- o.addr;
      t.buf.(base + 4) <- o.size
  | Heap.Move m ->
      t.buf.(base) <- tag_move;
      t.buf.(base + 1) <- Oid.to_int m.oid;
      t.buf.(base + 2) <- m.src;
      t.buf.(base + 3) <- m.dst;
      t.buf.(base + 4) <- m.size);
  t.length <- t.length + 1

let event_at t i =
  let base = stride * i in
  let oid = Oid.of_int t.buf.(base + 1) in
  let size = t.buf.(base + 4) in
  match t.buf.(base) with
  | 0 -> Heap.Alloc { oid; addr = t.buf.(base + 2); size }
  | 1 -> Heap.Free { oid; addr = t.buf.(base + 2); size }
  | _ -> Heap.Move { oid; src = t.buf.(base + 2); dst = t.buf.(base + 3); size }

let record trace heap = Heap.on_event heap (fun event -> push trace event)

let of_events events =
  let t = create () in
  List.iter (push t) events;
  t

let length t = t.length
let entries t = List.init t.length (fun i -> { seq = i; event = event_at t i })

let iter t f =
  for i = 0 to t.length - 1 do
    f { seq = i; event = event_at t i }
  done

(* Replay does not assume the trace's oid sequence is dense: a
   trace-side oid maps to whatever oid the replay heap hands out for
   the corresponding Alloc. This is what lets a delta-debugger drop
   arbitrary event subsets and still replay the remainder — a
   reference to a dropped allocation (or any placement the heap
   rejects) is reported as [Error], never an exception, so "trace no
   longer well-formed" is an ordinary shrink rejection. Exceptions
   raised by heap-event listeners (oracles, budgets) propagate. *)
exception Reject of string

let replay_onto t heap =
  let map : (int, Oid.t) Hashtbl.t = Hashtbl.create 256 in
  let reject seq fmt =
    Fmt.kstr (fun s -> raise (Reject (Fmt.str "event %d: %s" seq s))) fmt
  in
  let lookup seq oid =
    match Hashtbl.find_opt map (Oid.to_int oid) with
    | Some o -> o
    | None -> reject seq "reference to unknown oid %d" (Oid.to_int oid)
  in
  try
    iter t (fun { seq; event } ->
        match event with
        | Heap.Alloc o -> (
            if Hashtbl.mem map (Oid.to_int o.oid) then
              reject seq "duplicate allocation of oid %d" (Oid.to_int o.oid);
            match Heap.alloc heap ~addr:o.addr ~size:o.size with
            | oid -> Hashtbl.replace map (Oid.to_int o.oid) oid
            | exception Invalid_argument msg -> reject seq "%s" msg)
        | Heap.Free o -> (
            let oid = lookup seq o.oid in
            match Heap.free heap oid with
            | () -> Hashtbl.remove map (Oid.to_int o.oid)
            | exception Invalid_argument msg -> reject seq "%s" msg)
        | Heap.Move m -> (
            let oid = lookup seq m.oid in
            match Heap.move heap oid ~dst:m.dst with
            | () -> ()
            | exception Invalid_argument msg -> reject seq "%s" msg));
    Ok ()
  with Reject msg -> Error msg

let replay ?backend t =
  let heap = Heap.create ?backend () in
  match replay_onto t heap with Ok () -> Ok heap | Error msg -> Error msg

let pp_entry ppf { seq; event } = Fmt.pf ppf "%6d %a" seq Heap.pp_event event
let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_entry) ppf (entries t)

(* Aggregate statistics over a trace: counts, volumes, allocation-size
   histogram (bucketed by floor log2), and object lifetimes measured
   in events. *)
type stats = {
  events : int;
  allocs : int;
  frees : int;
  moves : int;
  allocated_words : int;
  freed_words : int;
  moved_words : int;
  size_histogram : int array; (* index k: sizes in [2^k, 2^(k+1)) *)
  mean_lifetime : float; (* events between alloc and free *)
  immortal : int; (* allocated, never freed in the trace *)
}

let stats t =
  let allocs = ref 0 and frees = ref 0 and moves = ref 0 in
  let aw = ref 0 and fw = ref 0 and mw = ref 0 in
  let hist = Array.make 62 0 in
  let birth : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let lifetime_sum = ref 0 and lifetime_count = ref 0 in
  iter t (fun { seq; event } ->
      match event with
      | Heap.Alloc o ->
          incr allocs;
          aw := !aw + o.size;
          let b = Word.log2_floor o.size in
          hist.(b) <- hist.(b) + 1;
          Hashtbl.replace birth (Oid.to_int o.oid) seq
      | Heap.Free o ->
          incr frees;
          fw := !fw + o.size;
          (match Hashtbl.find_opt birth (Oid.to_int o.oid) with
          | Some b ->
              lifetime_sum := !lifetime_sum + (seq - b);
              incr lifetime_count;
              Hashtbl.remove birth (Oid.to_int o.oid)
          | None -> ())
      | Heap.Move m ->
          incr moves;
          mw := !mw + m.size);
  {
    events = t.length;
    allocs = !allocs;
    frees = !frees;
    moves = !moves;
    allocated_words = !aw;
    freed_words = !fw;
    moved_words = !mw;
    size_histogram = hist;
    mean_lifetime =
      (if !lifetime_count = 0 then 0.0
       else float_of_int !lifetime_sum /. float_of_int !lifetime_count);
    immortal = Hashtbl.length birth;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>events: %d (%d allocs, %d frees, %d moves)@,\
     words: %d allocated, %d freed, %d moved@,\
     mean lifetime: %.1f events; never freed: %d@,\
     sizes:" s.events s.allocs s.frees s.moves s.allocated_words
    s.freed_words s.moved_words s.mean_lifetime s.immortal;
  Array.iteri
    (fun k count ->
      if count > 0 then Fmt.pf ppf "@,  [%7d, %7d): %d" (1 lsl k) (2 lsl k) count)
    s.size_histogram;
  Fmt.pf ppf "@]"

(* A compact single-line serialization, one entry per line:
   "a <oid> <addr> <size>", "f <oid> <addr> <size>",
   "m <oid> <src> <dst> <size>". *)
let to_string t =
  let buf = Buffer.create (t.length * 16) in
  iter t (fun { event; _ } ->
      begin
        match event with
        | Heap.Alloc o ->
            Buffer.add_string buf
              (Printf.sprintf "a %d %d %d" (Oid.to_int o.oid) o.addr o.size)
        | Heap.Free o ->
            Buffer.add_string buf
              (Printf.sprintf "f %d %d %d" (Oid.to_int o.oid) o.addr o.size)
        | Heap.Move m ->
            Buffer.add_string buf
              (Printf.sprintf "m %d %d %d %d" (Oid.to_int m.oid) m.src m.dst
                 m.size)
      end;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_string s =
  let t = create () in
  let add = push t in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ "" ] -> ()
         | [ "a"; oid; addr; size ] ->
             add
               (Heap.Alloc
                  {
                    oid = Oid.of_int (int_of_string oid);
                    addr = int_of_string addr;
                    size = int_of_string size;
                  })
         | [ "f"; oid; addr; size ] ->
             add
               (Heap.Free
                  {
                    oid = Oid.of_int (int_of_string oid);
                    addr = int_of_string addr;
                    size = int_of_string size;
                  })
         | [ "m"; oid; src; dst; size ] ->
             add
               (Heap.Move
                  {
                    oid = Oid.of_int (int_of_string oid);
                    src = int_of_string src;
                    dst = int_of_string dst;
                    size = int_of_string size;
                  })
         | _ -> failwith ("Trace.of_string: bad line: " ^ line));
  t
