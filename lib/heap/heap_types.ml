(* Types shared by every heap backend and re-exported by [Heap]: the
   live-object record and the event stream. Kept in their own module so
   the reference and imperative substrates (and the dispatching [Heap])
   can share them without a dependency cycle. *)

type obj = { oid : Oid.t; addr : int; size : int }

type fit = Gap of int | Tail of int
(* [Free_index] fit result, shared so the dispatcher can pass backend
   results through without re-wrapping. *)

type event =
  | Alloc of obj
  | Free of obj
  | Move of { oid : Oid.t; size : int; src : int; dst : int }

let pp_obj ppf (o : obj) =
  Fmt.pf ppf "%a@[%d,%d)" Oid.pp o.oid o.addr (o.addr + o.size)

let pp_event ppf = function
  | Alloc o -> Fmt.pf ppf "alloc %a" pp_obj o
  | Free o -> Fmt.pf ppf "free %a" pp_obj o
  | Move m ->
      Fmt.pf ppf "move %a %d -> %d (%d words)" Oid.pp m.oid m.src m.dst m.size
