(** Re-export of {!Pc_json.Json} (see that module for documentation).
    The type equalities are public: a [Pc_exec.Json.t] is a
    [Pc_json.Json.t], so values flow freely between the sweep
    engine's encoders and the telemetry snapshot's. *)

type t = Pc_json.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:bool -> t -> string

val of_string : string -> t
(** Raises {!Parse_error} on malformed input. *)

val member : string -> t -> t option
val member_exn : string -> t -> t
val to_int : t -> int option
val to_float : t -> float option
val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
