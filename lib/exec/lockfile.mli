(** Advisory single-writer lockfile for on-disk state directories.

    [pc sweep] takes one per checkpoint journal and [pc serve] one per
    state dir, so two processes racing for the same mutable state fail
    fast with a clear error ({!Locked}) instead of silently corrupting
    each other's journal appends and cache renames.

    The lock is an [O_CREAT|O_EXCL] file holding the owner's PID.
    {!acquire} breaks a {e stale} lock — one whose recorded PID is
    dead ([kill 0] gives [ESRCH]) or equal to the calling process
    (a holder that crashed inside this very process image, or a dead
    owner's PID recycled onto us; neither can be an independent live
    owner). A live foreign PID raises {!Locked}.

    Caveat: because a same-PID lock counts as stale, two concurrent
    embedded servers {e inside one process} are not mutually excluded
    — the lock guards against other processes, which is what an
    on-disk lock can promise. *)

type t

exception Locked of { path : string; pid : int }
(** The lock is held by a live process. A printer is registered, so
    [Printexc.to_string] renders an actionable message. *)

val acquire : string -> t
(** Atomically create [path] (parent directories as needed) and write
    our PID. Raises {!Locked} if a live foreign process holds it;
    breaks stale locks with a logged warning. *)

val release : t -> unit
(** Remove the lock file. Never raises. *)

val path : t -> string
