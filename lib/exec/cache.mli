(** Content-addressed on-disk store of sweep results.

    One JSON file per executed spec at [<dir>/<Spec.digest>.json],
    recording the format version, the canonical spec key, the spec and
    the outcome. Entries from an older {!Spec.cache_format}, digest
    collisions, and unreadable files are all treated as misses — the
    cache never serves a wrong outcome silently. Floats round-trip
    bit-exactly, so a cache hit is indistinguishable from a re-run.

    Invalidation: delete the directory (or individual entries), or
    bump {!Spec.cache_format} when execution semantics change. *)

type t

val env_var : string
(** ["PC_CACHE_DIR"] — overrides the default directory. *)

val default_dir : unit -> string
(** [$PC_CACHE_DIR] if set, else ["_pc_cache"] under the current
    working directory. *)

val create : ?dir:string -> unit -> t
(** Open (creating directories as needed) the store at [dir],
    defaulting to {!default_dir}. *)

val dir : t -> string
val path : t -> Spec.t -> string
(** The entry file a spec maps to (whether or not it exists yet). *)

type lookup =
  | Hit of Pc_adversary.Runner.outcome
  | Miss  (** no entry on disk *)
  | Invalid of { path : string; reason : string }
      (** an entry exists but cannot be served: truncated or garbage
          bytes, a stale format version, a digest collision (key
          mismatch), or a malformed outcome. The engine counts these
          as [recovered] and re-executes. *)

val lookup : ?faults:Faults.t -> t -> Spec.t -> lookup
(** Distinguishes a plain miss from an invalid entry so silent cache
    rot becomes visible. [faults] may corrupt the read (chaos mode). *)

val find : ?faults:Faults.t -> t -> Spec.t -> Pc_adversary.Runner.outcome option
(** [None] on a miss, a stale format, or a corrupt entry
    ({!lookup} collapsed). *)

val store : ?faults:Faults.t -> t -> Spec.t -> Pc_adversary.Runner.outcome -> unit
(** Atomic (write-to-temp + rename); a writer that raises mid-write
    removes its temp file. [faults] may tear the written content —
    atomically renamed into place, modelling power loss after an
    unsynced rename — which a later {!lookup} reports as [Invalid]. *)

val outcome_to_json : Pc_adversary.Runner.outcome -> Json.t
val outcome_of_json : Json.t -> Pc_adversary.Runner.outcome
(** Raises {!Bad_entry} / [Json.Parse_error] on malformed input. *)

exception Bad_entry of string
