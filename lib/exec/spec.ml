open Pc_adversary

(* A deterministic, serialisable description of one experiment point:
   which adversary/workload, against which manager, at which scale.
   Specs are pure data so they can be hashed (content-addressed result
   cache), shipped to worker domains, and compared across runs. *)

type size_dist = Random_workload.size_dist =
  | Uniform of { lo : int; hi : int }
  | Pow2 of { lo_log : int; hi_log : int }
  | Fixed of int

type sawtooth_pattern = Sawtooth.pattern =
  | Every_other
  | First_half
  | Random of int

type workload =
  | Pf of { ell : int option; stage1_steps : int option; maintain_density : bool }
  | Robson of { steps : int option }
  | Pw of { steps : int option }
  | Sawtooth of { rounds : int option; pattern : sawtooth_pattern }
  | Random_churn of {
      seed : int;
      churn : int;
      dist : size_dist;
      target_live : int;
    }

type t = {
  workload : workload;
  manager : string;
  m : int;
  n : int;
  c : float option;
}

let equal = Stdlib.( = )

(* ------------------------------------------------------------------ *)
(* Constructors                                                       *)

(* PF's construction depends on c itself (not just the budget), so the
   constructor requires it. *)
let pf ?ell ?stage1_steps ?(maintain_density = true) ~c ~manager ~m ~n () =
  {
    workload = Pf { ell; stage1_steps; maintain_density };
    manager;
    m;
    n;
    c = Some c;
  }

let robson ?steps ?c ~manager ~m ~n () =
  { workload = Robson { steps }; manager; m; n; c }

let pw ?steps ?c ~manager ~m ~n () =
  { workload = Pw { steps }; manager; m; n; c }

let sawtooth ?rounds ?(pattern = Every_other) ?c ~manager ~m ~n () =
  { workload = Sawtooth { rounds; pattern }; manager; m; n; c }

let random_churn ?(seed = 42) ?(churn = 10_000) ?c ~manager ~m ~dist
    ~target_live () =
  {
    workload = Random_churn { seed; churn; dist; target_live };
    manager;
    m;
    n = Random_workload.max_size_of dist;
    c;
  }

(* ------------------------------------------------------------------ *)
(* Realisation                                                        *)

let build ?(pf_audit = false) t =
  match t.workload with
  | Pf { ell; stage1_steps; maintain_density } ->
      let c =
        match t.c with
        | Some c -> c
        | None -> invalid_arg "Spec.build: a PF spec needs a compaction bound c"
      in
      let _config, program =
        Pf.program ?ell ?stage1_steps ~maintain_density ~audit:pf_audit ~m:t.m
          ~n:t.n ~c ()
      in
      program
  | Robson { steps } -> Robson_pr.program ?steps ~m:t.m ~n:t.n ()
  | Pw { steps } -> Pw.program ?steps ~m:t.m ~n:t.n ()
  | Sawtooth { rounds; pattern } ->
      Sawtooth.program ?rounds ~pattern ~m:t.m ~n:t.n ()
  | Random_churn { seed; churn; dist; target_live } ->
      Random_workload.program ~seed ~churn ~m:t.m ~dist ~target_live ()

let manager t = Pc_manager.Registry.construct_exn t.manager

(* ------------------------------------------------------------------ *)
(* Canonical key and digest                                           *)

let fstr f = Printf.sprintf "%.17g" f
let ostr = function None -> "-" | Some i -> string_of_int i

let dist_key = function
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%d:%d" lo hi
  | Pow2 { lo_log; hi_log } -> Printf.sprintf "pow2:%d:%d" lo_log hi_log
  | Fixed n -> Printf.sprintf "fixed:%d" n

let pattern_key = function
  | Every_other -> "every-other"
  | First_half -> "first-half"
  | Random seed -> Printf.sprintf "random:%d" seed

let workload_key = function
  | Pf { ell; stage1_steps; maintain_density } ->
      Printf.sprintf "pf ell=%s s1=%s md=%b" (ostr ell) (ostr stage1_steps)
        maintain_density
  | Robson { steps } -> Printf.sprintf "robson steps=%s" (ostr steps)
  | Pw { steps } -> Printf.sprintf "pw steps=%s" (ostr steps)
  | Sawtooth { rounds; pattern } ->
      Printf.sprintf "sawtooth rounds=%s pattern=%s" (ostr rounds)
        (pattern_key pattern)
  | Random_churn { seed; churn; dist; target_live } ->
      Printf.sprintf "random seed=%d churn=%d dist=%s live=%d" seed churn
        (dist_key dist) target_live

let key t =
  Printf.sprintf "%s | manager=%s m=%d n=%d c=%s" (workload_key t.workload)
    t.manager t.m t.n
    (match t.c with None -> "-" | Some c -> fstr c)

(* Bump when the execution semantics change in a way that invalidates
   cached outcomes (new adversary logic, changed accounting, ...). *)
let cache_format = 1

let digest t =
  Digest.to_hex (Digest.string (Printf.sprintf "pc-exec-%d|%s" cache_format (key t)))

let pp ppf t = Fmt.string ppf (key t)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                    *)

let json_of_option f = function None -> Json.Null | Some v -> f v

let dist_to_json = function
  | Uniform { lo; hi } ->
      Json.Obj [ ("kind", Json.String "uniform"); ("lo", Json.Int lo); ("hi", Json.Int hi) ]
  | Pow2 { lo_log; hi_log } ->
      Json.Obj
        [
          ("kind", Json.String "pow2");
          ("lo_log", Json.Int lo_log);
          ("hi_log", Json.Int hi_log);
        ]
  | Fixed n -> Json.Obj [ ("kind", Json.String "fixed"); ("size", Json.Int n) ]

let pattern_to_json = function
  | Every_other -> Json.String "every-other"
  | First_half -> Json.String "first-half"
  | Random seed -> Json.Obj [ ("random", Json.Int seed) ]

let workload_to_json = function
  | Pf { ell; stage1_steps; maintain_density } ->
      Json.Obj
        [
          ("kind", Json.String "pf");
          ("ell", json_of_option (fun i -> Json.Int i) ell);
          ("stage1_steps", json_of_option (fun i -> Json.Int i) stage1_steps);
          ("maintain_density", Json.Bool maintain_density);
        ]
  | Robson { steps } ->
      Json.Obj
        [
          ("kind", Json.String "robson");
          ("steps", json_of_option (fun i -> Json.Int i) steps);
        ]
  | Pw { steps } ->
      Json.Obj
        [
          ("kind", Json.String "pw");
          ("steps", json_of_option (fun i -> Json.Int i) steps);
        ]
  | Sawtooth { rounds; pattern } ->
      Json.Obj
        [
          ("kind", Json.String "sawtooth");
          ("rounds", json_of_option (fun i -> Json.Int i) rounds);
          ("pattern", pattern_to_json pattern);
        ]
  | Random_churn { seed; churn; dist; target_live } ->
      Json.Obj
        [
          ("kind", Json.String "random");
          ("seed", Json.Int seed);
          ("churn", Json.Int churn);
          ("dist", dist_to_json dist);
          ("target_live", Json.Int target_live);
        ]

let to_json t =
  Json.Obj
    [
      ("workload", workload_to_json t.workload);
      ("manager", Json.String t.manager);
      ("m", Json.Int t.m);
      ("n", Json.Int t.n);
      ("c", json_of_option (fun c -> Json.Float c) t.c);
    ]

exception Bad_spec of string

let fail fmt = Fmt.kstr (fun s -> raise (Bad_spec s)) fmt

let get_int j k =
  match Json.to_int (Json.member_exn k j) with
  | Some i -> i
  | None -> fail "field %s: expected int" k

let get_int_opt j k =
  match Json.member k j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_int v with
      | Some i -> Some i
      | None -> fail "field %s: expected int or null" k)

let get_string j k =
  match Json.to_string_opt (Json.member_exn k j) with
  | Some s -> s
  | None -> fail "field %s: expected string" k

let dist_of_json j =
  match get_string j "kind" with
  | "uniform" -> Uniform { lo = get_int j "lo"; hi = get_int j "hi" }
  | "pow2" -> Pow2 { lo_log = get_int j "lo_log"; hi_log = get_int j "hi_log" }
  | "fixed" -> Fixed (get_int j "size")
  | k -> fail "unknown size distribution %S" k

let pattern_of_json = function
  | Json.String "every-other" -> Every_other
  | Json.String "first-half" -> First_half
  | Json.Obj _ as j -> Random (get_int j "random")
  | _ -> fail "bad sawtooth pattern"

let workload_of_json j =
  match get_string j "kind" with
  | "pf" ->
      let maintain_density =
        match Json.member "maintain_density" j with
        | Some (Json.Bool b) -> b
        | _ -> true
      in
      Pf
        {
          ell = get_int_opt j "ell";
          stage1_steps = get_int_opt j "stage1_steps";
          maintain_density;
        }
  | "robson" -> Robson { steps = get_int_opt j "steps" }
  | "pw" -> Pw { steps = get_int_opt j "steps" }
  | "sawtooth" ->
      Sawtooth
        {
          rounds = get_int_opt j "rounds";
          pattern = pattern_of_json (Json.member_exn "pattern" j);
        }
  | "random" ->
      Random_churn
        {
          seed = get_int j "seed";
          churn = get_int j "churn";
          dist = dist_of_json (Json.member_exn "dist" j);
          target_live = get_int j "target_live";
        }
  | k -> fail "unknown workload %S" k

let of_json j =
  {
    workload = workload_of_json (Json.member_exn "workload" j);
    manager = get_string j "manager";
    m = get_int j "m";
    n = get_int j "n";
    c =
      (match Json.member "c" j with
      | None | Some Json.Null -> None
      | Some v -> (
          match Json.to_float v with
          | Some c -> Some c
          | None -> fail "field c: expected float or null"));
  }
