(** The fault-tolerant parallel sweep engine.

    [run] resolves each spec against the checkpoint journal (resume)
    and the result cache, executes the misses on a fixed-size [Domain]
    worker pool (see {!Pool}) with per-job exception capture, retries
    and wall-clock timeouts, stores fresh outcomes back into the cache
    and journal as each job completes, and returns per-job results in
    input order plus a summary.

    Outcomes are a pure function of the spec — workload randomness is
    seeded, and every job gets a fresh heap, budget and manager — so
    [run ~jobs:k] is bit-identical to [run ~jobs:1] for any [k], and a
    sweep killed mid-run and resumed from its journal is bit-identical
    to an uninterrupted one.

    Failure taxonomy (DESIGN.md §failure-taxonomy):
    - {e transient} — an injected worker crash or a wall-clock
      timeout: retried up to [retries] times with exponential backoff
      and seeded deterministic jitter.
    - {e deterministic} — any other exception the job reproduces on an
      immediate probe re-run: degrades to [Error] without burning the
      transient budget, so a poisoned spec never stalls the pool.
    - {e fatal} — {!Faults.Sweep_killed} (the simulated process kill)
      escapes [run]; resume from the journal afterwards. *)

type job_result = {
  spec : Spec.t;
  result : (Pc_adversary.Runner.outcome, string) result;
      (** [Error] carries the captured exception text; one diverging
          job never kills the sweep. *)
  from_cache : bool;
  from_journal : bool;  (** replayed from the checkpoint journal *)
  attempts : int;
      (** execution attempts this run; [0] for cache/journal hits *)
  elapsed : float;  (** seconds spent executing; [0.] for hits *)
  bundle : string option;
      (** repro-bundle directory when the job died on a triaged oracle
          violation (see {!Pc_audit.Report}) *)
}

type summary = {
  total : int;
  executed : int;
  cached : int;
  resumed : int;  (** jobs replayed from the checkpoint journal *)
  recovered : int;
      (** invalid (truncated, garbage, stale-format, digest-collision)
          cache entries that were detected, logged and re-executed —
          silent cache rot made visible *)
  retried : int;  (** extra execution attempts across all jobs *)
  failed : int;
  violations : int;  (** jobs that died on a triaged oracle violation *)
  bundles : string list;  (** their repro-bundle directories *)
  wall : float;  (** wall-clock seconds for the whole sweep *)
}

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?retries:int ->
  ?timeout:float ->
  ?backoff:float ->
  ?faults:Faults.t ->
  ?audit:Pc_audit.Oracle.level ->
  ?failures_dir:string ->
  Spec.t list ->
  job_result list * summary
(** [jobs] (default 1) caps the worker-domain count; [jobs <= 1] runs
    inline on the calling domain. Omitting [cache] disables caching;
    omitting [checkpoint] disables journaling. [retries] (default 0)
    bounds transient-failure re-attempts per job; [timeout] is the
    per-attempt wall-clock budget in seconds (checked post-hoc — a
    pure simulation cannot be preempted); [backoff] (default 0.1)
    seeds the exponential backoff base in seconds. [faults] injects
    seeded chaos at job and cache boundaries (see {!Faults}). Results
    come back in input order.

    [audit] attaches the {!Pc_audit.Oracle} layer to every executed
    job (at [Full] this also enables PF's internal Claim 4.16 audit;
    full-strength PF specs additionally get the Theorem 1 floor). A
    violating job is deterministic by definition — it degrades to
    [Error] without probe or retry, its repro bundle (written under
    [failures_dir], default {!Pc_audit.Report.default_dir}) rides on
    {!job_result.bundle}, and the summary counts it in
    {!summary.violations}. The audit level is not part of the spec's
    cache identity: audited and unaudited runs of the same spec share
    cache entries (auditing changes what is checked, never the
    outcome) — use a fresh cache or [--no-cache] to force audited
    re-execution of previously cached points. *)

val execute : Spec.t -> job_result
(** Run one spec on the calling domain, bypassing cache, journal and
    retries. *)

val execute_with_retries :
  ?faults:Faults.t ->
  ?retries:int ->
  ?timeout:float ->
  ?backoff:float ->
  ?audit:Pc_audit.Oracle.level ->
  ?failures_dir:string ->
  Spec.t ->
  job_result
(** The per-job attempt loop [run] uses, exposed for tests. *)

val resolve :
  ?cache:Cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?faults:Faults.t ->
  ?retries:int ->
  ?timeout:float ->
  ?backoff:float ->
  ?audit:Pc_audit.Oracle.level ->
  ?failures_dir:string ->
  ?on_cache_invalid:(path:string -> reason:string -> unit) ->
  Spec.t ->
  job_result
(** Resolve one spec end to end — journal, then cache, then
    {!execute_with_retries} — journaling (fsync) a fresh outcome
    {e before} caching it. This is [run]'s per-job pipeline packaged
    for callers that schedule their own queue (the serve daemon's
    supervised workers): a worker killed at any point either left no
    trace or a complete journal line, so replays never re-execute and
    completion is exactly-once. Unlike [run], a cache hit is journaled
    too, making the journal alone authoritative for "is this job
    complete" across daemon restarts. [on_cache_invalid] observes
    detected cache rot (for the daemon's [recovered] accounting). *)

val outcome_exn : job_result -> Pc_adversary.Runner.outcome
(** Raises [Failure] with the captured error text on a failed job. *)

val pp_summary : Format.formatter -> summary -> unit
