(** The parallel sweep engine.

    [run] resolves each spec against the result cache, executes the
    misses on a fixed-size [Domain] worker pool (see {!Pool}) with
    per-job exception capture, stores fresh outcomes back into the
    cache, and returns per-job results in input order plus a summary.

    Outcomes are a pure function of the spec — workload randomness is
    seeded, and every job gets a fresh heap, budget and manager — so
    [run ~jobs:k] is bit-identical to [run ~jobs:1] for any [k]. *)

type job_result = {
  spec : Spec.t;
  result : (Pc_adversary.Runner.outcome, string) result;
      (** [Error] carries the captured exception text; one diverging
          job never kills the sweep. *)
  from_cache : bool;
  elapsed : float;  (** seconds spent executing; [0.] for cache hits *)
}

type summary = {
  total : int;
  executed : int;
  cached : int;
  failed : int;
  wall : float;  (** wall-clock seconds for the whole sweep *)
}

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  Spec.t list ->
  job_result list * summary
(** [jobs] (default 1) caps the worker-domain count; [jobs <= 1] runs
    inline on the calling domain. Omitting [cache] disables caching
    entirely. Results come back in input order. *)

val execute : Spec.t -> job_result
(** Run one spec on the calling domain, bypassing the cache. *)

val outcome_exn : job_result -> Pc_adversary.Runner.outcome
(** Raises [Failure] with the captured error text on a failed job. *)

val pp_summary : Format.formatter -> summary -> unit
