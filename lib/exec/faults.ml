(* Seeded fault injection for the sweep engine.

   The pool, cache and engine consult an optional [t] at well-defined
   boundaries (job start, job completion, cache read, cache write) and
   the hooks here decide — deterministically, from the seed and the
   call site — whether to simulate a worker crash, an execution stall,
   a torn cache write or a corrupted cache read. The same module backs
   both the test suite and the CLI chaos mode ([pc sweep
   --inject-faults SPEC]), so the paths exercised under injection are
   exactly the production ones.

   Determinism: every decision is a pure function of (seed, site,
   digest, draw index). Job-boundary draws are indexed by the attempt
   number, so a job that crashes on attempt 0 re-rolls on attempt 1;
   cache-I/O draws are indexed by a per-site operation counter, so a
   store that was torn once is not torn forever (the self-heal path
   must converge). Under parallel execution the *placement* of cache
   faults may vary with scheduling, but never the outcomes: a fault
   only ever forces a retry or a re-execution, both of which are pure
   functions of the spec. *)

exception Worker_crash of string
exception Sweep_killed of int
exception Worker_killed of string

type t = {
  seed : int;
  crash : float;
  delay : float;
  delay_s : float;
  trunc : float;
  corrupt : float;
  wkill : float;
  max_transient : int;
  kill_after : int option;
  completed : int Atomic.t;
  write_ops : int Atomic.t;
  read_ops : int Atomic.t;
}

let make ?(seed = 0) ?(crash = 0.) ?(delay = 0.) ?(delay_s = 0.01)
    ?(trunc = 0.) ?(corrupt = 0.) ?(wkill = 0.) ?(max_transient = 2)
    ?kill_after () =
  if max_transient < 0 then invalid_arg "Faults.make: max_transient < 0";
  {
    seed;
    crash;
    delay;
    delay_s;
    trunc;
    corrupt;
    wkill;
    max_transient;
    kill_after;
    completed = Atomic.make 0;
    write_ops = Atomic.make 0;
    read_ops = Atomic.make 0;
  }

let seed t = t.seed
let max_transient t = t.max_transient

(* ------------------------------------------------------------------ *)
(* The deterministic coin                                             *)

(* First 6 digest bytes as an integer in [0, 2^48), scaled to [0, 1).
   Plenty of entropy for a coin flip, and identical on every box. *)
let hash01 ~seed ~site ~digest index =
  let d =
    Digest.string (Printf.sprintf "pc-faults-%d|%s|%s|%d" seed site digest index)
  in
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  float_of_int !v /. 281474976710656.0 (* 2^48 *)

let draw t ~site ~digest index = hash01 ~seed:t.seed ~site ~digest index

(* ------------------------------------------------------------------ *)
(* Job-boundary hooks                                                 *)

(* Transient by construction: attempts at or beyond [max_transient]
   are never crashed or delayed, so any retry budget >= max_transient
   is guaranteed to recover every injected transient fault. *)
let pre_job t ~digest ~attempt =
  if attempt < t.max_transient then begin
    if t.delay > 0. && draw t ~site:"delay" ~digest attempt < t.delay then
      Unix.sleepf t.delay_s;
    if t.crash > 0. && draw t ~site:"crash" ~digest attempt < t.crash then
      raise (Worker_crash digest)
  end

(* The serve supervisor's kill point: unlike [Worker_crash] (caught by
   the engine's in-worker retry loop), [Worker_killed] is meant to
   escape the worker domain entirely, so the supervision tree — not
   the retry taxonomy — has to recover the job. [kills] is the number
   of times a worker already died holding this job; capping it by
   [max_transient] guarantees progress. *)
let worker_kill t ~digest ~kills =
  if
    t.wkill > 0. && kills < t.max_transient
    && draw t ~site:"wkill" ~digest kills < t.wkill
  then raise (Worker_killed digest)

let job_completed t =
  let n = Atomic.fetch_and_add t.completed 1 + 1 in
  match t.kill_after with
  | Some k when n >= k -> raise (Sweep_killed n)
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Cache-I/O hooks                                                    *)

let mangle_write t ~digest content =
  let op = Atomic.fetch_and_add t.write_ops 1 in
  if t.trunc > 0. && draw t ~site:"trunc" ~digest op < t.trunc then begin
    let keep = String.length content / 2 in
    Some (String.sub content 0 keep)
  end
  else None

let mangle_read t ~digest content =
  let op = Atomic.fetch_and_add t.read_ops 1 in
  if t.corrupt > 0. && draw t ~site:"corrupt" ~digest op < t.corrupt then begin
    (* Flip a byte in the middle: enough to break either the JSON
       framing or a field the reader validates. *)
    let b = Bytes.of_string content in
    let i = Bytes.length b / 2 in
    if Bytes.length b > 0 then
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x7f));
    Some (Bytes.to_string b)
  end
  else None

(* ------------------------------------------------------------------ *)
(* Spec strings                                                       *)

let to_string t =
  String.concat ","
    (List.filter
       (fun s -> s <> "")
       [
         Printf.sprintf "seed=%d" t.seed;
         (if t.crash > 0. then Printf.sprintf "crash=%g" t.crash else "");
         (if t.delay > 0. then Printf.sprintf "delay=%g" t.delay else "");
         (if t.delay > 0. then Printf.sprintf "delay-s=%g" t.delay_s else "");
         (if t.trunc > 0. then Printf.sprintf "trunc=%g" t.trunc else "");
         (if t.corrupt > 0. then Printf.sprintf "corrupt=%g" t.corrupt else "");
         (if t.wkill > 0. then Printf.sprintf "wkill=%g" t.wkill else "");
         Printf.sprintf "max-transient=%d" t.max_transient;
         (match t.kill_after with
         | Some k -> Printf.sprintf "kill-after=%d" k
         | None -> "");
       ])

let of_string s =
  let parse_field acc field =
    match acc with
    | Error _ as e -> e
    | Ok t -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "bad fault field %S (expected k=v)" field)
        | Some i -> (
            let k = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            let prob name =
              match float_of_string_opt v with
              | Some p when p >= 0. && p <= 1. -> Ok p
              | Some _ | None ->
                  Error
                    (Printf.sprintf "%s=%s: expected a probability in [0,1]"
                       name v)
            in
            let num name =
              match float_of_string_opt v with
              | Some f when f >= 0. -> Ok f
              | Some _ | None ->
                  Error (Printf.sprintf "%s=%s: expected a number >= 0" name v)
            in
            let int name =
              match int_of_string_opt v with
              | Some i when i >= 0 -> Ok i
              | Some _ | None ->
                  Error (Printf.sprintf "%s=%s: expected an int >= 0" name v)
            in
            match k with
            | "seed" -> Result.map (fun i -> { t with seed = i }) (int k)
            | "crash" -> Result.map (fun p -> { t with crash = p }) (prob k)
            | "delay" -> Result.map (fun p -> { t with delay = p }) (prob k)
            | "delay-s" | "delay_s" ->
                Result.map (fun f -> { t with delay_s = f }) (num k)
            | "trunc" -> Result.map (fun p -> { t with trunc = p }) (prob k)
            | "corrupt" -> Result.map (fun p -> { t with corrupt = p }) (prob k)
            | "wkill" -> Result.map (fun p -> { t with wkill = p }) (prob k)
            | "max-transient" | "max_transient" ->
                Result.map (fun i -> { t with max_transient = i }) (int k)
            | "kill-after" | "kill_after" ->
                Result.map (fun i -> { t with kill_after = Some i }) (int k)
            | _ -> Error (Printf.sprintf "unknown fault field %S" k)))
  in
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim s))
  in
  if fields = [] then Error "empty fault spec"
  else List.fold_left parse_field (Ok (make ())) fields
