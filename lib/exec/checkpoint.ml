open Pc_adversary

(* Crash-safe sweep journal: one fsynced JSON line per completed job,
   appended to <dir>/<sweep-digest>.journal as the pool finishes jobs.
   A killed sweep resumes by reloading the journal and re-executing
   only the jobs absent from it (and from the result cache).

   The journal is identified by a digest over the ordered spec list,
   so a resume with a different sweep opens a different file and never
   replays foreign outcomes. Each line re-states the spec's canonical
   key, which is checked again on lookup — a digest collision inside a
   journal is detected, not served.

   Durability: each line is written with a single [write] and fsynced
   before [record] returns, so a line is either fully present or
   absent; the loader tolerates (and drops) a truncated final line
   from a writer killed mid-append. Determinism: outcomes round-trip
   through the same bit-exact JSON as the result cache, so a resumed
   sweep's results are byte-identical to an uninterrupted run's. *)

let src = Logs.Src.create "pc.checkpoint" ~doc:"sweep journal"

module Log = (val Logs.src_log src : Logs.LOG)
module T = Pc_telemetry

(* A torn tail (writer killed mid-append) is expected after any kill;
   surfacing it as a counter lets `pc report` distinguish "journals
   are healthy" from "every resume is repairing damage". *)
let torn_tail_c = T.Registry.counter "checkpoint.torn_tail"

type entry = { key : string; result : (Runner.outcome, string) result }

type t = {
  path : string;
  fd : Unix.file_descr;
  mutex : Mutex.t;
  entries : (string, entry) Hashtbl.t; (* digest -> journaled outcome *)
  loaded : int;
  repaired : int; (* torn-tail bytes truncated away at open time *)
}

let journal_format = 1

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let default_dir ~cache_dir = Filename.concat cache_dir "sweeps"

let sweep_digest specs =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (Printf.sprintf "pc-journal-%d" journal_format
          :: List.map Spec.digest specs)))

let path ~dir specs = Filename.concat dir (sweep_digest specs ^ ".journal")

(* ------------------------------------------------------------------ *)
(* Line (de)serialisation                                             *)

let line_of_entry ~digest { key; result } =
  let fields =
    [ ("digest", Json.String digest); ("key", Json.String key) ]
    @
    match result with
    | Ok o -> [ ("ok", Cache.outcome_to_json o) ]
    | Error msg -> [ ("error", Json.String msg) ]
  in
  Json.to_string (Json.Obj fields) ^ "\n"

let entry_of_line line =
  match Json.of_string line with
  | exception _ -> None
  | j -> (
      match (Json.member "digest" j, Json.member "key" j) with
      | Some (Json.String digest), Some (Json.String key) -> (
          match (Json.member "ok" j, Json.member "error" j) with
          | Some o, None -> (
              match Cache.outcome_of_json o with
              | outcome -> Some (digest, { key; result = Ok outcome })
              | exception _ -> None)
          | None, Some (Json.String msg) ->
              Some (digest, { key; result = Error msg })
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)

(* WAL-style recovery: records are trusted up to the first one that
   fails to parse; everything from that point on — typically a single
   line torn by a writer killed mid-append — is a damaged tail. The
   caller truncates the file back to [valid_end] so the journal is
   physically repaired, not just skipped over: later appends never
   concatenate onto half a record. *)
let load_entries path =
  if not (Sys.file_exists path) then (Hashtbl.create 16, 0, 0, 0)
  else begin
    let content =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length content in
    let entries = Hashtbl.create 64 in
    let loaded = ref 0 in
    let valid_end = ref 0 in
    let pos = ref 0 in
    (try
       while !pos < len do
         let nl =
           match String.index_from content !pos '\n' with
           | nl -> nl
           | exception Not_found -> raise Exit (* unterminated tail *)
         in
         let line = String.sub content !pos (nl - !pos) in
         match entry_of_line line with
         | Some (digest, entry) ->
             (* Last write wins; duplicates are harmless (a job
                journaled twice across a kill boundary records the
                same pure outcome). *)
             if not (Hashtbl.mem entries digest) then incr loaded;
             Hashtbl.replace entries digest entry;
             valid_end := nl + 1;
             pos := nl + 1
         | None -> raise Exit (* garbled record: damaged from here *)
       done
     with Exit -> ());
    (entries, !loaded, !valid_end, len - !valid_end)
  end

let open_ ?(resume = false) ~dir specs =
  mkdir_p dir;
  let path = path ~dir specs in
  let entries, loaded, valid_end, repaired =
    if resume then load_entries path else (Hashtbl.create 64, 0, 0, 0)
  in
  let flags =
    if resume then Unix.[ O_WRONLY; O_APPEND; O_CREAT ]
    else Unix.[ O_WRONLY; O_TRUNC; O_CREAT ]
  in
  let fd = Unix.openfile path flags 0o644 in
  if repaired > 0 then begin
    (* Truncate the torn tail away before the first append: the
       resumed journal holds exactly its valid records. *)
    Unix.ftruncate fd valid_end;
    T.Counter.incr torn_tail_c;
    Log.warn (fun k ->
        k "journal %s: truncated a torn tail (%d byte(s)) left by a killed \
           writer; %d valid record(s) kept"
          path repaired loaded)
  end;
  { path; fd; mutex = Mutex.create (); entries; loaded; repaired }

let path_of t = t.path
let loaded t = t.loaded
let repaired t = t.repaired

let find t spec =
  (* Under the journal mutex: the serve daemon's client-handler
     threads call this while worker domains are mid-[record]. *)
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.entries (Spec.digest spec) with
      | Some { key; result } when key = Spec.key spec -> Some result
      | Some _ (* digest collision inside the journal *) | None -> None)

let write_fully fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let record t spec result =
  let digest = Spec.digest spec in
  let line = line_of_entry ~digest { key = Spec.key spec; result } in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      write_fully t.fd (Bytes.of_string line);
      Unix.fsync t.fd;
      Hashtbl.replace t.entries digest { key = Spec.key spec; result })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
