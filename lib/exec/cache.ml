open Pc_adversary

(* Content-addressed on-disk store of sweep results. One JSON file per
   executed spec, named by the spec's digest:

     <dir>/<md5-hex-of-spec-key>.json

   Each file records the format version, the canonical spec key (so a
   digest collision or a stale format is detected, never silently
   served), the full spec, and the outcome. Writes go through a
   temporary file + rename so a crashed or concurrent run never leaves
   a truncated entry behind. *)

type t = { dir : string }

let env_var = "PC_CACHE_DIR"
let default_dir () =
  match Sys.getenv_opt env_var with
  | Some d when d <> "" -> d
  | Some _ | None -> "_pc_cache"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  mkdir_p dir;
  { dir }

let dir t = t.dir
let path t spec = Filename.concat t.dir (Spec.digest spec ^ ".json")

(* ------------------------------------------------------------------ *)
(* Outcome (de)serialisation                                          *)

let outcome_to_json (o : Runner.outcome) =
  Json.Obj
    [
      ("program", Json.String o.program);
      ("manager", Json.String o.manager);
      ("m", Json.Int o.m);
      ("n", Json.Int o.n);
      ("c", (match o.c with None -> Json.Null | Some c -> Json.Float c));
      ("hs", Json.Int o.hs);
      ("hs_over_m", Json.Float o.hs_over_m);
      ("allocated", Json.Int o.allocated);
      ("moved", Json.Int o.moved);
      ("freed", Json.Int o.freed);
      ("final_live", Json.Int o.final_live);
      ("compliant", Json.Bool o.compliant);
    ]

exception Bad_entry of string

let fail fmt = Fmt.kstr (fun s -> raise (Bad_entry s)) fmt

let get f j k =
  match f (Json.member_exn k j) with
  | Some v -> v
  | None -> fail "cache entry: bad field %s" k

let outcome_of_json j : Runner.outcome =
  {
    program = get Json.to_string_opt j "program";
    manager = get Json.to_string_opt j "manager";
    m = get Json.to_int j "m";
    n = get Json.to_int j "n";
    c =
      (match Json.member_exn "c" j with
      | Json.Null -> None
      | v -> (
          match Json.to_float v with
          | Some c -> Some c
          | None -> fail "cache entry: bad field c"));
    hs = get Json.to_int j "hs";
    hs_over_m = get Json.to_float j "hs_over_m";
    allocated = get Json.to_int j "allocated";
    moved = get Json.to_int j "moved";
    freed = get Json.to_int j "freed";
    final_live = get Json.to_int j "final_live";
    compliant = get Json.to_bool j "compliant";
  }

(* ------------------------------------------------------------------ *)
(* Lookup / store                                                     *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type lookup =
  | Hit of Runner.outcome
  | Miss
  | Invalid of { path : string; reason : string }

let lookup ?faults t spec =
  let path = path t spec in
  if not (Sys.file_exists path) then Miss
  else begin
    let content =
      let raw = read_file path in
      match faults with
      | None -> raw
      | Some f -> (
          match Faults.mangle_read f ~digest:(Spec.digest spec) raw with
          | Some corrupted -> corrupted
          | None -> raw)
    in
    match Json.of_string content with
    | exception _ ->
        Invalid { path; reason = "unreadable entry (truncated or garbage)" }
    | entry -> (
        if Json.member "format" entry <> Some (Json.Int Spec.cache_format) then
          Invalid { path; reason = "stale or missing format version" }
        else if Json.member "key" entry <> Some (Json.String (Spec.key spec))
        then
          (* The file is named by this spec's digest but records a
             different canonical key: a digest collision or a mangled
             entry. Never serve it. *)
          Invalid { path; reason = "key mismatch (digest collision?)" }
        else
          match Json.member "outcome" entry with
          | None -> Invalid { path; reason = "missing outcome" }
          | Some o -> (
              match outcome_of_json o with
              | outcome -> Hit outcome
              | exception _ -> Invalid { path; reason = "malformed outcome" }))
  end

let find ?faults t spec =
  match lookup ?faults t spec with Hit o -> Some o | Miss | Invalid _ -> None

let store ?faults t spec (outcome : Runner.outcome) =
  let entry =
    Json.Obj
      [
        ("format", Json.Int Spec.cache_format);
        ("key", Json.String (Spec.key spec));
        ("spec", Spec.to_json spec);
        ("outcome", outcome_to_json outcome);
      ]
  in
  let content =
    let full = Json.to_string ~indent:true entry in
    match faults with
    | None -> full
    | Some f -> (
        match Faults.mangle_write f ~digest:(Spec.digest spec) full with
        | Some torn -> torn
        | None -> full)
  in
  let final = path t spec in
  let tmp = Printf.sprintf "%s.%d.tmp" final (Unix.getpid ()) in
  (* Write-to-temp + atomic rename, and never leave the temp file
     behind: a writer that raises mid-write (full disk, injected
     fault, killed worker) must not litter the cache directory. *)
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc content)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp final
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
