(** Crash-safe sweep journal: checkpoint/resume for the engine.

    As the pool finishes jobs, the engine appends one fsynced JSON
    line per outcome to [<dir>/<sweep-digest>.journal]. A sweep killed
    mid-run resumes by reopening the journal with [~resume:true] and
    re-executing only the jobs absent from it (and from the result
    cache): outcomes are pure functions of their specs and round-trip
    bit-exactly, so a resumed run's results are byte-identical to an
    uninterrupted run's.

    The journal file is named by a digest over the {e ordered} spec
    list — a different sweep opens a different journal. Lines are
    single [write]s fsynced before {!record} returns. Replay is
    WAL-style: records are trusted up to the first one that fails to
    parse, and the damaged tail — typically one line torn by a writer
    killed mid-append — is truncated away (with a warning and a
    [checkpoint.torn_tail] telemetry tick) so the repaired journal
    holds exactly its valid records and later appends never land on
    half a record. Digest-colliding entries whose canonical key does
    not match are ignored. *)

type t

val sweep_digest : Spec.t list -> string
(** Content digest of the ordered spec list (journal identity). *)

val default_dir : cache_dir:string -> string
(** [<cache_dir>/sweeps] — journals live next to the result cache. *)

val path : dir:string -> Spec.t list -> string
(** The journal file this sweep maps to (whether or not it exists). *)

val open_ : ?resume:bool -> dir:string -> Spec.t list -> t
(** Open (creating [dir] as needed) the journal for [specs]. With
    [~resume:true] previously journaled outcomes become visible to
    {!find}; otherwise the journal is truncated and the sweep starts
    clean. *)

val loaded : t -> int
(** Number of outcomes reloaded at [open_ ~resume:true] time. *)

val repaired : t -> int
(** Torn-tail bytes truncated away at [open_ ~resume:true] time; [0]
    for a clean journal (or a non-resume open, which truncates the
    whole file anyway). *)

val path_of : t -> string

val find : t -> Spec.t -> (Pc_adversary.Runner.outcome, string) result option
(** The journaled outcome of [spec], if any ([Error] lines — jobs that
    failed deterministically — replay too, keeping resume ≡
    uninterrupted). *)

val record : t -> Spec.t -> (Pc_adversary.Runner.outcome, string) result -> unit
(** Append one line and [fsync]. Thread-safe (the pool's worker
    domains call this concurrently). *)

val close : t -> unit
