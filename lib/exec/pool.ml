(* A fixed-size Domain worker pool over a mutex/condition work queue.
   Hand-rolled on purpose: the repo takes no dependency beyond the
   compiler's own libraries, and the sweep engine's needs are simple —
   submit thunks, wait for quiescence, shut down.

   Tasks must not raise: the engine wraps every job in its own
   exception capture. A task that does raise anyway is swallowed here
   so a worker domain never dies and strands the queue. *)

type t = {
  tasks : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  all_done : Condition.t;
  mutable pending : int;  (* submitted, not yet finished *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      if not (Queue.is_empty t.tasks) then Some (Queue.pop t.tasks)
      else if t.stopping then None
      else begin
        Condition.wait t.work_available t.mutex;
        next ()
      end
    in
    match next () with
    | None -> Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        (try task () with _ -> ());
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.all_done;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ~workers =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      tasks = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      all_done = Condition.create ();
      pending = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn (worker t));
  t

let size t = List.length t.workers

let submit t task =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  t.pending <- t.pending + 1;
  Queue.push task t.tasks;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let wait t =
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.all_done t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Run [f] on every element of [items] using [jobs] workers and return
   the results in order. [jobs <= 1] runs inline on the calling domain
   — bit-for-bit the same results, no domains spawned.

   A raising [f] no longer vanishes into the worker's swallow-all:
   each task captures its own exception and [map_array] re-raises the
   first one (in submission order) after the pool has settled and been
   torn down — so a fault-injected kill escapes to the caller while
   every already-finished job's side effects (cache store, journal
   line) remain intact. *)
let map_array ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let pool = create ~workers:(min jobs n) in
    Array.iteri
      (fun i item ->
        submit pool (fun () ->
            results.(i) <-
              Some
                (match f item with
                | r -> Ok r
                | exception e -> Error (e, Printexc.get_raw_backtrace ()))))
      items;
    wait pool;
    shutdown pool;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error _) | None ->
            (* Unreachable: every task stores before finishing and
               failures re-raised above. *)
            failwith "Pool.map_array: missing result")
      results
  end
