(* The JSON reader/writer lives in [Pc_json.Json] so that layers below
   pc_exec (the telemetry registry's encoders) can share it; this shim
   keeps [Pc_exec.Json] (and the [Json] name inside this library) as
   the same module, types included. *)

include Pc_json.Json
