(** Deterministic, serialisable experiment-point descriptions.

    A spec pins down one (workload × manager × scale) point of a sweep
    as pure data: it can be hashed (for the content-addressed result
    cache), rebuilt into a fresh [Program.t] on any worker domain, and
    compared structurally across runs. *)

type size_dist = Pc_adversary.Random_workload.size_dist =
  | Uniform of { lo : int; hi : int }
  | Pow2 of { lo_log : int; hi_log : int }
  | Fixed of int

type sawtooth_pattern = Pc_adversary.Sawtooth.pattern =
  | Every_other
  | First_half
  | Random of int

type workload =
  | Pf of { ell : int option; stage1_steps : int option; maintain_density : bool }
  | Robson of { steps : int option }
  | Pw of { steps : int option }
  | Sawtooth of { rounds : int option; pattern : sawtooth_pattern }
  | Random_churn of {
      seed : int;
      churn : int;
      dist : size_dist;
      target_live : int;
    }

type t = {
  workload : workload;
  manager : string;  (** a {!Pc_manager.Registry} key *)
  m : int;  (** the paper's live-space bound [M], in words *)
  n : int;  (** largest object size *)
  c : float option;  (** compaction bound; [None] = unlimited *)
}

val equal : t -> t -> bool

(** {1 Constructors} *)

val pf :
  ?ell:int ->
  ?stage1_steps:int ->
  ?maintain_density:bool ->
  c:float ->
  manager:string ->
  m:int ->
  n:int ->
  unit ->
  t

val robson : ?steps:int -> ?c:float -> manager:string -> m:int -> n:int -> unit -> t
val pw : ?steps:int -> ?c:float -> manager:string -> m:int -> n:int -> unit -> t

val sawtooth :
  ?rounds:int ->
  ?pattern:sawtooth_pattern ->
  ?c:float ->
  manager:string ->
  m:int ->
  n:int ->
  unit ->
  t

val random_churn :
  ?seed:int ->
  ?churn:int ->
  ?c:float ->
  manager:string ->
  m:int ->
  dist:size_dist ->
  target_live:int ->
  unit ->
  t
(** [n] is derived from [dist]. *)

(** {1 Realisation} *)

val build : ?pf_audit:bool -> t -> Pc_adversary.Program.t
(** Construct a fresh program for this spec. Raises [Invalid_argument]
    on parameters the workload rejects (the engine captures this per
    job). [pf_audit] (default false) additionally enables PF's
    internal Claim 4.16 potential audit — expensive, and not part of
    the spec's identity (it changes what is checked, never the
    outcome). *)

val manager : t -> Pc_manager.Manager.t
(** Fresh manager instance. Raises [Invalid_argument] on an unknown
    key. *)

(** {1 Identity} *)

val key : t -> string
(** Canonical human-readable identity; equal specs have equal keys. *)

val digest : t -> string
(** Hex digest of {!key} plus the cache format version — the result
    cache's file name. *)

val cache_format : int
(** Bumped when execution semantics change enough to invalidate every
    cached outcome. *)

val pp : Format.formatter -> t -> unit

(** {1 Serialisation} *)

exception Bad_spec of string

val to_json : t -> Json.t

val of_json : Json.t -> t
(** Raises {!Bad_spec} or [Json.Parse_error] on malformed input. *)
