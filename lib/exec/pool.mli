(** A fixed-size [Domain] worker pool over a mutex/condition work
    queue. No dependencies beyond the OCaml runtime.

    Tasks are expected not to raise; a raising task is swallowed so a
    worker never strands the queue (wrap work in its own exception
    capture — the sweep engine does). *)

type t

val create : workers:int -> t
(** Spawn [workers] domains (at least 1). *)

val size : t -> int
val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

val wait : t -> unit
(** Block until every submitted task has finished. *)

val shutdown : t -> unit
(** Drain the queue, then join and release the worker domains. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f items] applies [f] to every element on a
    transient pool of [min jobs (length items)] workers, preserving
    order. [jobs <= 1] runs inline on the calling domain. If [f]
    raises, the first exception (in submission order) is re-raised
    after all tasks have settled and the pool is torn down; completed
    tasks' side effects are preserved. *)
