(* Advisory single-writer lock over an on-disk state directory (result
   cache + checkpoint journal, or a serve daemon's state dir).

   The lock is a file created with O_CREAT|O_EXCL — atomic on every
   POSIX filesystem — holding the owner's PID. Two concurrent writers
   racing for the same state fail fast with a clear error instead of
   silently interleaving journal appends and cache renames.

   Stale-lock detection: a holder that died without releasing (kill
   -9, power loss) leaves its PID behind; if that PID no longer names
   a live process (kill 0 -> ESRCH), or names *this* process (the
   previous holder crashed inside the same process image, or a dead
   holder's PID was recycled onto us — either way it cannot be an
   independent live owner), the lock is broken and re-acquired. A live
   foreign PID — including EPERM, a live process we may not signal —
   keeps the lock. *)

let src = Logs.Src.create "pc.lockfile" ~doc:"state-dir lockfile"

module Log = (val Logs.src_log src : Logs.LOG)

type t = { path : string; pid : int }

exception Locked of { path : string; pid : int }

let () =
  Printexc.register_printer (function
    | Locked { path; pid } ->
        Some
          (Printf.sprintf
             "lock %s is held by live process %d (two pc processes must not \
              share a state dir; stop the other one or point --state-dir / \
              --cache-dir elsewhere)"
             path pid)
    | _ -> None)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_pid path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | content -> int_of_string_opt (String.trim content)

let alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true (* EPERM: alive, not ours *)

let try_create path =
  match Unix.openfile path Unix.[ O_CREAT; O_EXCL; O_WRONLY ] 0o644 with
  | fd ->
      let pid = Unix.getpid () in
      let line = Bytes.of_string (string_of_int pid ^ "\n") in
      ignore (Unix.write fd line 0 (Bytes.length line));
      Unix.close fd;
      Some { path; pid }
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> None

let acquire path =
  mkdir_p (Filename.dirname path);
  (* Bounded retries: breaking a stale lock and re-creating it races
     against other breakers; whoever wins the O_EXCL create owns it. *)
  let rec go tries =
    if tries = 0 then
      Fmt.failwith "lockfile %s: could not acquire (contended)" path
    else
      match try_create path with
      | Some t -> t
      | None -> (
          match read_pid path with
          | Some pid when pid <> Unix.getpid () && alive pid ->
              raise (Locked { path; pid })
          | Some pid ->
              Log.warn (fun k ->
                  k "lock %s: breaking stale lock of dead process %d" path pid);
              (try Sys.remove path with Sys_error _ -> ());
              go (tries - 1)
          | None ->
              (* Empty or garbled PID: a holder killed between create
                 and write, or the file vanished under us. Break it. *)
              (try Sys.remove path with Sys_error _ -> ());
              go (tries - 1))
  in
  go 5

let release t = try Sys.remove t.path with Sys_error _ -> ()
let path t = t.path
