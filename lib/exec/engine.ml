open Pc_adversary

(* The sweep engine: resolve a list of job specs against the result
   cache, execute the misses on a Domain worker pool with per-job
   exception capture, store fresh outcomes back, and report a summary.

   Determinism: every job rebuilds its program, manager, heap and
   budget from the spec alone, and all randomness in the workloads is
   seeded — so the outcome of a spec is a pure function of the spec,
   independent of worker count and scheduling. [run ~jobs:4] is
   bit-identical to [run ~jobs:1]. *)

let src = Logs.Src.create "pc.exec" ~doc:"parallel sweep engine"

module Log = (val Logs.src_log src : Logs.LOG)

type job_result = {
  spec : Spec.t;
  result : (Runner.outcome, string) result;
  from_cache : bool;
  elapsed : float;
}

type summary = {
  total : int;
  executed : int;
  cached : int;
  failed : int;
  wall : float;
}

let execute spec =
  let t0 = Unix.gettimeofday () in
  let result =
    match
      let program = Spec.build spec in
      let manager = Spec.manager spec in
      Runner.run ?c:spec.Spec.c ~program ~manager ()
    with
    | outcome -> Ok outcome
    | exception e ->
        (* One diverging or invalid point must not kill the sweep. *)
        Error (Printexc.to_string e)
  in
  { spec; result; from_cache = false; elapsed = Unix.gettimeofday () -. t0 }

let run ?(jobs = 1) ?cache specs =
  let t0 = Unix.gettimeofday () in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let results : job_result option array = Array.make n None in
  (* Serve what we can from the cache (cheap, sequential). *)
  (match cache with
  | None -> ()
  | Some cache ->
      Array.iteri
        (fun i spec ->
          match Cache.find cache spec with
          | Some outcome ->
              results.(i) <-
                Some
                  { spec; result = Ok outcome; from_cache = true; elapsed = 0. }
          | None -> ())
        specs);
  (* Execute the misses on the pool. *)
  let misses =
    Array.of_seq
      (Seq.filter
         (fun i -> results.(i) = None)
         (Seq.init n (fun i -> i)))
  in
  Log.info (fun k ->
      k "sweep: %d points, %d cached, %d to execute on %d worker(s)" n
        (n - Array.length misses)
        (Array.length misses) (max 1 jobs));
  let executed = Pool.map_array ~jobs (fun i -> execute specs.(i)) misses in
  Array.iteri (fun k i -> results.(i) <- Some executed.(k)) misses;
  (* Persist fresh successes. *)
  (match cache with
  | None -> ()
  | Some cache ->
      Array.iter
        (fun (r : job_result) ->
          match r.result with
          | Ok outcome -> Cache.store cache r.spec outcome
          | Error _ -> ())
        executed);
  let results =
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every slot is a hit or a miss *))
         results)
  in
  let count p = List.length (List.filter p results) in
  let summary =
    {
      total = n;
      executed = Array.length misses;
      cached = n - Array.length misses;
      failed = count (fun r -> Result.is_error r.result);
      wall = Unix.gettimeofday () -. t0;
    }
  in
  (results, summary)

let outcome_exn r =
  match r.result with
  | Ok o -> o
  | Error msg -> Fmt.failwith "job %a failed: %s" Spec.pp r.spec msg

let pp_summary ppf s =
  Fmt.pf ppf "%d point%s: %d executed, %d cached, %d failed in %.2fs" s.total
    (if s.total = 1 then "" else "s")
    s.executed s.cached s.failed s.wall
