open Pc_adversary

(* The sweep engine: resolve a list of job specs against the
   checkpoint journal and the result cache, execute the misses on a
   Domain worker pool with per-job exception capture, retry and
   per-job timeouts, store fresh outcomes back, and report a summary.

   Determinism: every job rebuilds its program, manager, heap and
   budget from the spec alone, and all randomness in the workloads is
   seeded — so the outcome of a spec is a pure function of the spec,
   independent of worker count, scheduling, retries and resume point.
   [run ~jobs:4] is bit-identical to [run ~jobs:1], and a killed sweep
   resumed from its journal is bit-identical to an uninterrupted one.

   Failure taxonomy (see DESIGN.md):
   - transient: an injected worker crash ([Faults.Worker_crash]) or a
     wall-clock timeout. Retried with exponential backoff and seeded
     deterministic jitter, up to [retries] times.
   - deterministic: any other exception that the job reproduces on an
     immediate probe re-run. Degrades to [Error] without burning the
     transient-retry budget — a poisoned spec never stalls the pool.
   - fatal: [Faults.Sweep_killed] (the simulated process kill) is
     never caught; it escapes [run] so crash-recovery tests exercise
     the same path a real SIGKILL would. *)

let src = Logs.Src.create "pc.exec" ~doc:"parallel sweep engine"

module Log = (val Logs.src_log src : Logs.LOG)

(* Telemetry: resolution mix (journal/cache/executed), transient-retry
   pressure, and one "job:<digest-prefix>" span per executed job so
   `pc report` can rank the hottest points of a sweep. Job spans are
   interned on the main domain before dispatch; each is then written
   by exactly one worker. *)
module T = Pc_telemetry

let jobs_c = T.Registry.counter "engine.jobs"
let executed_c = T.Registry.counter "engine.executed"
let cache_hits_c = T.Registry.counter "engine.cache_hits"
let cache_miss_c = T.Registry.counter "engine.cache_misses"
let cache_invalid_c = T.Registry.counter "engine.cache_invalid"
let resumed_c = T.Registry.counter "engine.journal_resumed"
let retries_c = T.Registry.counter "engine.retries"
let transients_c = T.Registry.counter "engine.transient_failures"
let failed_c = T.Registry.counter "engine.failed"

type job_result = {
  spec : Spec.t;
  result : (Runner.outcome, string) result;
  from_cache : bool;
  from_journal : bool;
  attempts : int;
  elapsed : float;
  bundle : string option;
}

type summary = {
  total : int;
  executed : int;
  cached : int;
  resumed : int;
  recovered : int;
  retried : int;
  failed : int;
  violations : int;
  bundles : string list;
  wall : float;
}

(* ------------------------------------------------------------------ *)
(* One job, with retries                                              *)

(* Theorem 1's floor applies to full-strength PF only: the ablation
   variants (no density maintenance, truncated stage 1) are designed
   to fall below it. *)
let theory_h_of spec =
  match (spec.Spec.workload, spec.Spec.c) with
  | Spec.Pf { ell; stage1_steps = None; maintain_density = true }, Some c -> (
      match Pf.config ?ell ~m:spec.Spec.m ~n:spec.Spec.n ~c () with
      | cfg -> Some cfg.Pf.h
      | exception Invalid_argument _ -> None)
  | _ -> None

let run_once ?faults ?audit ?failures_dir spec ~digest ~attempt =
  match
    (match faults with
    | Some f -> Faults.pre_job f ~digest ~attempt
    | None -> ());
    let pf_audit = audit = Some Pc_audit.Oracle.Full in
    let program = Spec.build ~pf_audit spec in
    let manager = Spec.manager spec in
    Runner.run ?c:spec.Spec.c ?audit ?theory_h:(theory_h_of spec)
      ?failures_dir ~program ~manager ()
  with
  | outcome -> Ok outcome
  | exception (Faults.Sweep_killed _ as e) ->
      (* Never classified: the simulated process kill. *)
      raise e
  | exception e -> Error e

(* Exponential backoff with seeded deterministic jitter: the sleep for
   retry [k] of a job is a pure function of (seed, digest, k). *)
let backoff_sleep ~seed ~digest ~backoff k =
  if backoff > 0. then begin
    let jitter = Faults.hash01 ~seed ~site:"backoff" ~digest k in
    Unix.sleepf (backoff *. (2. ** float_of_int k) *. (1. +. jitter))
  end

let execute_with_retries ?faults ?(retries = 0) ?timeout ?(backoff = 0.1)
    ?audit ?failures_dir spec =
  let digest = Spec.digest spec in
  let seed = match faults with Some f -> Faults.seed f | None -> 0 in
  let t0 = Unix.gettimeofday () in
  let bundle = ref None in
  (* [attempt] numbers every execution; [transients] counts the
     transient failures burned so far (capped by [retries]);
     [probed] is set once a generic exception has been re-run. *)
  let rec go ~attempt ~transients ~probed =
    let a0 = Unix.gettimeofday () in
    let result = run_once ?faults ?audit ?failures_dir spec ~digest ~attempt in
    let attempt_elapsed = Unix.gettimeofday () -. a0 in
    let timed_out =
      match timeout with Some limit -> attempt_elapsed > limit | None -> false
    in
    let retry_transient reason =
      T.Counter.incr transients_c;
      if transients < retries then begin
        Log.info (fun k ->
            k "job %s: transient failure (%s) on attempt %d; retrying" digest
              reason attempt);
        backoff_sleep ~seed ~digest ~backoff transients;
        go ~attempt:(attempt + 1) ~transients:(transients + 1) ~probed
      end
      else
        ( Error
            (Printf.sprintf "unrecovered transient failure (%s) after %d attempts"
               reason (attempt + 1)),
          attempt + 1 )
    in
    match result with
    | Ok _ when timed_out ->
        (* The attempt finished but blew its wall-clock budget: treat
           the outcome as lost (a real supervisor would have killed
           the worker) and retry. Timeouts are detected post-hoc — a
           pure simulation cannot be preempted mid-computation. *)
        retry_transient (Printf.sprintf "timeout: %.3fs > %.3fs" attempt_elapsed
                           (Option.get timeout))
    | Ok outcome -> (Ok outcome, attempt + 1)
    | Error (Faults.Worker_crash _) -> retry_transient "worker crash"
    | Error (Pc_audit.Report.Reported b) ->
        (* An oracle violation is deterministic by construction (the
           bundle's replay already reproduced it during triage): no
           probe, no retry, and the bundle path rides on the result. *)
        bundle := Some b.Pc_audit.Report.dir;
        ( Error
            (Fmt.str "oracle violation: %a [bundle: %s]"
               Pc_audit.Oracle.pp_violation b.Pc_audit.Report.violation
               b.Pc_audit.Report.dir),
          attempt + 1 )
    | Error e ->
        if timed_out then
          retry_transient
            (Printf.sprintf "timeout: %.3fs > %.3fs" attempt_elapsed
               (Option.get timeout))
        else if not probed then begin
          (* First sighting of a generic exception: probe once,
             immediately. If the job reproduces it, it is
             deterministic; if not, it was environmental. *)
          Log.debug (fun k ->
              k "job %s: %s on attempt %d; probing for reproducibility" digest
                (Printexc.to_string e) attempt);
          go ~attempt:(attempt + 1) ~transients ~probed:true
        end
        else (Error (Printexc.to_string e), attempt + 1)
  in
  let result, attempts = go ~attempt:0 ~transients:0 ~probed:false in
  {
    spec;
    result;
    from_cache = false;
    from_journal = false;
    attempts;
    elapsed = Unix.gettimeofday () -. t0;
    bundle = !bundle;
  }

let execute spec = execute_with_retries spec

(* ------------------------------------------------------------------ *)
(* One job, resolved end to end                                       *)

(* The per-job resolution pipeline — journal, then cache, then an
   execution with retries, with the fresh outcome journaled (fsynced)
   before it is cached — packaged as a single call so a supervisor
   that schedules its own queue (the serve daemon) runs exactly the
   batch engine's code path per job. Journal-first durability order
   means a worker killed at any point either left no trace (the job
   re-resolves from scratch) or a complete journal line (the job
   replays without re-execution): completion is exactly-once. Unlike
   {!run}, a cache hit is journaled too, so the journal alone answers
   "is this job complete" across daemon restarts. *)
let resolve ?cache ?checkpoint ?faults ?retries ?timeout ?backoff ?audit
    ?failures_dir ?(on_cache_invalid = fun ~path:_ ~reason:_ -> ()) spec =
  let hit result ~from_cache ~from_journal =
    {
      spec;
      result;
      from_cache;
      from_journal;
      attempts = 0;
      elapsed = 0.;
      bundle = None;
    }
  in
  match Option.bind checkpoint (fun j -> Checkpoint.find j spec) with
  | Some result ->
      T.Counter.incr resumed_c;
      hit result ~from_cache:false ~from_journal:true
  | None -> (
      let cached =
        match cache with
        | None -> None
        | Some cache -> (
            match Cache.lookup ?faults cache spec with
            | Cache.Hit outcome ->
                T.Counter.incr cache_hits_c;
                Some outcome
            | Cache.Miss ->
                T.Counter.incr cache_miss_c;
                None
            | Cache.Invalid { path; reason } ->
                T.Counter.incr cache_invalid_c;
                Log.warn (fun k ->
                    k "cache: invalid entry %s (%s); re-executing" path reason);
                on_cache_invalid ~path ~reason;
                None)
      in
      match cached with
      | Some outcome ->
          (match checkpoint with
          | Some journal -> Checkpoint.record journal spec (Ok outcome)
          | None -> ());
          hit (Ok outcome) ~from_cache:true ~from_journal:false
      | None ->
          let r =
            execute_with_retries ?faults ?retries ?timeout ?backoff ?audit
              ?failures_dir spec
          in
          (* Durability order matters: journal first (fsynced —
             survives a kill), then cache, then the fault layer's kill
             point. *)
          (match checkpoint with
          | Some journal -> Checkpoint.record journal spec r.result
          | None -> ());
          (match (cache, r.result) with
          | Some cache, Ok outcome -> Cache.store ?faults cache spec outcome
          | _ -> ());
          (match faults with Some f -> Faults.job_completed f | None -> ());
          T.Counter.incr executed_c;
          r)

(* ------------------------------------------------------------------ *)
(* The sweep                                                          *)

let run ?(jobs = 1) ?cache ?checkpoint ?retries ?timeout ?backoff ?faults
    ?audit ?failures_dir specs =
  let t0 = Unix.gettimeofday () in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let results : job_result option array = Array.make n None in
  let recovered = Atomic.make 0 in
  let retried = Atomic.make 0 in
  (* 1. Replay journaled outcomes (resume). *)
  (match checkpoint with
  | None -> ()
  | Some journal ->
      Array.iteri
        (fun i spec ->
          match Checkpoint.find journal spec with
          | Some result ->
              results.(i) <-
                Some
                  {
                    spec;
                    result;
                    from_cache = false;
                    from_journal = true;
                    attempts = 0;
                    elapsed = 0.;
                    bundle = None;
                  }
          | None -> ())
        specs);
  (* 2. Serve what we can from the cache (cheap, sequential). An
     invalid entry — truncated, garbage, stale format, digest
     collision — is surfaced (counted and logged once), then
     re-executed and self-healed by the store below. *)
  (match cache with
  | None -> ()
  | Some cache ->
      Array.iteri
        (fun i spec ->
          if results.(i) = None then
            match Cache.lookup ?faults cache spec with
            | Cache.Hit outcome ->
                T.Counter.incr cache_hits_c;
                results.(i) <-
                  Some
                    {
                      spec;
                      result = Ok outcome;
                      from_cache = true;
                      from_journal = false;
                      attempts = 0;
                      elapsed = 0.;
                      bundle = None;
                    }
            | Cache.Miss -> T.Counter.incr cache_miss_c
            | Cache.Invalid { path; reason } ->
                Atomic.incr recovered;
                T.Counter.incr cache_invalid_c;
                Log.warn (fun k ->
                    k "cache: invalid entry %s (%s); re-executing" path reason))
        specs);
  (* 3. Execute the misses on the pool. Each job journals and caches
     its own outcome as it completes, so a kill at any point loses at
     most the in-flight jobs. *)
  let misses =
    Array.of_seq
      (Seq.filter (fun i -> results.(i) = None) (Seq.init n (fun i -> i)))
  in
  let journaled =
    Array.fold_left
      (fun acc -> function Some r when r.from_journal -> acc + 1 | _ -> acc)
      0 results
  in
  Log.info (fun k ->
      k "sweep: %d points, %d journaled, %d cached, %d to execute on %d \
         worker(s)"
        n journaled
        (n - Array.length misses - journaled)
        (Array.length misses) (max 1 jobs));
  (* Job spans are interned up front, on the main domain, so the
     registry mutex is never contended from the pool and each span has
     a single writer (its worker). Created only when telemetry is on —
     a large disabled sweep should not populate the registry. *)
  let job_spans =
    if !T.Sink.active then begin
      let tbl = Hashtbl.create (Array.length misses) in
      Array.iter
        (fun i ->
          let digest = Spec.digest specs.(i) in
          let short = String.sub digest 0 (min 12 (String.length digest)) in
          Hashtbl.replace tbl i (T.Registry.span ("job:" ^ short)))
        misses;
      Some tbl
    end
    else None
  in
  let exec_one i =
    let work () =
      execute_with_retries ?faults ?retries ?timeout ?backoff ?audit
        ?failures_dir specs.(i)
    in
    let r =
      match job_spans with
      | Some tbl -> T.Span.time (Hashtbl.find tbl i) work
      | None -> work ()
    in
    if r.attempts > 1 then
      ignore (Atomic.fetch_and_add retried (r.attempts - 1));
    (* Durability order matters: journal first (fsynced — survives a
       kill), then cache, then the fault layer's kill point. *)
    (match checkpoint with
    | Some journal -> Checkpoint.record journal r.spec r.result
    | None -> ());
    (match (cache, r.result) with
    | Some cache, Ok outcome -> Cache.store ?faults cache r.spec outcome
    | _ -> ());
    (match faults with Some f -> Faults.job_completed f | None -> ());
    r
  in
  let executed = Pool.map_array ~jobs exec_one misses in
  Array.iteri (fun k i -> results.(i) <- Some executed.(k)) misses;
  let results =
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every slot is a hit or a miss *))
         results)
  in
  let count p = List.length (List.filter p results) in
  let bundles = List.filter_map (fun r -> r.bundle) results in
  let summary =
    {
      total = n;
      executed = Array.length misses;
      cached = count (fun r -> r.from_cache);
      resumed = count (fun r -> r.from_journal);
      recovered = Atomic.get recovered;
      retried = Atomic.get retried;
      failed = count (fun r -> Result.is_error r.result);
      violations = List.length bundles;
      bundles;
      wall = Unix.gettimeofday () -. t0;
    }
  in
  if !T.Sink.active then begin
    T.Counter.add jobs_c summary.total;
    T.Counter.add executed_c summary.executed;
    T.Counter.add resumed_c summary.resumed;
    T.Counter.add retries_c summary.retried;
    T.Counter.add failed_c summary.failed
  end;
  (results, summary)

let outcome_exn r =
  match r.result with
  | Ok o -> o
  | Error msg -> Fmt.failwith "job %a failed: %s" Spec.pp r.spec msg

let pp_summary ppf s =
  Fmt.pf ppf "%d point%s: %d executed, %d cached, %d failed in %.2fs" s.total
    (if s.total = 1 then "" else "s")
    s.executed s.cached s.failed s.wall;
  if s.resumed > 0 then Fmt.pf ppf " (%d resumed from journal)" s.resumed;
  if s.recovered > 0 then
    Fmt.pf ppf " (%d invalid cache entr%s recovered)" s.recovered
      (if s.recovered = 1 then "y" else "ies");
  if s.retried > 0 then
    Fmt.pf ppf " (%d retr%s)" s.retried (if s.retried = 1 then "y" else "ies");
  if s.violations > 0 then begin
    Fmt.pf ppf " (%d oracle violation%s)" s.violations
      (if s.violations = 1 then "" else "s");
    List.iter (fun b -> Fmt.pf ppf "@,  bundle: %s" b) s.bundles
  end
