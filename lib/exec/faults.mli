(** Seeded, deterministic fault injection for the sweep engine.

    The engine, cache and CLI consult an optional [t] at job and
    cache-I/O boundaries; the hooks decide from (seed, site, digest,
    draw index) alone whether to simulate a worker crash, a stall, a
    torn cache write or a corrupted cache read. The same module backs
    the test suite and the chaos mode ([pc sweep --inject-faults]), so
    injection exercises exactly the production code paths.

    Crashes and delays are {e transient by construction}: attempts at
    or beyond [max_transient] are left alone, so an engine retry
    budget [>= max_transient] always recovers them. Cache faults are
    indexed by a per-site operation counter, so a torn store is not
    torn forever and the self-heal path converges. *)

type t

exception Worker_crash of string
(** Raised by {!pre_job} to simulate a worker dying mid-job; the
    engine classifies it as transient and retries with backoff. The
    payload is the job's spec digest. *)

exception Sweep_killed of int
(** Raised by {!job_completed} once [kill_after] jobs have finished:
    the whole-process kill for crash-recovery tests. The engine lets
    it escape [run] — resume from the checkpoint journal afterwards.
    The payload is the number of completed jobs. *)

exception Worker_killed of string
(** Raised by {!worker_kill} to simulate a worker domain dying
    abruptly (the serve daemon's SIGKILL-one-worker drill). Unlike
    {!Worker_crash} this is {e not} part of the engine's retry
    taxonomy: it escapes the worker so the supervision tree has to
    requeue the in-flight job and restart the worker. The payload is
    the job's spec digest. *)

val make :
  ?seed:int ->
  ?crash:float ->
  ?delay:float ->
  ?delay_s:float ->
  ?trunc:float ->
  ?corrupt:float ->
  ?wkill:float ->
  ?max_transient:int ->
  ?kill_after:int ->
  unit ->
  t
(** All probabilities default to [0.] (no injection); [delay_s]
    defaults to 10ms, [max_transient] to 2. *)

val of_string : string -> (t, string) result
(** Parse a chaos spec like
    ["crash=0.3,delay=0.15,delay-s=0.01,trunc=0.2,corrupt=0.2,seed=7"].
    Fields: [seed], [crash], [delay], [delay-s], [trunc], [corrupt],
    [wkill], [max-transient], [kill-after]; all optional,
    comma-separated. *)

val to_string : t -> string

val seed : t -> int
val max_transient : t -> int
(** Retry budgets [>= max_transient] are guaranteed to recover every
    injected crash/delay. *)

val hash01 : seed:int -> site:string -> digest:string -> int -> float
(** The deterministic coin in [\[0, 1)]: a pure function of its
    arguments, identical on every machine. Exposed so the engine can
    derive seeded backoff jitter from the same source. *)

val pre_job : t -> digest:string -> attempt:int -> unit
(** Consulted before each execution attempt: may sleep [delay_s]
    and/or raise {!Worker_crash}. Attempts [>= max_transient] are
    never faulted. *)

val worker_kill : t -> digest:string -> kills:int -> unit
(** Consulted by the serve daemon's worker loop before it starts a
    job: may raise {!Worker_killed}. [kills] is the number of times a
    worker already died holding this job; draws at or beyond
    [max_transient] never kill, so a supervised job always makes
    progress. *)

val job_completed : t -> unit
(** Consulted after a job's outcome has been journaled and cached; the
    [kill_after]-th call (and every later one) raises
    {!Sweep_killed}. *)

val mangle_write : t -> digest:string -> string -> string option
(** [Some truncated] to simulate a torn cache write (the entry is
    still renamed into place atomically — this models power loss after
    an unsynced rename, which no write protocol can mask). *)

val mangle_read : t -> digest:string -> string -> string option
(** [Some corrupted] to simulate a bad read of an intact entry. *)
