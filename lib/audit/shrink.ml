open Pc_heap

(* ddmin (Zeller & Hildebrandt's delta debugging) over trace events,
   followed by a single-event-removal fixpoint.

   The predicate answers "does this candidate sub-trace still trip the
   oracle under replay?". ddmin alone guarantees 1-minimality only
   with respect to its final chunk granularity; the trailing fixpoint
   makes the result 1-minimal outright: removing any single event
   stops the violation. Everything is deterministic — no randomness,
   no timestamps — so the same input trace always shrinks to the same
   minimum. *)

let src = Logs.Src.create "pc.shrink" ~doc:"trace delta debugging"

module Log = (val Logs.src_log src : Logs.LOG)

let events_of trace =
  Array.of_list
    (List.map (fun (e : Trace.entry) -> e.event) (Trace.entries trace))

(* [start, len] bounds of [arr] cut into [n] chunks of near-equal
   length (the first [len mod n] chunks get the extra element). *)
let chunk_bounds len n =
  let n = min n len in
  let base = len / n and extra = len mod n in
  let rec go i start acc =
    if i >= n then List.rev acc
    else
      let l = base + if i < extra then 1 else 0 in
      go (i + 1) (start + l) ((start, l) :: acc)
  in
  go 0 0 []

let remove arr start len =
  Array.append (Array.sub arr 0 start)
    (Array.sub arr (start + len) (Array.length arr - start - len))

(* Suffix slice with alloc-dependency closure. The violating event is
   the last event of the trace, and small repros usually live in its
   recent past — but a bare suffix rarely replays (its frees and moves
   reference objects allocated earlier). The closure of the last [k]
   events adds, in original order, the Alloc of every oid the window
   references, which is exactly what replay needs to accept the
   candidate. Doubling [k] costs log(len) replays and either finds a
   small reproducing seed for ddmin proper or falls back to the full
   trace (e.g. live-bound violations, which need the whole live set). *)
let slice ~check events =
  let len = Array.length events in
  let oid_of = function
    | Heap.Alloc o | Heap.Free o -> o.Heap.oid
    | Heap.Move m -> m.oid
  in
  let closure k =
    let keep = Array.make len false in
    let needed = Hashtbl.create 16 in
    for i = len - k to len - 1 do
      keep.(i) <- true;
      Hashtbl.replace needed (Oid.to_int (oid_of events.(i))) ()
    done;
    for i = len - k - 1 downto 0 do
      match events.(i) with
      | Heap.Alloc o when Hashtbl.mem needed (Oid.to_int o.oid) ->
          keep.(i) <- true;
          Hashtbl.remove needed (Oid.to_int o.oid)
      | Heap.Alloc _ | Heap.Free _ | Heap.Move _ -> ()
    done;
    let out = ref [] in
    for i = len - 1 downto 0 do
      if keep.(i) then out := events.(i) :: !out
    done;
    Array.of_list !out
  in
  let rec go k =
    if k >= len then events
    else
      let candidate = closure k in
      if Array.length candidate < len && check candidate then candidate
      else go (2 * k)
  in
  if len <= 1 then events else go 1

let ddmin ?(max_tests = max_int) ~predicate trace =
  if not (predicate trace) then
    invalid_arg "Shrink.ddmin: predicate does not hold on the input trace";
  let tests = ref 0 in
  (* Once the test budget is spent every further candidate counts as
     non-reproducing, which terminates the search at the current (still
     reproducing) trace. *)
  let check events =
    !tests < max_tests
    &&
    (incr tests;
     predicate (Trace.of_events (Array.to_list events)))
  in
  let rec go events n =
    let len = Array.length events in
    if len <= 1 then events
    else
      let cs = chunk_bounds len n in
      (* Reduce to a subset: some single chunk still reproduces. *)
      match
        List.find_opt (fun (s, l) -> l < len && check (Array.sub events s l)) cs
      with
      | Some (s, l) -> go (Array.sub events s l) 2
      | None -> (
          (* Reduce to a complement: dropping some chunk preserves the
             violation. *)
          match
            List.find_opt (fun (s, l) -> l < len && check (remove events s l)) cs
          with
          | Some (s, l) -> go (remove events s l) (max (n - 1) 2)
          | None ->
              (* Refine granularity, or stop at single-event chunks. *)
              if n < len then go events (min (2 * n) len) else events)
  in
  (* Fixpoint of single-event removals: guarantees 1-minimality. *)
  let rec polish events =
    let len = Array.length events in
    let rec try_from i =
      if i >= len then None
      else
        let candidate = remove events i 1 in
        if check candidate then Some candidate else try_from (i + 1)
    in
    match try_from 0 with Some smaller -> polish smaller | None -> events
  in
  let events = slice ~check (events_of trace) in
  let shrunk = polish (go events (min 2 (Array.length events))) in
  Log.info (fun k ->
      k "ddmin: %d events -> %d events in %d replays" (Array.length events)
        (Array.length shrunk) !tests);
  Trace.of_events (Array.to_list shrunk)
