(** Delta debugging of violating heap traces.

    A suffix slice with alloc-dependency closure (the violating event
    is the last one; try the closure of the last 1, 2, 4, ... events —
    log-many replays) seeds ddmin (Zeller & Hildebrandt) over the
    trace's event sequence, followed by a single-event-removal
    fixpoint, so the result is {e 1-minimal}: the predicate still
    holds on the result, and removing any single remaining event makes
    it fail. Deterministic — the same trace and predicate always
    shrink to the same minimum. *)

val ddmin :
  ?max_tests:int ->
  predicate:(Pc_heap.Trace.t -> bool) ->
  Pc_heap.Trace.t ->
  Pc_heap.Trace.t
(** [predicate] decides whether a candidate sub-trace still exhibits
    the failure (typically: replay it against the violated oracle and
    check the same oracle trips — a malformed candidate counts as
    [false], see {!Pc_heap.Trace.replay}). [max_tests] bounds the
    number of predicate evaluations; when the budget runs out the
    current (still reproducing, possibly non-minimal) trace is
    returned. Raises [Invalid_argument] if [predicate] fails on the
    input itself. *)
