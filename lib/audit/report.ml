open Pc_heap

(* Failure triage: turn an oracle violation plus the recorded trace
   into a small deterministic repro bundle on disk.

   A bundle is a directory under the failures dir (default
   _pc_failures/, override with PC_FAILURES_DIR or ?dir):

     <oracle>-<digest12>/
       meta.txt    line-based "key value" provenance + parameters
       trace.txt   the minimized trace in Trace wire format

   Bundles are written atomically (tmp dir + rename) so a crash
   mid-emit never leaves a half bundle, and the directory name is a
   content digest so re-running the same failure lands on the same
   bundle. *)

let src = Logs.Src.create "pc.report" ~doc:"failure repro bundles"

module Log = (val Logs.src_log src : Logs.LOG)

type info = {
  program : string;
  manager : string;
  m : int;
  n : int;
  c : float option; (* the audited compaction bound *)
  backend : Backend.t;
  theory_h : float option;
}

type bundle = {
  dir : string;
  violation : Oracle.violation;
  info : info;
  events_full : int; (* recorded trace length *)
  events_min : int; (* after shrinking *)
}

exception Reported of bundle

let meta_format = 1

let default_dir () =
  match Sys.getenv_opt "PC_FAILURES_DIR" with
  | Some d when d <> "" -> d
  | Some _ | None -> "_pc_failures"

let replay_command b = Printf.sprintf "pc replay %s" b.dir

(* ------------------------------------------------------------------ *)
(* Reproduction: replay a trace on a fresh heap with only the violated
   oracle attached, at full (every-event) intensity.                  *)

let reproduces ?only ~info trace =
  let level =
    match only with
    | Some "divergence" -> Oracle.Differential
    | Some _ | None -> Oracle.Full
  in
  let heap = Heap.create ~backend:info.backend () in
  let oracle =
    Oracle.attach ~level ~sample_every:1 ?c:info.c ~live_bound:info.m ?only
      heap
  in
  match Trace.replay_onto trace heap with
  | Error _ -> None (* malformed candidate: a shrink rejection *)
  | Ok () -> (
      match Oracle.finish ?theory_h:info.theory_h oracle with
      | () -> None
      | exception Oracle.Violation v -> Some v)
  | exception Oracle.Violation v -> Some v

let same_violation ?only ~info ~oracle trace =
  match reproduces ?only ~info trace with
  | Some v -> String.equal v.Oracle.oracle oracle
  | None -> false

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
    end
    else try Sys.remove path with Sys_error _ -> ()

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Best-effort provenance: the commit the violation was produced at. *)
let git_commit () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      if status = Unix.WEXITED 0 && line <> "" then line else "unknown"

let oneline s =
  String.map (function '\n' | '\r' -> ' ' | ch -> ch) s

let meta_text ~(violation : Oracle.violation) ~info ~events_full ~events_min
    ~dir =
  let b = Buffer.create 512 in
  let kv k v = Buffer.add_string b (Printf.sprintf "%s %s\n" k v) in
  kv "format" (string_of_int meta_format);
  kv "oracle" violation.oracle;
  kv "seq" (string_of_int violation.seq);
  kv "detail" (oneline violation.detail);
  kv "program" (oneline info.program);
  kv "manager" (oneline info.manager);
  kv "m" (string_of_int info.m);
  kv "n" (string_of_int info.n);
  kv "c" (match info.c with Some c -> Fmt.str "%h" c | None -> "-");
  kv "backend" (Backend.to_string info.backend);
  kv "theory_h"
    (match info.theory_h with Some h -> Fmt.str "%h" h | None -> "-");
  kv "events_full" (string_of_int events_full);
  kv "events_min" (string_of_int events_min);
  kv "commit" (git_commit ());
  kv "replay" (Printf.sprintf "pc replay %s" dir);
  Buffer.contents b

let tmp_counter = Atomic.make 0

let emit ?dir ~info ~violation ~events_full minimized =
  let parent = match dir with Some d -> d | None -> default_dir () in
  let trace_text = Trace.to_string minimized in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "|"
            [
              violation.Oracle.oracle;
              trace_text;
              info.program;
              info.manager;
              string_of_int info.m;
            ]))
  in
  let name = Printf.sprintf "%s-%s" violation.Oracle.oracle
      (String.sub digest 0 12)
  in
  let final = Filename.concat parent name in
  let bundle =
    {
      dir = final;
      violation;
      info;
      events_full;
      events_min = Trace.length minimized;
    }
  in
  mkdir_p parent;
  let tmp =
    Printf.sprintf "%s.tmp-%d-%d" final (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  rm_rf tmp;
  mkdir_p tmp;
  write_file (Filename.concat tmp "meta.txt")
    (meta_text ~violation ~info ~events_full
       ~events_min:(Trace.length minimized) ~dir:final);
  write_file (Filename.concat tmp "trace.txt") trace_text;
  (* Atomic publish; a concurrent or earlier emission of the same
     failure owns the same content-addressed name, so losing the race
     is fine. *)
  (try
     rm_rf final;
     Sys.rename tmp final
   with Sys_error _ when Sys.file_exists final -> rm_rf tmp);
  Log.warn (fun k ->
      k "oracle violation (%s) captured: %s (%d -> %d events)"
        violation.Oracle.oracle final events_full bundle.events_min);
  bundle

(* ------------------------------------------------------------------ *)
(* Capture: shrink if the violation kind supports it, emit, raise.    *)

let capture ?dir ?max_shrink_tests ~info ~violation ~trace () =
  let only = violation.Oracle.oracle in
  let minimized =
    if Oracle.shrinkable only && same_violation ~only ~info ~oracle:only trace
    then
      Shrink.ddmin ?max_tests:max_shrink_tests
        ~predicate:(same_violation ~only ~info ~oracle:only)
        trace
    else trace
  in
  let bundle =
    emit ?dir ~info ~violation ~events_full:(Trace.length trace) minimized
  in
  raise (Reported bundle)

(* ------------------------------------------------------------------ *)
(* Loading and replaying bundles                                      *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load dir =
  let ( let* ) = Result.bind in
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    fail "%s: not a bundle directory" dir
  else
    let meta_path = Filename.concat dir "meta.txt" in
    let trace_path = Filename.concat dir "trace.txt" in
    if not (Sys.file_exists meta_path && Sys.file_exists trace_path) then
      fail "%s: missing meta.txt or trace.txt" dir
    else begin
      let tbl = Hashtbl.create 16 in
      String.split_on_char '\n' (read_file meta_path)
      |> List.iter (fun line ->
             match String.index_opt line ' ' with
             | Some i ->
                 Hashtbl.replace tbl
                   (String.sub line 0 i)
                   (String.sub line (i + 1) (String.length line - i - 1))
             | None -> ());
      let get k =
        match Hashtbl.find_opt tbl k with
        | Some v -> Ok v
        | None -> fail "%s: meta.txt lacks %S" dir k
      in
      let int_of k v =
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> fail "%s: bad %s %S" dir k v
      in
      let* format = get "format" in
      let* format = int_of "format" format in
      if format <> meta_format then
        fail "%s: unsupported bundle format %d (expected %d)" dir format
          meta_format
      else
        let* oracle = get "oracle" in
        let* seq = Result.bind (get "seq") (int_of "seq") in
        let* detail = get "detail" in
        let* program = get "program" in
        let* manager = get "manager" in
        let* m = Result.bind (get "m") (int_of "m") in
        let* n = Result.bind (get "n") (int_of "n") in
        let* c_raw = get "c" in
        let* c =
          if c_raw = "-" then Ok None
          else
            match float_of_string_opt c_raw with
            | Some c -> Ok (Some c)
            | None -> fail "%s: bad c %S" dir c_raw
        in
        let* backend_raw = get "backend" in
        let* backend =
          match Backend.of_string backend_raw with
          | Ok b -> Ok b
          | Error (`Msg msg) -> fail "%s: %s" dir msg
        in
        let* th_raw = get "theory_h" in
        let* theory_h =
          if th_raw = "-" then Ok None
          else
            match float_of_string_opt th_raw with
            | Some h -> Ok (Some h)
            | None -> fail "%s: bad theory_h %S" dir th_raw
        in
        let* events_full =
          Result.bind (get "events_full") (int_of "events_full")
        in
        let* events_min = Result.bind (get "events_min") (int_of "events_min") in
        match Trace.of_string (read_file trace_path) with
        | exception Failure msg -> fail "%s: %s" dir msg
        | trace ->
            Ok
              ( {
                  dir;
                  violation = { Oracle.oracle; seq; detail };
                  info = { program; manager; m; n; c; backend; theory_h };
                  events_full;
                  events_min;
                },
                trace )
    end

let replay ?backend dir =
  match load dir with
  | Error _ as e -> e
  | Ok (bundle, trace) ->
      let info =
        match backend with
        | Some b -> { bundle.info with backend = b }
        | None -> bundle.info
      in
      Ok (reproduces ~only:bundle.violation.Oracle.oracle ~info trace)

(* ------------------------------------------------------------------ *)
(* Exit-code taxonomy shared by the CLIs                              *)

let exit_ok = 0
let exit_usage = 2
let exit_violation = 3
let exit_internal = 4

let pp_bundle ppf b =
  Fmt.pf ppf
    "@[<v>oracle violation: %a@,\
     repro bundle: %s (minimized to %d event%s from %d)@,\
     replay with: %s@]"
    Oracle.pp_violation b.violation b.dir b.events_min
    (if b.events_min = 1 then "" else "s")
    b.events_full (replay_command b)
