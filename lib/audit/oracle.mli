(** Composable runtime oracles over a live heap.

    An oracle subscribes to the heap's event stream and re-derives,
    from the heap's own observable state, the properties the rest of
    the system is supposed to maintain — independently of the
    [Budget]/manager accounting, so a bug that skips a debit on one
    side still trips the other.

    Oracles, by name (the name keys {!violation.oracle}, the [only]
    filter and the repro-bundle replay):
    - ["budget"]: the c-partial rule [moved <= floor(allocated / c)]
      at every instant (O(1), every event);
    - ["live-bound"]: [live <= M] at every instant (O(1), every
      event);
    - ["structure"]: the heap's full O(live) consistency sweep —
      sampled at [Sampled] and [Differential] (at least [sample_every]
      events apart, stretched so the amortized cost stays a few
      percent of execution), every event at [Full], and always once at
      {!finish};
    - ["divergence"] ([Differential] only): a shadow heap on the
      opposite substrate mirrors every event; the watchdog fails at
      the {e first} event where the two backends disagree (alloc oid,
      HS, live/moved/freed aggregates each event; free-index frontier,
      gap population, largest gap and occupied-word counts at sampled
      events and at {!finish});
    - ["theory"] (at {!finish}, when [theory_h] is supplied): final
      [HS/M >= h - eps] — Theorem 1's floor on a PF run. *)

type level = Off | Sampled | Full | Differential

val level_to_string : level -> string

val level_of_string : string -> (level, [ `Msg of string ]) result
(** Accepts "off", "sampled", "full", "differential"/"diff". *)

val level_of_string_exn : string -> level
val pp_level : Format.formatter -> level -> unit

type violation = {
  oracle : string;  (** which oracle tripped (names above) *)
  seq : int;  (** 1-based index of the heap event that tripped it *)
  detail : string;
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

val shrinkable : string -> bool
(** Whether a violating trace of this oracle can be delta-debugged:
    true for the per-event oracles (["budget"], ["live-bound"],
    ["structure"], ["divergence"]) whose verdict re-trips under
    sub-trace replay, false for end-of-run judgements (["theory"]) and
    adversary-internal audits (["pf-potential"]) that a bare heap
    trace cannot re-establish. *)

type t

val attach :
  ?level:level ->
  ?sample_every:int ->
  ?c:float ->
  ?live_bound:int ->
  ?only:string ->
  Pc_heap.Heap.t ->
  t
(** Subscribe the oracles to [heap]'s event stream. The heap must be
    fresh (no events yet) — the [Differential] shadow mirrors the
    stream from the beginning. [level] defaults to [Sampled] (at [Off]
    nothing is attached and {!finish} is a no-op); [sample_every]
    (default 64) is the {e minimum} structural-sweep spacing — the
    actual spacing stretches with the live-object count so the O(live)
    sweep stays amortized-cheap, except at [sample_every = 1], which
    pins the sweep to strictly every event (replay-based reproduction
    relies on that); [c] enables
    the budget oracle; [live_bound] enables the live-space oracle (and
    the theory oracle at {!finish}); [only] restricts checking to the
    named oracle — replay uses it to reproduce exactly the recorded
    violation kind. Raises [Invalid_argument] on [sample_every <= 0]
    or [c <= 1]. *)

val finish : ?theory_h:float -> ?eps:float -> t -> unit
(** End-of-run checks: a final full sweep of every attached oracle,
    the final deep shadow comparison at [Differential], and — given
    [theory_h] — the Theorem 1 floor [HS/M >= theory_h - eps] (only
    asserted when [theory_h > 1]; [eps] defaults to [0.05], the
    finite-scale tolerance — the theorem is asymptotic and borderline
    managers run up to ~0.02 below the floor at toy [M]). Raises
    {!Violation}. *)

val seq : t -> int
(** Heap events observed so far. *)

val level : t -> level
