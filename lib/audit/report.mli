(** Failure triage: oracle violation + recorded trace → minimized,
    replayable repro bundle on disk.

    A bundle is a directory [<oracle>-<digest12>/] under the failures
    directory (default [_pc_failures/], overridable with
    [PC_FAILURES_DIR] or [?dir]) holding [meta.txt] (line-based
    ["key value"] parameters and provenance: oracle, event index,
    detail, program, manager, M, n, c, backend, theory floor, event
    counts, commit, and the exact replay command) and [trace.txt] (the
    minimized trace in {!Pc_heap.Trace} wire format). Emission is
    atomic (tmp dir + rename), and the name is a content digest, so
    re-running the same failure converges on the same bundle. *)

type info = {
  program : string;
  manager : string;
  m : int;  (** live-space bound M *)
  n : int;  (** largest object size *)
  c : float option;  (** the {e audited} compaction bound *)
  backend : Pc_heap.Backend.t;
  theory_h : float option;  (** Theorem 1 floor, when known *)
}

type bundle = {
  dir : string;
  violation : Oracle.violation;
  info : info;
  events_full : int;  (** recorded trace length at capture time *)
  events_min : int;  (** after delta debugging *)
}

exception Reported of bundle
(** Raised by {!capture} once the bundle is on disk — the signal that
    a violation was caught {e and} triaged. *)

val default_dir : unit -> string
(** [PC_FAILURES_DIR] if set, else ["_pc_failures"]. *)

val capture :
  ?dir:string ->
  ?max_shrink_tests:int ->
  info:info ->
  violation:Oracle.violation ->
  trace:Pc_heap.Trace.t ->
  unit ->
  'a
(** Delta-debug [trace] against the violated oracle (when
    {!Oracle.shrinkable} says replay can re-trip it — otherwise the
    trace ships unshrunk), emit the bundle, and raise {!Reported}.
    Never returns. *)

val reproduces : ?only:string -> info:info -> Pc_heap.Trace.t -> Oracle.violation option
(** Replay [trace] on a fresh heap of [info.backend] with the oracles
    attached at every-event intensity ([only] restricts to one oracle;
    ["divergence"] selects the differential watchdog). [None] if the
    replay is clean {e or} the trace is malformed. *)

val load : string -> (bundle * Pc_heap.Trace.t, string) result
(** Read a bundle directory back. *)

val replay :
  ?backend:Pc_heap.Backend.t -> string -> (Oracle.violation option, string) result
(** [load] then [reproduces] with the bundle's recorded parameters
    ([backend] overrides the recorded substrate). [Ok (Some v)] — the
    violation reproduces; [Ok None] — it no longer trips (stale bundle
    or fixed bug); [Error] — unreadable bundle. *)

val replay_command : bundle -> string
(** The [pc replay <dir>] invocation recorded in [meta.txt]. *)

val pp_bundle : Format.formatter -> bundle -> unit

(** {1 Exit-code taxonomy}

    Shared by the [pc] and [bench] CLIs so CI can key off the cause:
    [0] success, [2] usage error, [3] oracle violation, [4] internal
    error. *)

val exit_ok : int
val exit_usage : int
val exit_violation : int
val exit_internal : int
