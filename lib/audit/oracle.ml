open Pc_heap

(* Composable runtime oracles over a live heap.

   An oracle subscribes to the heap's event stream and re-derives, from
   the heap's own observable state, the properties the rest of the
   system is supposed to maintain: structural consistency, the
   c-partial budget rule, the live-space bound, and (at the end of a PF
   run) the Theorem 1 floor. The point is independence — the oracle
   shares no accounting with Budget or the managers, so a bug that
   skips a debit on one side still trips the other.

   Cost model: the budget and live-space checks are O(1), driven by
   counters tracked incrementally from the event stream, and run on
   exactly the events able to violate them (moves and allocations
   respectively) at every level; the sampled sweep cross-checks those
   counters against the heap's own accounting. The structural sweep is O(live),
   so at [Sampled] and [Differential] it is sampled: at least
   [sample_every] events apart, stretched adaptively so the amortized
   sweep cost stays a bounded fraction of execution ([sample_every =
   1] disables the stretching and checks every event — replay-based
   reproduction relies on that). [Full] runs the sweep on every event.
   [Differential] additionally maintains a shadow heap on the opposite
   substrate, applies every event to it, and compares the observable
   aggregates after each event — the watchdog fails at the first
   diverging event, not at end-of-run. *)

let src = Logs.Src.create "pc.audit" ~doc:"runtime oracles"

module Log = (val Logs.src_log src : Logs.LOG)

type level = Off | Sampled | Full | Differential

let level_to_string = function
  | Off -> "off"
  | Sampled -> "sampled"
  | Full -> "full"
  | Differential -> "differential"

let level_of_string = function
  | "off" -> Ok Off
  | "sampled" -> Ok Sampled
  | "full" -> Ok Full
  | "differential" | "diff" -> Ok Differential
  | s ->
      Error
        (`Msg
           (Fmt.str "unknown audit level %S (expected off, sampled, full or \
                     differential)" s))

let level_of_string_exn s =
  match level_of_string s with
  | Ok l -> l
  | Error (`Msg m) -> invalid_arg ("Oracle.level_of_string_exn: " ^ m)

let pp_level ppf l = Fmt.string ppf (level_to_string l)

type violation = { oracle : string; seq : int; detail : string }

exception Violation of violation

let pp_violation ppf v =
  Fmt.pf ppf "[%s] event %d: %s" v.oracle v.seq v.detail

(* Shrinking a violating trace only makes sense for oracles whose
   verdict is a function of the event prefix: budget, live-space,
   structure and divergence all re-trip under replay of a sub-trace.
   The theory oracle judges the *final* heap of the complete adversary
   schedule — any sub-trace trivially "violates" it — and the PF
   potential audit depends on adversary-internal state a trace does
   not carry, so those ship unshrunk. *)
let shrinkable = function
  | "budget" | "live-bound" | "structure" | "divergence" -> true
  | _ -> false

type t = {
  heap : Heap.t;
  level : level;
  sample_every : int;
  c : float option;
  live_bound : int option;
  only : string option;
  shadow : Heap.t option;
  budget_on : bool; (* precomputed [enabled t "budget"] && c present *)
  live_on : bool; (* precomputed [enabled t "live-bound"] && bound present *)
  mutable seq : int; (* events seen so far *)
  mutable countdown : int; (* events until the next sampled sweep *)
  (* Cumulative accounting tracked incrementally from the event stream
     itself — independent of both Budget and the heap's own counters
     (the sampled sweep cross-checks the latter). *)
  mutable allocated : int;
  mutable moved : int;
  mutable live : int;
}

let seq t = t.seq
let level t = t.level
let enabled t name = match t.only with None -> true | Some o -> String.equal o name
let fail t ~oracle fmt =
  Fmt.kstr (fun detail -> raise (Violation { oracle; seq = t.seq; detail })) fmt

(* The c-partial rule, re-derived from the event stream with
   Budget.quota's exact rounding: at every instant
   moved <= floor(allocated / c). *)
let check_budget t =
  match t.c with
  | Some c when t.budget_on ->
      let quota = int_of_float (float_of_int t.allocated /. c) in
      if t.moved > quota then
        fail t ~oracle:"budget"
          "c-partial rule violated: moved %d > quota %d = floor(allocated %d \
           / c=%g)"
          t.moved quota t.allocated c
  | Some _ | None -> ()

let check_live t =
  match t.live_bound with
  | Some m when t.live_on ->
      if t.live > m then
        fail t ~oracle:"live-bound" "live-space bound violated: live %d > M=%d"
          t.live m
  | Some _ | None -> ()

(* The incremental counters must agree with the heap's own accounting
   whenever compared — a mismatch means the heap's counters and its
   event stream have drifted apart, which is a structural bug. *)
let check_counters t =
  if enabled t "structure" then begin
    let cmp what stream heap_total =
      if stream <> heap_total then
        fail t ~oracle:"structure"
          "event-stream %s=%d disagrees with heap accounting %s=%d" what
          stream what heap_total
    in
    cmp "allocated" t.allocated (Heap.allocated_total t.heap);
    cmp "moved" t.moved (Heap.moved_total t.heap);
    cmp "live" t.live (Heap.live_words t.heap)
  end

(* The heap's own O(live) consistency sweep, converted from [Failure]
   into a first-class violation. *)
let check_structure t heap =
  if enabled t "structure" then
    match Heap.check_invariants heap with
    | () -> ()
    | exception Failure msg -> fail t ~oracle:"structure" "%s" msg

(* --- the divergence watchdog ------------------------------------- *)

let opposite = function
  | Backend.Imperative -> Backend.Reference
  | Backend.Reference -> Backend.Imperative

let diverged t ~what ~primary ~shadow =
  fail t ~oracle:"divergence" "%s diverged: %s=%d, %s=%d" what
    (Backend.to_string (Heap.backend t.heap))
    primary
    (Backend.to_string (opposite (Heap.backend t.heap)))
    shadow

(* O(1)-ish aggregate comparison after every mirrored event. *)
let compare_aggregates t shadow =
  let cmp what f =
    let p = f t.heap and s = f shadow in
    if p <> s then diverged t ~what ~primary:p ~shadow:s
  in
  cmp "high_water" Heap.high_water;
  cmp "live_words" Heap.live_words;
  cmp "live_objects" Heap.live_objects;
  cmp "allocated_total" Heap.allocated_total;
  cmp "moved_total" Heap.moved_total;
  cmp "freed_total" Heap.freed_total

(* Deep (sampled) comparison: the free-space index views must agree on
   the frontier, gap population and the largest gap, and the occupied
   word count below the frontier must match. *)
let compare_deep t shadow =
  let pf = Heap.free_index t.heap and sf = Heap.free_index shadow in
  let cmp what f =
    let p = f pf and s = f sf in
    if p <> s then diverged t ~what ~primary:p ~shadow:s
  in
  cmp "free_index.frontier" Free_index.frontier;
  cmp "free_index.gap_count" Free_index.gap_count;
  cmp "free_index.free_below_frontier" Free_index.free_below_frontier;
  cmp "free_index.largest_gap" Free_index.largest_gap;
  let hw = Heap.high_water t.heap in
  let p = Heap.occupied_words_in t.heap ~start:0 ~stop:hw
  and s = Heap.occupied_words_in shadow ~start:0 ~stop:hw in
  if p <> s then diverged t ~what:"occupied_words_in[0,hw)" ~primary:p ~shadow:s

let apply_shadow t shadow event =
  let reject what msg =
    fail t ~oracle:"divergence" "shadow backend (%s) rejects %s: %s"
      (Backend.to_string (Heap.backend shadow))
      what msg
  in
  match event with
  | Heap.Alloc o -> (
      match Heap.alloc shadow ~addr:o.addr ~size:o.size with
      | oid ->
          if not (Oid.equal oid o.oid) then
            diverged t ~what:"alloc oid" ~primary:(Oid.to_int o.oid)
              ~shadow:(Oid.to_int oid)
      | exception Invalid_argument msg -> reject "alloc" msg)
  | Heap.Free o -> (
      match Heap.free shadow o.oid with
      | () -> ()
      | exception Invalid_argument msg -> reject "free" msg)
  | Heap.Move m -> (
      match Heap.move shadow m.oid ~dst:m.dst with
      | () -> ()
      | exception Invalid_argument msg -> reject "move" msg)

(* --- wiring ------------------------------------------------------- *)

let on_event t event =
  t.seq <- t.seq + 1;
  (* The budget rule can only newly trip when [moved] grows and the
     live bound when [live] grows, so each check runs exactly on the
     events able to violate it — the every-event cost is a couple of
     int updates, no heap reads. *)
  (match event with
  | Heap.Alloc o ->
      t.allocated <- t.allocated + o.size;
      t.live <- t.live + o.size;
      check_live t
  | Heap.Free o -> t.live <- t.live - o.size
  | Heap.Move m ->
      t.moved <- t.moved + m.size;
      check_budget t);
  (match t.shadow with
  | Some shadow when enabled t "divergence" ->
      apply_shadow t shadow event;
      compare_aggregates t shadow
  | Some _ | None -> ());
  match t.level with
  | Off -> ()
  | Full ->
      check_counters t;
      check_structure t t.heap
  | Sampled | Differential ->
      t.countdown <- t.countdown - 1;
      if t.countdown <= 0 then begin
        (* The sweep below visits every live object; spreading its cost
           over ~20x as many events keeps the amortized overhead to a
           few percent regardless of heap size. [sample_every = 1]
           means strictly every event. *)
        t.countdown <-
          (if t.sample_every = 1 then 1
           else max t.sample_every (20 * (1 + Heap.live_objects t.heap)));
        check_counters t;
        check_structure t t.heap;
        match t.shadow with
        | Some shadow when enabled t "divergence" ->
            check_structure t shadow;
            compare_deep t shadow
        | Some _ | None -> ()
      end

let attach ?(level = Sampled) ?(sample_every = 64) ?c ?live_bound ?only heap =
  if sample_every <= 0 then
    invalid_arg "Oracle.attach: sample_every must be > 0";
  (match c with
  | Some c when c <= 1.0 -> invalid_arg "Oracle.attach: need c > 1"
  | Some _ | None -> ());
  let shadow =
    match level with
    | Differential ->
        let backend = opposite (Heap.backend heap) in
        Log.debug (fun k ->
            k "differential watchdog: shadowing on the %a substrate" Backend.pp
              backend);
        Some (Heap.create ~backend ())
    | Off | Sampled | Full -> None
  in
  let enabled_at name =
    match only with None -> true | Some o -> String.equal o name
  in
  let t =
    {
      heap;
      level;
      sample_every;
      c;
      live_bound;
      only;
      shadow;
      budget_on = c <> None && enabled_at "budget";
      live_on = live_bound <> None && enabled_at "live-bound";
      seq = 0;
      countdown = sample_every;
      (* A heap attached mid-life starts from its current accounting. *)
      allocated = Heap.allocated_total heap;
      moved = Heap.moved_total heap;
      live = Heap.live_words heap;
    }
  in
  if level <> Off then Heap.on_event heap (on_event t);
  t

(* End-of-run checks: one last full sweep (catching drift the sampling
   window missed), a final deep shadow comparison, and — when the
   caller supplies the Theorem 1 prediction — the theory oracle:
   final HS/M must be at least h(c, n, M, optimal l) - eps. Meaningful
   floors (h > 1) are asserted; below that the theorem is vacuous. *)
(* [eps] tolerates the gap between the asymptotic Theorem 1 statement
   and finite simulation scales: the ablation table (A4) observes
   borderline managers up to ~0.02 below the floor at toy M. The
   default catches what a genuine bug produces (HS/M collapsing
   towards 1) without flagging finite-size noise; tests pin it
   tighter. *)
let finish ?theory_h ?(eps = 0.05) t =
  if t.level <> Off then begin
    check_budget t;
    check_live t;
    check_counters t;
    check_structure t t.heap;
    (match t.shadow with
    | Some shadow when enabled t "divergence" ->
        compare_aggregates t shadow;
        check_structure t shadow;
        compare_deep t shadow
    | Some _ | None -> ());
    match (theory_h, t.live_bound) with
    | Some h, Some m when enabled t "theory" && h > 1.0 ->
        let hs_over_m = float_of_int (Heap.high_water t.heap) /. float_of_int m in
        if hs_over_m +. eps < h then
          fail t ~oracle:"theory"
            "Theorem 1 violated: final HS/M = %.6f < h = %.6f (HS=%d, M=%d)"
            hs_over_m h (Heap.high_water t.heap) m
    | _ -> ()
  end
