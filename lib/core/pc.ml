(* The public facade: one module to open. Re-exports the substrate
   (heap model), the memory managers, the adversarial programs, and
   the closed-form bounds under stable names, plus a few convenience
   drivers for the common experiments. *)

(* Substrate *)
module Backend = Pc_heap.Backend
module Word = Pc_heap.Word
module Interval = Pc_heap.Interval
module Oid = Pc_heap.Oid
module Free_index = Pc_heap.Free_index
module Heap = Pc_heap.Heap
module Budget = Pc_heap.Budget
module Metrics = Pc_heap.Metrics
module Trace = Pc_heap.Trace
module Layout = Pc_heap.Layout

(* Memory managers *)
module Ctx = Pc_manager.Ctx
module Manager = Pc_manager.Manager
module Managers = Pc_manager.Registry

(* Adversaries and the interaction model *)
module Driver = Pc_adversary.Driver
module Program = Pc_adversary.Program
module Runner = Pc_adversary.Runner
module Robson_pr = Pc_adversary.Robson_pr
module Pf = Pc_adversary.Pf
module Pw = Pc_adversary.Pw
module Random_workload = Pc_adversary.Random_workload
module Sawtooth = Pc_adversary.Sawtooth
module Reduction = Pc_adversary.Reduction
module Script = Pc_adversary.Script

(* Self-auditing runs: runtime oracles, the backend-divergence
   watchdog, and trace-shrinking failure triage *)
module Audit = struct
  module Oracle = Pc_audit.Oracle
  module Shrink = Pc_audit.Shrink
  module Report = Pc_audit.Report
end

(* The sweep engine: deterministic job specs, a Domain worker pool,
   and the content-addressed result cache *)
module Exec = struct
  module Json = Pc_exec.Json
  module Spec = Pc_exec.Spec
  module Pool = Pc_exec.Pool
  module Cache = Pc_exec.Cache
  module Checkpoint = Pc_exec.Checkpoint
  module Faults = Pc_exec.Faults
  module Engine = Pc_exec.Engine
  module Lockfile = Pc_exec.Lockfile
end

(* The sweep daemon: wire framing + protocol, per-tenant state store,
   a self-restarting supervised worker pool, and the client half *)
module Serve = struct
  module Wire = Pc_serve.Wire
  module Protocol = Pc_serve.Protocol
  module Store = Pc_serve.Store
  module Supervisor = Pc_serve.Supervisor
  module Server = Pc_serve.Server
  module Client = Pc_serve.Client
end

(* Process-wide instruments: counters, gauges, log2 histograms and
   nestable spans behind a zero-cost-when-disabled sink, snapshotted
   into a stable schema for `pc report` *)
module Telemetry = struct
  module Sink = Pc_telemetry.Sink
  module Counter = Pc_telemetry.Counter
  module Gauge = Pc_telemetry.Gauge
  module Histogram = Pc_telemetry.Histogram
  module Span = Pc_telemetry.Span
  module Registry = Pc_telemetry.Registry
  module Snapshot = Pc_telemetry.Snapshot
  module Report = Pc_telemetry.Report
end

(* Closed-form bounds *)
module Bounds = struct
  module Robson = Pc_bounds.Robson
  module Bendersky_petrank = Pc_bounds.Bendersky_petrank
  module Cohen_petrank = Pc_bounds.Cohen_petrank
  module Theorem2 = Pc_bounds.Theorem2
  module Params = Pc_bounds.Params
end

(* Run the paper's adversary PF against a named manager and report the
   outcome next to the Theorem 1 prediction. *)
type pf_report = {
  outcome : Runner.outcome;
  config : Pf.config;
  theory_h : float; (* Theorem 1 waste factor at these parameters *)
}

let run_pf ?backend ?ell ?(audit = Pc_audit.Oracle.Off) ?failures_dir ~m ~n ~c
    ~manager () =
  let mgr = Managers.construct_exn manager in
  (* At Full the oracle layer also turns on PF's internal Claim 4.16
     potential audit. *)
  let pf_audit = audit = Pc_audit.Oracle.Full in
  let config, program = Pf.program ?ell ~audit:pf_audit ~m ~n ~c () in
  let outcome =
    Runner.run ?backend ~c ~audit ~theory_h:config.h ?failures_dir
      ~program ~manager:mgr ()
  in
  let theory_h = Pc_bounds.Cohen_petrank.waste_factor ~m ~n ~c in
  { outcome; config; theory_h }

(* Run Robson's adversary against a named (non-moving) manager and
   report the outcome next to Robson's matching bound. *)
type robson_report = {
  outcome : Runner.outcome;
  theory_waste : float; (* Robson's bound divided by M *)
}

let run_robson ?backend ?steps ~m ~n ~manager () =
  let mgr = Managers.construct_exn manager in
  let program = Robson_pr.program ?steps ~m ~n () in
  let outcome = Runner.run ?backend ~program ~manager:mgr () in
  { outcome; theory_waste = Pc_bounds.Robson.waste_factor_pow2 ~m ~n }
