(** Partial-compaction bounds and simulators — public facade.

    Reproduction of Cohen & Petrank, {e Limitations of Partial
    Compaction: Towards Practical Bounds}, PLDI 2013.

    Layers:
    - substrate: {!Heap}, {!Free_index} (each with an imperative and a
      reference backend, see {!Backend}), {!Budget}, {!Metrics},
      {!Trace}, {!Layout};
    - memory managers: {!Manager}, {!Managers} (registry of
      first/best/next/worst fit, buddy, segregated, aligned fit, and
      the c-partial compactors);
    - the interaction model and adversaries: {!Driver}, {!Program},
      {!Runner}, {!Robson_pr}, {!Pf}, {!Random_workload};
    - closed-form bounds: {!Bounds};
    - the parallel sweep engine with its result cache: {!Exec};
    - self-auditing runs: runtime oracles, the backend-divergence
      watchdog and trace-shrinking failure triage: {!Audit};
    - process-wide instruments behind a zero-cost-when-disabled sink:
      {!Telemetry}. *)

module Backend = Pc_heap.Backend
module Word = Pc_heap.Word
module Interval = Pc_heap.Interval
module Oid = Pc_heap.Oid
module Free_index = Pc_heap.Free_index
module Heap = Pc_heap.Heap
module Budget = Pc_heap.Budget
module Metrics = Pc_heap.Metrics
module Trace = Pc_heap.Trace
module Layout = Pc_heap.Layout
module Ctx = Pc_manager.Ctx
module Manager = Pc_manager.Manager
module Managers = Pc_manager.Registry
module Driver = Pc_adversary.Driver
module Program = Pc_adversary.Program
module Runner = Pc_adversary.Runner
module Robson_pr = Pc_adversary.Robson_pr
module Pf = Pc_adversary.Pf
module Pw = Pc_adversary.Pw
module Random_workload = Pc_adversary.Random_workload
module Sawtooth = Pc_adversary.Sawtooth
module Reduction = Pc_adversary.Reduction
module Script = Pc_adversary.Script

(** Self-auditing runs: composable runtime oracles ({!Audit.Oracle}),
    ddmin trace minimization ({!Audit.Shrink}) and replayable repro
    bundles with the shared exit-code taxonomy ({!Audit.Report}). *)
module Audit : sig
  module Oracle = Pc_audit.Oracle
  module Shrink = Pc_audit.Shrink
  module Report = Pc_audit.Report
end

(** The sweep engine: deterministic job specs, a [Domain] worker pool,
    and the content-addressed on-disk result cache. *)
module Exec : sig
  module Json = Pc_exec.Json
  module Spec = Pc_exec.Spec
  module Pool = Pc_exec.Pool
  module Cache = Pc_exec.Cache
  module Checkpoint = Pc_exec.Checkpoint
  module Faults = Pc_exec.Faults
  module Engine = Pc_exec.Engine
  module Lockfile = Pc_exec.Lockfile
end

(** The sweep daemon ([pc serve]) and its client half: length-prefixed
    wire framing, the versioned JSON protocol, the per-tenant state
    store, a self-restarting supervised worker pool, and the
    submit/wait/results client with backoff. *)
module Serve : sig
  module Wire = Pc_serve.Wire
  module Protocol = Pc_serve.Protocol
  module Store = Pc_serve.Store
  module Supervisor = Pc_serve.Supervisor
  module Server = Pc_serve.Server
  module Client = Pc_serve.Client
end

(** Low-overhead process-wide instruments — monotonic counters, gauges,
    log2 histograms, nestable timed spans — interned by name in
    {!Telemetry.Registry} and snapshotted into the stable
    [pc-telemetry/1] schema for [pc report]. Disabled (the default)
    every instrument is a load-and-branch no-op; levels only observe,
    so results are bit-identical across them. *)
module Telemetry : sig
  module Sink = Pc_telemetry.Sink
  module Counter = Pc_telemetry.Counter
  module Gauge = Pc_telemetry.Gauge
  module Histogram = Pc_telemetry.Histogram
  module Span = Pc_telemetry.Span
  module Registry = Pc_telemetry.Registry
  module Snapshot = Pc_telemetry.Snapshot
  module Report = Pc_telemetry.Report
end

module Bounds : sig
  module Robson = Pc_bounds.Robson
  module Bendersky_petrank = Pc_bounds.Bendersky_petrank
  module Cohen_petrank = Pc_bounds.Cohen_petrank
  module Theorem2 = Pc_bounds.Theorem2
  module Params = Pc_bounds.Params
end

type pf_report = {
  outcome : Runner.outcome;
  config : Pf.config;
  theory_h : float;  (** Theorem 1 waste factor at these parameters *)
}

val run_pf :
  ?backend:Pc_heap.Backend.t ->
  ?ell:int ->
  ?audit:Pc_audit.Oracle.level ->
  ?failures_dir:string ->
  m:int ->
  n:int ->
  c:float ->
  manager:string ->
  unit ->
  pf_report
(** Run the paper's adversary [P_F] against a manager from
    {!Managers}, under the c-partial budget. [audit] (default [Off])
    attaches the oracle layer including the Theorem 1 floor; at [Full]
    it also enables PF's internal Claim 4.16 potential audit. On a
    violation the run raises {!Audit.Report.Reported} with the repro
    bundle (written under [failures_dir]). *)

type robson_report = {
  outcome : Runner.outcome;
  theory_waste : float;  (** Robson's matching bound divided by [M] *)
}

val run_robson :
  ?backend:Pc_heap.Backend.t ->
  ?steps:int ->
  m:int ->
  n:int ->
  manager:string ->
  unit ->
  robson_report
(** Run Robson's adversary [P_R] against a manager from {!Managers},
    with no compaction budget. *)
