(* pc — command-line interface to the partial-compaction bounds and
   simulators.

     pc bounds   -m 256M -n 1M -c 50          closed-form bounds
     pc figure   1|2|3                        CSV series of a figure
     pc simulate --program pf --manager compacting -m 16K -n 64 -c 8
     pc diagram  -m 256 -n 16                 ASCII heap rendering
     pc managers                              list known managers
*)

open Pc_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                            *)

(* Sizes accept K/M/G suffixes: "256M" = 256 * 2^20 words. *)
let size_conv =
  let parse s =
    let len = String.length s in
    if len = 0 then Error (`Msg "empty size")
    else begin
      let mult, digits =
        match s.[len - 1] with
        | 'k' | 'K' -> (1 lsl 10, String.sub s 0 (len - 1))
        | 'm' | 'M' -> (1 lsl 20, String.sub s 0 (len - 1))
        | 'g' | 'G' -> (1 lsl 30, String.sub s 0 (len - 1))
        | _ -> (1, s)
      in
      match int_of_string_opt digits with
      | Some v when v > 0 -> Ok (v * mult)
      | Some _ | None -> Error (`Msg ("bad size: " ^ s))
    end
  in
  let print ppf v = Pc.Word.pp_count ppf v in
  Arg.conv (parse, print)

let m_arg =
  Arg.(
    value
    & opt size_conv (256 * Pc.Bounds.Params.mb)
    & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M (K/M/G suffixes).")

let n_arg =
  Arg.(
    value
    & opt size_conv Pc.Bounds.Params.mb
    & info [ "n" ] ~docv:"WORDS"
        ~doc:"Largest object size n, a power of two (K/M/G suffixes).")

let c_arg =
  Arg.(
    value & opt float 50.0
    & info [ "c" ] ~docv:"C" ~doc:"Compaction bound: at most 1/c of allocated words may be moved.")

let manager_arg =
  let keys = String.concat ", " (Pc.Managers.keys ()) in
  Arg.(
    value & opt string "compacting"
    & info [ "manager" ] ~docv:"NAME" ~doc:("Memory manager: " ^ keys ^ "."))

let backend_arg =
  let backend_conv = Arg.conv (Pc.Backend.of_string, Pc.Backend.pp) in
  Arg.(
    value
    & opt backend_conv (Pc.Backend.default ())
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Heap substrate: $(b,imperative) (the fast flat/radix default) or \
           $(b,reference) (the persistent oracle). Also settable via \
           $(b,PC_HEAP_BACKEND).")

let audit_arg =
  let level_conv =
    Arg.conv (Pc.Audit.Oracle.level_of_string, Pc.Audit.Oracle.pp_level)
  in
  Arg.(
    value
    & opt level_conv Pc.Audit.Oracle.Off
    & info [ "audit" ] ~docv:"LEVEL"
        ~doc:
          "Runtime oracle level: $(b,off), $(b,sampled) (budget and \
           live-space rules every event, the O(live) structural sweep one \
           event in --audit-every), $(b,full) (structural sweep every event \
           plus PF's Claim 4.16 potential audit), or $(b,differential) \
           (sampled, plus a shadow heap on the opposite substrate mirroring \
           every event — fails at the first diverging event). On a \
           violation the recorded trace is delta-debugged into a repro \
           bundle and the exit code is 3.")

let audit_every_arg =
  Arg.(
    value & opt int 64
    & info [ "audit-every" ] ~docv:"N"
        ~doc:"Structural-sweep sampling period for --audit sampled and \
              differential.")

let failures_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "failures-dir" ] ~docv:"DIR"
        ~doc:
          "Where repro bundles are written (default: $(b,PC_FAILURES_DIR) \
           or $(b,_pc_failures)).")

let telemetry_arg =
  let level_conv =
    Arg.conv (Pc.Telemetry.Sink.of_string, Pc.Telemetry.Sink.pp)
  in
  Arg.(
    value
    & opt level_conv Pc.Telemetry.Sink.Off
    & info [ "telemetry" ] ~docv:"LEVEL"
        ~doc:
          "Instrumentation level: $(b,off) (the default; the disabled \
           path is measurably free), $(b,summary) (counters, gauges and \
           timed spans), or $(b,full) (additionally per-event histograms: \
           allocation sizes, gap-scan work, the HS/M trajectory). \
           Telemetry only observes — results are bit-identical across \
           levels.")

let telemetry_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-out" ] ~docv:"FILE"
        ~doc:
          "Write the telemetry snapshot as JSON (schema \
           $(b,pc-telemetry/1)) to $(docv) — feed it to $(b,pc report). \
           Without this flag a non-off level renders the report on stdout \
           after the run.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the outcome as JSON on stdout instead of the human table. \
           The output is deterministic (no wall-clock fields), so it is \
           diffable across runs.")

(* Runs [f] at the requested telemetry level, then lands the snapshot:
   to [out] as schema-tagged JSON, or rendered on stdout. A violation
   escapes as an exception (exit code 3) without a snapshot — the repro
   bundle is the artefact that matters on that path. *)
let with_telemetry level out f =
  Pc.Telemetry.Registry.set_level level;
  let result = f () in
  (if level <> Pc.Telemetry.Sink.Off then
     let snap = Pc.Telemetry.Registry.snapshot () in
     match out with
     | Some path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () ->
             output_string oc
               (Pc.Exec.Json.to_string (Pc.Telemetry.Snapshot.to_json snap));
             output_char oc '\n');
         Fmt.epr "telemetry snapshot written to %s@." path
     | None -> Fmt.pr "@.%a@." (fun ppf -> Pc.Telemetry.Report.pp ppf) snap);
  result

(* The exit-code taxonomy shared with bench (documented in every
   subcommand's --help; CI keys off code 3). *)
let exits =
  [
    Cmd.Exit.info Pc.Audit.Report.exit_ok ~doc:"on success.";
    Cmd.Exit.info Pc.Audit.Report.exit_usage
      ~doc:
        "on usage errors: unparseable command lines, unknown programs, \
         managers or audit levels, invalid parameters, unreadable repro \
         bundles.";
    Cmd.Exit.info Pc.Audit.Report.exit_violation
      ~doc:
        "on an oracle violation (c-partial budget, live-space bound, \
         structural invariant, backend divergence, theory floor, PF \
         potential): a repro bundle has been emitted, its path printed. \
         $(b,pc replay) exits with this code when the bundle's violation \
         reproduces.";
    Cmd.Exit.info Pc.Audit.Report.exit_internal
      ~doc:"on internal errors (unexpected exceptions).";
  ]

(* ------------------------------------------------------------------ *)
(* pc bounds                                                          *)

let bounds_cmd =
  let run m n c =
    let mf = float_of_int m in
    Fmt.pr "parameters: M=%a n=%a c=%g@." Pc.Word.pp_count m Pc.Word.pp_count
      n c;
    Fmt.pr "@.lower bounds (no manager can beat these):@.";
    Fmt.pr "  Robson (no compaction)      HS >= %.3f x M@."
      (Pc.Bounds.Robson.waste_factor_pow2 ~m ~n);
    (match Pc.Bounds.Cohen_petrank.best ~m ~n ~c with
    | Some { ell; h } ->
        Fmt.pr "  Theorem 1 (this paper)      HS >= %.3f x M   (l*=%d)@."
          (Float.max h 1.0) ell
    | None ->
        Fmt.pr "  Theorem 1 (this paper)      HS >= 1.000 x M   (no valid l)@.");
    Fmt.pr "  Bendersky-Petrank [4]       HS >= %.3f x M@."
      (Pc.Bounds.Bendersky_petrank.waste_factor ~m ~n ~c);
    Fmt.pr "@.upper bounds (achievable by some manager):@.";
    Fmt.pr "  Bendersky-Petrank (c+1)M    HS <= %.3f x M@."
      (Pc.Bounds.Bendersky_petrank.upper_bound ~m ~c /. mf);
    Fmt.pr "  Robson x2 (no compaction)   HS <= %.3f x M@."
      (Pc.Bounds.Robson.upper_bound_general ~m ~n /. mf);
    if Pc.Bounds.Theorem2.applicable ~n ~c then
      Fmt.pr "  Theorem 2 (this paper)      HS <= %.3f x M@."
        (Pc.Bounds.Theorem2.waste_factor ~m ~n ~c)
  in
  Cmd.v
    (Cmd.info "bounds" ~exits ~doc:"Print the closed-form bounds for M, n, c.")
    Term.(const run $ m_arg $ n_arg $ c_arg)

(* ------------------------------------------------------------------ *)
(* pc figure                                                          *)

let figure_cmd =
  let run which =
    match which with
    | 1 ->
        Fmt.pr "c,cohen_petrank,bendersky_petrank,trivial@.";
        List.iter
          (fun c ->
            let { Pc.Bounds.Params.m; n; _ } = Pc.Bounds.Params.fig1 ~c in
            Fmt.pr "%g,%.4f,%.4f,1.0@." c
              (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c)
              (Pc.Bounds.Bendersky_petrank.waste_factor ~m ~n ~c))
          Pc.Bounds.Params.fig1_cs
    | 2 ->
        Fmt.pr "n,cohen_petrank@.";
        List.iter
          (fun n ->
            let { Pc.Bounds.Params.m; n; c } = Pc.Bounds.Params.fig2 ~n in
            Fmt.pr "%d,%.4f@." n (Pc.Bounds.Cohen_petrank.waste_factor ~m ~n ~c))
          Pc.Bounds.Params.fig2_ns
    | 3 ->
        Fmt.pr "c,theorem2,prior_best@.";
        List.iter
          (fun c ->
            let { Pc.Bounds.Params.m; n; _ } = Pc.Bounds.Params.fig3 ~c in
            if Pc.Bounds.Theorem2.applicable ~n ~c then
              Fmt.pr "%g,%.4f,%.4f@." c
                (Pc.Bounds.Theorem2.waste_factor ~m ~n ~c)
                (Pc.Bounds.Theorem2.prior_best ~m ~n ~c /. float_of_int m))
          Pc.Bounds.Params.fig3_cs
    | k -> Fmt.epr "unknown figure %d (expected 1, 2 or 3)@." k
  in
  let which =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"FIGURE")
  in
  Cmd.v
    (Cmd.info "figure" ~exits
       ~doc:"Print a paper figure's series as CSV (figures 1, 2, 3).")
    Term.(const run $ which)

(* ------------------------------------------------------------------ *)
(* pc simulate                                                        *)

let simulate_cmd =
  let run program manager m n c seed backend audit audit_every broken_budget
      failures_dir telemetry telemetry_out json =
    Pc.Backend.set_default backend;
    let mgr = Pc.Managers.construct_exn manager in
    let emit o =
      if json then
        Fmt.pr "%s@." (Pc.Exec.Json.to_string (Pc.Exec.Cache.outcome_to_json o))
      else Fmt.pr "%a@." Pc.Runner.pp_outcome o
    in
    (* --broken-budget models a manager whose compaction-budget debit
       is broken: the enforced budget is lifted while the oracle keeps
       auditing the declared c — the audit drill in CI. *)
    let budgeted ?theory_h prog =
      if broken_budget then
        Pc.Runner.run ~audit_c:c ~audit ~audit_every ?theory_h ?failures_dir
          ~program:prog ~manager:mgr ()
      else
        Pc.Runner.run ~c ~audit ~audit_every ?theory_h ?failures_dir
          ~program:prog ~manager:mgr ()
    in
    let unbudgeted prog =
      Pc.Runner.run ~audit ~audit_every ?failures_dir ~program:prog
        ~manager:mgr ()
    in
    with_telemetry telemetry telemetry_out @@ fun () ->
    match program with
    | "pf" ->
        let pf_audit = audit = Pc.Audit.Oracle.Full in
        let cfg, prog = Pc.Pf.program ~audit:pf_audit ~m ~n ~c () in
        let o = budgeted ~theory_h:cfg.h prog in
        emit o;
        if not json then
          Fmt.pr "theory: h=%.3f (l=%d) => HS/M should reach %.3f at scale@."
            cfg.h cfg.ell (Float.max cfg.h 1.0)
    | "robson" ->
        let prog = Pc.Robson_pr.program ~m ~n () in
        let o = unbudgeted prog in
        emit o;
        if not json then
          Fmt.pr "theory (non-moving managers): HS/M >= %.3f@."
            (Pc.Bounds.Robson.waste_factor_pow2 ~m ~n)
    | "random" ->
        let prog =
          Pc.Random_workload.program ~seed ~m
            ~dist:(Pc.Random_workload.Pow2 { lo_log = 0; hi_log = Pc.Word.log2_floor n })
            ~target_live:(m / 2) ()
        in
        emit (budgeted prog)
    | "pw" ->
        let prog = Pc.Pw.program ~m ~n () in
        emit (budgeted prog)
    | "sawtooth" ->
        let prog = Pc.Sawtooth.program ~m ~n () in
        emit (budgeted prog)
    | p when String.length p > 7 && String.sub p 0 7 = "script:" ->
        (* e.g. --program "script:a x 16; a y 8; f x; a z 4" *)
        let text = String.sub p 7 (String.length p - 7) in
        let prog = Pc.Script.program (Pc.Script.parse text) in
        emit (unbudgeted prog)
    | p ->
        Fmt.invalid_arg
          "unknown program %s (expected pf, robson, pw, sawtooth, random, \
           script:...)"
          p
  in
  let program_arg =
    Arg.(
      value & opt string "pf"
      & info [ "program" ] ~docv:"NAME"
          ~doc:
            "Workload: pf, robson, pw, sawtooth, random, or \
             'script:a x 16; f x; ...'.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let m_small =
    Arg.(
      value & opt size_conv (1 lsl 14)
      & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M.")
  in
  let n_small =
    Arg.(
      value & opt size_conv (1 lsl 6)
      & info [ "n" ] ~docv:"WORDS" ~doc:"Largest object size n (power of two).")
  in
  let c_small =
    Arg.(value & opt float 8.0 & info [ "c" ] ~docv:"C" ~doc:"Compaction bound.")
  in
  let broken_budget_arg =
    Arg.(
      value & flag
      & info [ "broken-budget" ]
          ~doc:
            "Audit drill: run with the enforced compaction budget lifted \
             while the oracle still audits the declared $(b,c) — models a \
             manager whose budget debit is broken. With --audit on, the \
             first over-budget move trips the budget oracle, emits a \
             minimized repro bundle and exits with code 3.")
  in
  Cmd.v
    (Cmd.info "simulate" ~exits
       ~doc:"Run an adversary or random workload against a manager.")
    Term.(
      const run $ program_arg $ manager_arg $ m_small $ n_small $ c_small
      $ seed_arg $ backend_arg $ audit_arg $ audit_every_arg
      $ broken_budget_arg $ failures_dir_arg $ telemetry_arg
      $ telemetry_out_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* pc diagram                                                         *)

let diagram_cmd =
  let run m n manager =
    let mgr = Pc.Managers.construct_exn manager in
    let program = Pc.Robson_pr.program ~m ~n () in
    let ctx = Pc.Ctx.create ~live_bound:m () in
    let driver = Pc.Driver.create ctx mgr in
    Pc.Program.run program driver;
    let heap = Pc.Ctx.heap ctx in
    Fmt.pr "Robson's P_R vs %s (M=%d, n=%d): HS/M=%.3f@." manager m n
      (float_of_int (Pc.Heap.high_water heap) /. float_of_int m);
    Fmt.pr "%s@."
      (Pc.Layout.render
         ~config:
           {
             Pc.Layout.words_per_cell = max 1 (Pc.Heap.high_water heap / 4096);
             cells_per_row = 64;
             chunk_words = Some n;
           }
         heap)
  in
  let m_small =
    Arg.(
      value & opt size_conv 256
      & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M.")
  in
  let n_small =
    Arg.(
      value & opt size_conv 16
      & info [ "n" ] ~docv:"WORDS" ~doc:"Largest object size n (power of two).")
  in
  Cmd.v
    (Cmd.info "diagram" ~exits
       ~doc:"Render the heap Robson's adversary leaves behind, as ASCII.")
    Term.(const run $ m_small $ n_small $ manager_arg)

(* ------------------------------------------------------------------ *)
(* pc trace                                                           *)

let trace_cmd =
  let run program manager m n c stats_only =
    let mgr = Pc.Managers.construct_exn manager in
    let prog =
      match program with
      | "pf" -> snd (Pc.Pf.program ~m ~n ~c ())
      | "robson" -> Pc.Robson_pr.program ~m ~n ()
      | "pw" -> Pc.Pw.program ~m ~n ()
      | "random" ->
          Pc.Random_workload.program ~m
            ~dist:
              (Pc.Random_workload.Pow2
                 { lo_log = 0; hi_log = Pc.Word.log2_floor n })
            ~target_live:(m / 2) ()
      | p -> Fmt.invalid_arg "unknown program %s" p
    in
    let ctx = Pc.Ctx.create ~budget:(Pc.Budget.create ~c) ~live_bound:m () in
    let trace = Pc.Trace.create () in
    Pc.Trace.record trace (Pc.Ctx.heap ctx);
    let driver = Pc.Driver.create ctx mgr in
    Pc.Program.run prog driver;
    if stats_only then Fmt.pr "%a@." Pc.Trace.pp_stats (Pc.Trace.stats trace)
    else print_string (Pc.Trace.to_string trace)
  in
  let program_arg =
    Arg.(
      value & opt string "robson"
      & info [ "program" ] ~docv:"NAME"
          ~doc:"Workload: pf, robson, pw or random.")
  in
  let m_small =
    Arg.(
      value & opt size_conv (1 lsl 10)
      & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M.")
  in
  let n_small =
    Arg.(
      value & opt size_conv (1 lsl 5)
      & info [ "n" ] ~docv:"WORDS" ~doc:"Largest object size n (power of two).")
  in
  let c_small =
    Arg.(value & opt float 8.0 & info [ "c" ] ~docv:"C" ~doc:"Compaction bound.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print aggregate statistics instead of events.")
  in
  Cmd.v
    (Cmd.info "trace" ~exits
       ~doc:
         "Dump a replayable heap event trace (or its statistics) of a \
          workload against a manager.")
    Term.(
      const run $ program_arg $ manager_arg $ m_small $ n_small $ c_small
      $ stats_arg)

(* ------------------------------------------------------------------ *)
(* pc sweep                                                           *)

let sweep_cmd =
  let run manager m n cs jobs no_cache cache_dir resume retries timeout
      inject_faults audit failures_dir telemetry telemetry_out json =
    (* Each (c, manager) point is a deterministic job spec: points run
       on the engine's Domain pool, completed points are served from
       the on-disk result cache on re-runs, and every outcome is
       journaled as it lands so a killed sweep resumes with --resume. *)
    let module Spec = Pc.Exec.Spec in
    let module Engine = Pc.Exec.Engine in
    let module Checkpoint = Pc.Exec.Checkpoint in
    let faults =
      match inject_faults with
      | None -> None
      | Some spec -> (
          match Pc.Exec.Faults.of_string spec with
          | Ok f -> Some f
          | Error msg ->
              Fmt.epr "bad --inject-faults spec: %s@." msg;
              exit 2)
    in
    let cache =
      if no_cache then None else Some (Pc.Exec.Cache.create ?dir:cache_dir ())
    in
    let specs = List.map (fun c -> Spec.pf ~c ~manager ~m ~n ()) cs in
    (* --no-cache means "leave no trace and read no prior state": it
       skips the checkpoint journal along with the result cache, so a
       golden-test or one-shot run touches no shared on-disk state. *)
    let lock, checkpoint =
      if no_cache then (None, None)
      else begin
        let journal_dir =
          Checkpoint.default_dir
            ~cache_dir:
              (match cache_dir with
              | Some d -> d
              | None -> Pc.Exec.Cache.default_dir ())
        in
        (* One writer per journal: a second `pc sweep` (or a daemon
           replaying the same sweep) on this state fails fast instead
           of interleaving journal appends. *)
        let lock =
          Pc.Exec.Lockfile.acquire
            (Checkpoint.path ~dir:journal_dir specs ^ ".lock")
        in
        let cp = Checkpoint.open_ ~resume ~dir:journal_dir specs in
        if resume && Checkpoint.loaded cp > 0 then
          Fmt.pr "resuming: %d of %d outcome(s) journaled in %s@."
            (Checkpoint.loaded cp) (List.length specs) (Checkpoint.path_of cp);
        (Some lock, Some cp)
      end
    in
    let results, summary =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Checkpoint.close checkpoint;
          Option.iter Pc.Exec.Lockfile.release lock)
        (fun () ->
          with_telemetry telemetry telemetry_out @@ fun () ->
          Engine.run ~jobs ?cache ?checkpoint ~retries ?timeout ?faults ~audit
            ?failures_dir specs)
    in
    let source (r : Engine.job_result) =
      if r.from_cache then "cache"
      else if r.from_journal then "journal"
      else "run"
    in
    if json then begin
      let module Json = Pc.Exec.Json in
      let points =
        List.map2
          (fun c (r : Engine.job_result) ->
            let cfg = Pc.Pf.config ~m ~n ~c () in
            let base =
              [
                ("c", Json.Float c);
                ("ell", Json.Int cfg.ell);
                ("theory_h", Json.Float (Float.max cfg.h 1.0));
              ]
            in
            match r.result with
            | Error msg -> Json.Obj (base @ [ ("error", Json.String msg) ])
            | Ok o ->
                Json.Obj
                  (base
                  @ [
                      ("outcome", Pc.Exec.Cache.outcome_to_json o);
                      ("source", Json.String (source r));
                    ]))
          cs results
      in
      (* No wall-clock field: the JSON form is diffable across runs. *)
      let summary_json =
        Json.Obj
          [
            ("total", Json.Int summary.total);
            ("executed", Json.Int summary.executed);
            ("cached", Json.Int summary.cached);
            ("resumed", Json.Int summary.resumed);
            ("recovered", Json.Int summary.recovered);
            ("retried", Json.Int summary.retried);
            ("failed", Json.Int summary.failed);
            ("violations", Json.Int summary.violations);
          ]
      in
      Fmt.pr "%s@."
        (Json.to_string
           (Json.Obj [ ("points", Json.List points); ("summary", summary_json) ]))
    end
    else begin
      Fmt.pr "%6s %4s %10s %10s %8s %10s %7s@." "c" "l" "theory h" "HS/M"
        "moved" "compliant" "source";
      List.iter2
        (fun c (r : Engine.job_result) ->
          match r.result with
          | Error msg -> Fmt.epr "c=%g: %s@." c msg
          | Ok o ->
              let cfg = Pc.Pf.config ~m ~n ~c () in
              Fmt.pr "%6g %4d %10.3f %10.3f %8d %10b %7s@." c cfg.ell
                (Float.max cfg.h 1.0) o.hs_over_m o.moved o.compliant (source r))
        cs results;
      Fmt.pr "%a@." Engine.pp_summary summary
    end;
    if summary.violations > 0 then exit Pc.Audit.Report.exit_violation;
    if faults <> None && summary.failed > 0 then exit 1
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Execute sweep points on $(docv) parallel worker domains.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Always execute; neither read nor write the result cache, and \
             skip the checkpoint journal — the sweep touches no on-disk \
             state.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Result cache directory (default: $(b,PC_CACHE_DIR) or \
             $(b,_pc_cache)).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay outcomes journaled by a previous (possibly killed) run \
             of the same sweep from $(b,<cache-dir>/sweeps/), re-executing \
             only the missing points. Without this flag the journal is \
             truncated and the sweep starts clean.")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a job up to $(docv) times after a transient failure \
             (worker crash, timeout), with exponential backoff and seeded \
             jitter. Deterministic failures are never retried past one \
             reproduction probe.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt wall-clock budget; an attempt exceeding it counts \
             as a transient failure and is retried.")
  in
  let inject_faults_arg =
    Arg.(
      value & opt (some string) None
      & info [ "inject-faults" ] ~docv:"SPEC"
          ~doc:
            "Chaos mode: inject seeded faults at job and cache boundaries, \
             e.g. $(b,crash=0.3,delay=0.15,trunc=0.2,corrupt=0.2,seed=7). \
             Exits nonzero if any point is left unrecovered.")
  in
  let m_small =
    Arg.(
      value & opt size_conv (1 lsl 14)
      & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M.")
  in
  let n_small =
    Arg.(
      value & opt size_conv (1 lsl 7)
      & info [ "n" ] ~docv:"WORDS" ~doc:"Largest object size n (power of two).")
  in
  let cs_arg =
    Arg.(
      value
      & opt (list float) [ 8.0; 16.0; 32.0; 64.0 ]
      & info [ "cs" ] ~docv:"C,C,..." ~doc:"Compaction bounds to sweep.")
  in
  Cmd.v
    (Cmd.info "sweep" ~exits
       ~doc:
         "Sweep PF over compaction bounds against one manager (Table S1), \
          in parallel, with result caching, checkpoint/resume and optional \
          fault injection.")
    Term.(
      const run $ manager_arg $ m_small $ n_small $ cs_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg $ resume_arg $ retries_arg $ timeout_arg
      $ inject_faults_arg $ audit_arg $ failures_dir_arg $ telemetry_arg
      $ telemetry_out_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* pc replay                                                          *)

let replay_cmd =
  let run bundle backend =
    match Pc.Audit.Report.replay ?backend bundle with
    | Error msg ->
        Fmt.epr "cannot replay %s: %s@." bundle msg;
        exit Pc.Audit.Report.exit_usage
    | Ok (Some v) ->
        Fmt.pr "%a@." Pc.Audit.Oracle.pp_violation v;
        Fmt.pr "violation reproduced from %s@." bundle;
        exit Pc.Audit.Report.exit_violation
    | Ok None -> Fmt.pr "violation did not reproduce from %s@." bundle
  in
  let bundle_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE"
          ~doc:
            "A repro-bundle directory emitted on an oracle violation \
             (e.g. $(b,_pc_failures/budget-0123456789ab)).")
  in
  let backend_opt =
    let backend_conv = Arg.conv (Pc.Backend.of_string, Pc.Backend.pp) in
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Override the heap substrate recorded in the bundle — replay a \
             failure captured on $(b,imperative) against $(b,reference) to \
             tell substrate bugs from genuine manager misbehaviour.")
  in
  Cmd.v
    (Cmd.info "replay" ~exits
       ~doc:
         "Replay a repro bundle's minimized trace against its recorded \
          oracle; exits with code 3 if the violation reproduces, 0 if it no \
          longer trips.")
    Term.(const run $ bundle_arg $ backend_opt)

(* ------------------------------------------------------------------ *)
(* pc report                                                          *)

let report_cmd =
  let run file top csv =
    let text =
      match In_channel.with_open_bin file In_channel.input_all with
      | text -> text
      | exception Sys_error msg ->
          Fmt.epr "pc report: %s@." msg;
          exit Pc.Audit.Report.exit_usage
    in
    let parsed =
      match Pc.Exec.Json.of_string text with
      | j -> Pc.Telemetry.Snapshot.of_json j
      | exception Pc.Exec.Json.Parse_error msg -> Error ("bad JSON: " ^ msg)
    in
    match parsed with
    | Error msg ->
        Fmt.epr "pc report: %s: %s@." file msg;
        exit Pc.Audit.Report.exit_usage
    | Ok snap ->
        if csv then print_string (Pc.Telemetry.Snapshot.to_csv snap)
        else Fmt.pr "%a@." (fun ppf -> Pc.Telemetry.Report.pp ~top ppf) snap
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SNAPSHOT"
          ~doc:
            "A telemetry snapshot (schema $(b,pc-telemetry/1)) written by \
             $(b,--telemetry-out) or the bench harness.")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Show the $(docv) hottest per-job spans (default 5).")
  in
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ]
          ~doc:
            "Emit the snapshot as one wide CSV table (one row per \
             instrument) instead of the rendered report.")
  in
  Cmd.v
    (Cmd.info "report" ~exits
       ~doc:
         "Render a telemetry snapshot: per-phase span breakdown, the \
          hottest sweep jobs, counters, gauges and histograms.")
    Term.(const run $ file_arg $ top_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* pc serve / submit / health / drain / load                          *)

let faults_of_opt = function
  | None -> None
  | Some spec -> (
      match Pc.Exec.Faults.of_string spec with
      | Ok f -> Some f
      | Error msg ->
          Fmt.epr "bad --inject-faults spec: %s@." msg;
          exit Pc.Audit.Report.exit_usage)

let default_state_dir = "_pc_serve"
let default_socket state_dir = Filename.concat state_dir "pc.sock"

let state_dir_arg =
  Arg.(
    value & opt string default_state_dir
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "The daemon's state directory: per-tenant result caches, \
           checkpoint journals and submission manifests live under \
           $(docv)/tenants/, guarded by $(docv)/serve.lock.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on (default: \
           $(b,<state-dir>/pc.sock)).")

let client_socket_arg =
  Arg.(
    value
    & opt string (default_socket default_state_dir)
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"The daemon's Unix-domain socket.")

let tenant_arg =
  Arg.(
    value & opt string "default"
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:
          "Tenant to submit as; each tenant gets its own result cache, \
           journals and quota under the daemon's state dir.")

(* Client commands exit with the usage code when the daemon is not
   there to talk to — a wrong --socket is a command-line problem. *)
let with_client socket f =
  match Pc.Serve.Client.with_conn socket f with
  | v -> v
  | exception Unix.Unix_error ((ECONNREFUSED | ENOENT) as e, _, _) ->
      Fmt.epr "pc: cannot connect to %s: %s (is `pc serve` running?)@." socket
        (Unix.error_message e);
      exit Pc.Audit.Report.exit_usage

let serve_cmd =
  let run socket state_dir workers queue_cap tenant_cap inject_faults
      telemetry telemetry_out =
    let socket =
      match socket with Some s -> s | None -> default_socket state_dir
    in
    let faults = faults_of_opt inject_faults in
    let cfg =
      Pc.Serve.Server.config ~workers ~queue_cap ~tenant_cap ?faults ~socket
        ~state_dir ()
    in
    with_telemetry telemetry telemetry_out @@ fun () ->
    let t = Pc.Serve.Server.start cfg in
    (* The handler only flips an atomic; the accept loop's next tick
       starts the actual drain outside signal context. *)
    let graceful =
      Sys.Signal_handle (fun _ -> Pc.Serve.Server.request_drain t)
    in
    Sys.set_signal Sys.sigterm graceful;
    Sys.set_signal Sys.sigint graceful;
    Fmt.pr "pc serve: listening on %s (state %s, %d worker(s))@." socket
      state_dir workers;
    match Pc.Serve.Server.wait t with
    | Pc.Serve.Server.Drained -> Fmt.pr "pc serve: drained cleanly@."
    | Pc.Serve.Server.Killed why ->
        Fmt.epr "pc serve: killed: %s@." why;
        exit Pc.Audit.Report.exit_internal
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:"Worker domains executing jobs (each restarts on death).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission bound on unfinished jobs across all tenants; \
             beyond it submissions get $(b,retry-after) backpressure.")
  in
  let tenant_cap_arg =
    Arg.(
      value & opt int 128
      & info [ "tenant-cap" ] ~docv:"N"
          ~doc:"The same bound per tenant (quota isolation).")
  in
  let inject_faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-faults" ] ~docv:"SPEC"
          ~doc:
            "Chaos mode shared by all workers, e.g. \
             $(b,wkill=0.3,seed=7) to SIGKILL workers mid-job (the \
             supervisor restarts them) or $(b,kill-after=20) to kill \
             the whole daemon after 20 jobs (restart recovers).")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the sweep daemon: accept job submissions from many clients \
          over a Unix-domain socket, execute them on a supervised \
          (self-restarting) worker pool with per-tenant caches, journals \
          and quotas, survive kills via checkpoint replay, and drain \
          gracefully on SIGTERM or $(b,pc drain).")
    Term.(
      const run $ socket_arg $ state_dir_arg $ workers_arg $ queue_cap_arg
      $ tenant_cap_arg $ inject_faults_arg $ telemetry_arg $ telemetry_out_arg)

let submit_cmd =
  let run socket tenant manager m n cs retries timeout local json =
    let module Spec = Pc.Exec.Spec in
    let specs = List.map (fun c -> Spec.pf ~c ~manager ~m ~n ()) cs in
    let with_server k =
      if not local then begin
        (* Fail fast (usage code) when there is no daemon at all; once
           one was there, submit_and_wait rides out restarts. *)
        (match Pc.Serve.Client.connect socket with
        | conn ->
            Pc.Serve.Client.close conn;
            ()
        | exception Unix.Unix_error ((ECONNREFUSED | ENOENT) as e, _, _) ->
            Fmt.epr "pc: cannot connect to %s: %s (is `pc serve` running?)@."
              socket (Unix.error_message e);
            exit Pc.Audit.Report.exit_usage);
        k socket
      end
      else begin
        (* --local: an ephemeral in-process daemon on a fresh temp
           state dir — nothing cached, nothing resumed, so the JSON
           output is deterministic (the golden test relies on it). *)
        let dir = Filename.temp_dir "pc-serve-local" "" in
        let socket = Filename.concat dir "pc.sock" in
        let cfg =
          Pc.Serve.Server.config ~workers:2 ~socket
            ~state_dir:(Filename.concat dir "state") ()
        in
        let t = Pc.Serve.Server.start cfg in
        Fun.protect
          ~finally:(fun () ->
            Pc.Serve.Server.drain t;
            ignore (Pc.Serve.Server.wait t))
          (fun () -> k socket)
      end
    in
    with_server @@ fun socket ->
    let r =
      Pc.Serve.Client.submit_and_wait ~socket ~tenant ~retries ?timeout specs
    in
    let id, total, known = (r.Pc.Serve.Client.id, r.total, r.known) in
    let state, progress = (r.state, r.progress) in
    let results = r.outcomes in
    let violations =
      List.filter
        (fun (_, r) ->
          match r with
          | Error msg ->
              String.length msg >= 16
              && String.sub msg 0 16 = "oracle violation"
          | Ok _ -> false)
        results
    in
    if json then begin
      let module Json = Pc.Exec.Json in
      let jresults =
        List.map
          (fun (key, r) ->
            Json.Obj
              (("key", Json.String key)
              ::
              (match r with
              | Ok o -> [ ("outcome", Pc.Exec.Cache.outcome_to_json o) ]
              | Error msg -> [ ("error", Json.String msg) ])))
          results
      in
      Fmt.pr "%s@."
        (Json.to_string
           (Json.Obj
              [
                ("id", Json.String id);
                ("tenant", Json.String tenant);
                ("state", Json.String state);
                ("total", Json.Int total);
                ("failed", Json.Int progress.Pc.Serve.Protocol.failed);
                ("results", Json.List jresults);
              ]))
    end
    else begin
      Fmt.pr "submission %s (%s): %s, %d job(s), %d failed%s@." id tenant
        state total progress.Pc.Serve.Protocol.failed
        (if known then " [deduplicated]" else "");
      List.iter
        (fun (key, r) ->
          match r with
          | Ok (o : Pc.Runner.outcome) ->
              Fmt.pr "  %-48s HS/M=%.3f compliant=%b@." key o.hs_over_m
                o.compliant
          | Error msg -> Fmt.pr "  %-48s FAILED: %s@." key msg)
        results
    end;
    if violations <> [] then exit Pc.Audit.Report.exit_violation
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Per-job transient-failure retry budget on the server.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt wall-clock budget on the server.")
  in
  let local_arg =
    Arg.(
      value & flag
      & info [ "local" ]
          ~doc:
            "Spin up an ephemeral in-process daemon on a fresh temp state \
             dir, submit to it, and drain it afterwards — no running \
             $(b,pc serve) needed. Output is deterministic (everything \
             executes, nothing is cached), so it is diffable.")
  in
  let m_small =
    Arg.(
      value & opt size_conv (1 lsl 12)
      & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M.")
  in
  let n_small =
    Arg.(
      value & opt size_conv (1 lsl 6)
      & info [ "n" ] ~docv:"WORDS" ~doc:"Largest object size n (power of two).")
  in
  let cs_arg =
    Arg.(
      value
      & opt (list float) [ 8.0; 16.0 ]
      & info [ "cs" ] ~docv:"C,C,..." ~doc:"Compaction bounds to submit.")
  in
  Cmd.v
    (Cmd.info "submit" ~exits
       ~doc:
         "Submit a PF sweep to a running $(b,pc serve) daemon (with \
          exponential backoff under backpressure), wait for completion, \
          and print the journaled results. Exits 3 if any job died on an \
          oracle violation.")
    Term.(
      const run $ client_socket_arg $ tenant_arg $ manager_arg $ m_small
      $ n_small $ cs_arg $ retries_arg $ timeout_arg $ local_arg $ json_arg)

let health_cmd =
  let run socket json =
    let h = with_client socket Pc.Serve.Client.health in
    if json then begin
      let module Json = Pc.Exec.Json in
      Fmt.pr "%s@."
        (Json.to_string
           (Json.Obj
              [
                ("pending", Json.Int h.Pc.Serve.Protocol.pending);
                ("in_flight", Json.Int h.in_flight);
                ("workers", Json.Int h.workers);
                ("restarts", Json.Int h.restarts);
                ("tenants", Json.Int h.tenants);
                ("submissions", Json.Int h.submissions);
                ("jobs_done", Json.Int h.jobs_done);
                ("cache_hits", Json.Int h.cache_hits);
                ("executed", Json.Int h.executed);
                ("draining", Json.Bool h.draining);
              ]))
    end
    else
      Fmt.pr
        "queue: %d pending, %d in flight on %d worker(s) (%d restart(s))@.\
         work:  %d submission(s) over %d tenant(s); %d job(s) done (%d \
         executed, %d cache hits)@.state: %s@."
        h.Pc.Serve.Protocol.pending h.in_flight h.workers h.restarts
        h.submissions h.tenants h.jobs_done h.executed h.cache_hits
        (if h.draining then "draining" else "serving")
  in
  Cmd.v
    (Cmd.info "health" ~exits
       ~doc:
         "Query a running daemon's health: queue depth, in-flight jobs, \
          worker restarts, per-tenant activity, drain state.")
    Term.(const run $ client_socket_arg $ json_arg)

let drain_cmd =
  let run socket wait =
    with_client socket Pc.Serve.Client.drain;
    Fmt.pr "drain requested: the daemon finishes queued work, then exits@.";
    if wait then begin
      (* The daemon unlinks its socket as the last act of a drain;
         poll until connecting fails. *)
      let rec poll () =
        match Pc.Serve.Client.with_conn socket Pc.Serve.Client.health with
        | _ ->
            Unix.sleepf 0.1;
            poll ()
        | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
            Fmt.pr "daemon exited@."
      in
      poll ()
    end
  in
  let wait_arg =
    Arg.(
      value & flag
      & info [ "wait" ] ~doc:"Block until the daemon has actually exited.")
  in
  Cmd.v
    (Cmd.info "drain" ~exits
       ~doc:
         "Ask a running daemon to shut down gracefully: stop admitting, \
          finish every queued and in-flight job, release the state dir.")
    Term.(const run $ client_socket_arg $ wait_arg)

let load_cmd =
  let run socket clients submissions jobs_per manager m =
    (* Distinct random-churn seeds make every submission a distinct
       sweep — no dedup, no cache hits across submissions — so the
       numbers measure the daemon, not the cache. *)
    let subs =
      Array.init submissions (fun i ->
          let specs =
            List.init jobs_per (fun k ->
                Pc.Exec.Spec.random_churn
                  ~seed:((i * jobs_per) + k)
                  ~churn:512 ~c:8.0 ~manager ~m
                  ~dist:(Pc.Exec.Spec.Pow2 { lo_log = 0; hi_log = 4 })
                  ~target_live:(m / 2) ())
          in
          (Printf.sprintf "load-%d" (i mod 4), specs, 2))
    in
    let r = Pc.Serve.Client.load ~socket ~clients ~submissions:subs in
    let p q = Pc.Serve.Client.percentile r.latencies q *. 1000. in
    Fmt.pr
      "%d client(s), %d submission(s), %d job(s): %.2fs wall, %.1f jobs/s@."
      r.clients submissions r.jobs r.wall
      (float_of_int r.jobs /. r.wall);
    Fmt.pr
      "latency p50=%.1fms p90=%.1fms p99=%.1fms; %d backoff round(s), %d \
       worker restart(s), %d failed job(s)@."
      (p 0.5) (p 0.9) (p 0.99) r.submit_retries r.restarts_seen r.failed;
    if r.failed > 0 then exit 1
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let submissions_arg =
    Arg.(
      value & opt int 16
      & info [ "submissions" ] ~docv:"N" ~doc:"Total submissions to push.")
  in
  let jobs_per_arg =
    Arg.(
      value & opt int 4
      & info [ "jobs-per" ] ~docv:"N" ~doc:"Jobs per submission.")
  in
  let m_small =
    Arg.(
      value & opt size_conv (1 lsl 10)
      & info [ "m" ] ~docv:"WORDS" ~doc:"Live-space bound M per job.")
  in
  Cmd.v
    (Cmd.info "load" ~exits
       ~doc:
         "Saturation-test a running daemon: hammer it with concurrent \
          clients and report throughput, latency percentiles, backoff \
          rounds and worker restarts.")
    Term.(
      const run $ client_socket_arg $ clients_arg $ submissions_arg
      $ jobs_per_arg $ manager_arg $ m_small)

(* ------------------------------------------------------------------ *)
(* pc managers                                                        *)

let managers_cmd =
  let run () =
    List.iter
      (fun (e : Pc.Managers.entry) ->
        Fmt.pr "%-16s %-7s %s@." e.key
          (if e.moving then "moving" else "static")
          e.summary)
      (Pc.Managers.entries ())
  in
  Cmd.v
    (Cmd.info "managers" ~exits ~doc:"List the available memory managers.")
    Term.(const run $ const ())

let () =
  (* -v / -vv on any subcommand raises the log level (info / debug). *)
  let verbosity =
    Array.fold_left
      (fun acc a -> if a = "-v" then acc + 1 else acc)
      0 Sys.argv
  in
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level
    (match verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug);
  let argv = Array.of_list (List.filter (fun a -> a <> "-v") (Array.to_list Sys.argv)) in
  let doc = "bounds and simulators for partial heap compaction (PLDI'13)" in
  let group =
    Cmd.group
      (Cmd.info "pc" ~version:"1.0.0" ~doc ~exits)
      [
        bounds_cmd;
        figure_cmd;
        simulate_cmd;
        sweep_cmd;
        serve_cmd;
        submit_cmd;
        health_cmd;
        drain_cmd;
        load_cmd;
        trace_cmd;
        diagram_cmd;
        replay_cmd;
        report_cmd;
        managers_cmd;
      ]
  in
  (* Exceptions escape Cmdliner (~catch:false) so they can be mapped
     onto the exit-code taxonomy; Cmdliner's own cli_error (124) is
     remapped onto the shared usage code. *)
  let code =
    try
      match Cmd.eval ~argv ~catch:false group with
      | c when c = Cmd.Exit.cli_error -> Pc.Audit.Report.exit_usage
      | c -> c
    with
    | Pc.Audit.Report.Reported b ->
        Fmt.epr "%a@." Pc.Audit.Report.pp_bundle b;
        Pc.Audit.Report.exit_violation
    | Pc.Audit.Oracle.Violation v ->
        Fmt.epr "%a@." Pc.Audit.Oracle.pp_violation v;
        Pc.Audit.Report.exit_violation
    | Pc.Budget.Exceeded { requested; available } ->
        Fmt.epr "compaction budget exceeded: move of %d requested, %d left@."
          requested available;
        Pc.Audit.Report.exit_violation
    | Pc.Pf.Audit_failure { step; delta_u; floor } ->
        Fmt.epr "PF potential audit failed at step %d: delta_u=%d < floor %d@."
          step delta_u floor;
        Pc.Audit.Report.exit_violation
    | Pc.Exec.Lockfile.Locked _ as e ->
        Fmt.epr "pc: %s@." (Printexc.to_string e);
        Pc.Audit.Report.exit_usage
    | Pc.Serve.Client.Protocol_error msg ->
        Fmt.epr "pc: %s@." msg;
        Pc.Audit.Report.exit_internal
    | Invalid_argument msg | Pc.Script.Bad_script msg ->
        Fmt.epr "pc: %s@." msg;
        Pc.Audit.Report.exit_usage
    | e ->
        Fmt.epr "pc: internal error: %s@." (Printexc.to_string e);
        Pc.Audit.Report.exit_internal
  in
  exit code
